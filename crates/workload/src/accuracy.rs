//! Ground-truth flow computation for accuracy evaluation.
//!
//! The paper evaluates *efficiency*; having simulated ground truth lets
//! this reproduction additionally evaluate *answer quality*: how well the
//! uncertainty-based flow estimates rank POIs compared with the true
//! visit counts. This module computes the ground-truth counterparts of
//! the paper's flow definitions from the simulated trajectories:
//!
//! * [`true_snapshot_flow`]: the number of objects whose true position is
//!   inside the POI at time `t`;
//! * [`true_interval_flow`]: the number of objects whose true position
//!   enters the POI at least once during `[ts, te]` (sampled at a
//!   configurable step);
//! * [`ranking_overlap`]: precision-style agreement between two rankings'
//!   top-k sets.

use crate::movement::TimedPath;
use inflow_indoor::{FloorPlan, Poi, PoiId};
use inflow_tracking::ObjectId;

/// Number of objects truly inside `poi` at time `t`.
pub fn true_snapshot_flow(poi: &Poi, paths: &[(ObjectId, TimedPath)], t: f64) -> usize {
    paths.iter().filter(|(_, path)| path.position_at(t).is_some_and(|p| poi.contains(p))).count()
}

/// Number of objects whose true position enters `poi` at least once
/// during `[ts, te]`, sampled every `step` seconds.
pub fn true_interval_flow(
    poi: &Poi,
    paths: &[(ObjectId, TimedPath)],
    ts: f64,
    te: f64,
    step: f64,
) -> usize {
    assert!(step > 0.0, "sample step must be positive");
    paths
        .iter()
        .filter(|(_, path)| {
            let mut t = ts;
            while t <= te {
                if path.position_at(t).is_some_and(|p| poi.contains(p)) {
                    return true;
                }
                t += step;
            }
            false
        })
        .count()
}

/// Ranks all of a plan's POIs by true interval flow, descending
/// (ties by POI id).
pub fn true_interval_ranking(
    plan: &FloorPlan,
    paths: &[(ObjectId, TimedPath)],
    ts: f64,
    te: f64,
    step: f64,
) -> Vec<(PoiId, usize)> {
    let mut ranking: Vec<(PoiId, usize)> = plan
        .pois()
        .iter()
        .map(|poi| (poi.id, true_interval_flow(poi, paths, ts, te, step)))
        .collect();
    ranking.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranking
}

/// Ranks all of a plan's POIs by true snapshot flow, descending.
pub fn true_snapshot_ranking(
    plan: &FloorPlan,
    paths: &[(ObjectId, TimedPath)],
    t: f64,
) -> Vec<(PoiId, usize)> {
    let mut ranking: Vec<(PoiId, usize)> =
        plan.pois().iter().map(|poi| (poi.id, true_snapshot_flow(poi, paths, t))).collect();
    ranking.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranking
}

/// The fraction of `estimated`'s top-k POIs that also appear in the
/// ground truth's top-k (precision@k with identical k on both sides).
pub fn ranking_overlap(estimated: &[PoiId], truth: &[PoiId], k: usize) -> f64 {
    let k = k.min(estimated.len()).min(truth.len());
    if k == 0 {
        return 1.0;
    }
    let truth_top: Vec<PoiId> = truth[..k].to_vec();
    let hits = estimated[..k].iter().filter(|p| truth_top.contains(p)).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflow_geometry::{Point, Polygon};
    use inflow_indoor::{CellKind, FloorPlanBuilder};

    fn plan() -> FloorPlan {
        let mut b = FloorPlanBuilder::new();
        b.add_cell(
            "hall",
            CellKind::Hallway,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(30.0, 4.0)),
        );
        b.add_poi("west", Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 4.0)));
        b.add_poi("east", Polygon::rectangle(Point::new(20.0, 0.0), Point::new(30.0, 4.0)));
        b.build().unwrap()
    }

    /// One object walking west→east over 30 s, one parked in the west.
    fn paths() -> Vec<(ObjectId, TimedPath)> {
        let mut walker = TimedPath::new();
        walker.push(0.0, Point::new(1.0, 2.0));
        walker.push(30.0, Point::new(29.0, 2.0));
        let mut parker = TimedPath::new();
        parker.push(0.0, Point::new(5.0, 2.0));
        parker.push(30.0, Point::new(5.0, 2.0));
        vec![(ObjectId(0), walker), (ObjectId(1), parker)]
    }

    #[test]
    fn snapshot_counts_positions() {
        let plan = plan();
        let paths = paths();
        let west = &plan.pois()[0];
        let east = &plan.pois()[1];
        // t = 1: both in the west half.
        assert_eq!(true_snapshot_flow(west, &paths, 1.0), 2);
        assert_eq!(true_snapshot_flow(east, &paths, 1.0), 0);
        // t = 29: walker in the east, parker in the west.
        assert_eq!(true_snapshot_flow(west, &paths, 29.0), 1);
        assert_eq!(true_snapshot_flow(east, &paths, 29.0), 1);
        // Outside the trajectories' lifetime nobody is anywhere.
        assert_eq!(true_snapshot_flow(west, &paths, 100.0), 0);
    }

    #[test]
    fn interval_counts_visits() {
        let plan = plan();
        let paths = paths();
        let west = &plan.pois()[0];
        let east = &plan.pois()[1];
        // Over the whole window the walker visits both, the parker only west.
        assert_eq!(true_interval_flow(west, &paths, 0.0, 30.0, 1.0), 2);
        assert_eq!(true_interval_flow(east, &paths, 0.0, 30.0, 1.0), 1);
        // Early window: nobody reaches the east yet.
        assert_eq!(true_interval_flow(east, &paths, 0.0, 5.0, 1.0), 0);
    }

    #[test]
    fn rankings_order_by_count() {
        let plan = plan();
        let paths = paths();
        let ranking = true_interval_ranking(&plan, &paths, 0.0, 30.0, 1.0);
        assert_eq!(ranking[0].0, plan.pois()[0].id); // west: 2 visitors
        assert_eq!(ranking[0].1, 2);
        assert_eq!(ranking[1].1, 1);
        let snap = true_snapshot_ranking(&plan, &paths, 1.0);
        assert_eq!(snap[0].1, 2);
    }

    #[test]
    fn overlap_metric() {
        use inflow_indoor::PoiId;
        let a = [PoiId(1), PoiId(2), PoiId(3)];
        let b = [PoiId(2), PoiId(1), PoiId(9)];
        assert!((ranking_overlap(&a, &b, 2) - 1.0).abs() < 1e-12);
        assert!((ranking_overlap(&a, &b, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ranking_overlap(&a, &b, 0), 1.0);
        // k larger than the lists clamps.
        assert!((ranking_overlap(&a, &b, 10) - 2.0 / 3.0).abs() < 1e-12);
    }
}
