//! The CPH-like airport workload.
//!
//! The paper's real dataset — 7 months of Bluetooth tracking from
//! Copenhagen Airport (~600 K records, ~21 K passengers) — is proprietary.
//! This module simulates the closest synthetic equivalent (see DESIGN.md):
//! a terminal concourse with gates on one side and shops on the other,
//! sparse Bluetooth readers along the concourse and at doors, and
//! itinerary-driven passengers: arrive → security → a few shops → gate →
//! board. Compared with the synthetic grid workload this yields sparser
//! detections, longer inactive gaps, fewer objects, and heavily skewed POI
//! popularity — the characteristics the paper's §5.3 experiments exercise.

use crate::movement::{sample_readings, DeviceIndex, TimedPath};
use crate::rng::StdRng;
use crate::Workload;
use inflow_geometry::{Point, Polygon};
use inflow_indoor::{CellId, CellKind, DistanceOracle, FloorPlan, FloorPlanBuilder};
use inflow_tracking::{merge_raw_readings, ObjectId, ObjectTrackingTable, RawReading};
use inflow_uncertainty::IndoorContext;
use std::sync::Arc;

/// Parameters of the CPH-like airport workload.
#[derive(Debug, Clone)]
pub struct CphConfig {
    /// Concourse length (metres).
    pub concourse_length: f64,
    /// Concourse width (metres).
    pub concourse_width: f64,
    /// Number of gate rooms (north side).
    pub gates: usize,
    /// Number of shop rooms (south side).
    pub shops: usize,
    /// Number of simulated passengers.
    pub num_passengers: usize,
    /// Simulated duration in seconds.
    pub duration: f64,
    /// Walking speed, also `V_max` (m/s).
    pub speed: f64,
    /// Bluetooth sampling period (sparser than RFID).
    pub sampling_period: f64,
    /// Bluetooth detection range (fixed in the paper's real deployment).
    pub detection_range: f64,
    /// Spacing of concourse readers (metres).
    pub reader_spacing: f64,
    /// Total number of POIs (paper: 75 for both datasets).
    pub num_pois: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CphConfig {
    fn default() -> Self {
        CphConfig {
            concourse_length: 300.0,
            concourse_width: 16.0,
            gates: 10,
            shops: 12,
            num_passengers: 400,
            duration: 4.0 * 3600.0,
            speed: 1.1,
            sampling_period: 2.0,
            detection_range: 3.5,
            reader_spacing: 30.0,
            num_pois: 75,
            seed: 4242,
        }
    }
}

impl CphConfig {
    /// A miniature configuration for fast tests.
    pub fn tiny() -> CphConfig {
        CphConfig {
            concourse_length: 120.0,
            gates: 4,
            shops: 5,
            num_passengers: 40,
            duration: 1800.0,
            num_pois: 30,
            ..CphConfig::default()
        }
    }
}

/// Landmarks of the airport plan used by the itinerary generator.
pub struct AirportLayout {
    /// Where passengers enter the tracked area.
    pub entry: Point,
    /// Centre of the security zone.
    pub security: Point,
    /// Shop room cells (south side).
    pub shop_cells: Vec<CellId>,
    /// Gate room cells (north side).
    pub gate_cells: Vec<CellId>,
}

/// Builds the airport floor plan.
pub fn build_airport_plan(cfg: &CphConfig) -> (FloorPlan, AirportLayout) {
    assert!(
        2.0 * cfg.detection_range < 8.0,
        "reader layout guarantees non-overlap only below 4 m range"
    );
    let len = cfg.concourse_length;
    let cw = cfg.concourse_width;
    let mut b = FloorPlanBuilder::new();

    let concourse = b.add_cell(
        "concourse",
        CellKind::Hallway,
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(len, cw)),
    );

    // Gates along the north side.
    let gate_pitch = len / cfg.gates as f64;
    let mut gate_cells = Vec::with_capacity(cfg.gates);
    for g in 0..cfg.gates {
        let x0 = g as f64 * gate_pitch + 2.0;
        let x1 = (g + 1) as f64 * gate_pitch - 2.0;
        let cell = b.add_cell(
            format!("gate-{g}"),
            CellKind::Room,
            Polygon::rectangle(Point::new(x0, cw), Point::new(x1, cw + 12.0)),
        );
        let door = Point::new((x0 + x1) / 2.0, cw);
        b.add_door(format!("gate-door-{g}"), door, cell, concourse);
        b.add_device(format!("bt-gate-{g}"), door, cfg.detection_range);
        gate_cells.push(cell);
    }

    // Shops along the south side.
    let shop_pitch = len / cfg.shops as f64;
    let mut shop_cells = Vec::with_capacity(cfg.shops);
    for s in 0..cfg.shops {
        let x0 = s as f64 * shop_pitch + 2.0;
        let x1 = (s + 1) as f64 * shop_pitch - 2.0;
        let cell = b.add_cell(
            format!("shop-{s}"),
            CellKind::Room,
            Polygon::rectangle(Point::new(x0, -12.0), Point::new(x1, 0.0)),
        );
        let door = Point::new((x0 + x1) / 2.0, 0.0);
        b.add_door(format!("shop-door-{s}"), door, cell, concourse);
        if s % 2 == 0 {
            b.add_device(format!("bt-shop-{s}"), door, cfg.detection_range);
        }
        shop_cells.push(cell);
    }

    // Concourse readers along the centre line.
    let mut x = cfg.reader_spacing / 2.0;
    let mut i = 0;
    while x < len {
        b.add_device(format!("bt-concourse-{i}"), Point::new(x, cw / 2.0), cfg.detection_range);
        x += cfg.reader_spacing;
        i += 1;
    }

    // POIs: one to two per shop, one per gate waiting area, a security
    // zone, and concourse seating segments to reach `num_pois`.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5151_5151);
    let mut added = 0usize;
    let add_poi =
        |b: &mut FloorPlanBuilder, name: String, lo: Point, hi: Point, added: &mut usize| {
            if *added < cfg.num_pois {
                b.add_poi(name, Polygon::rectangle(lo, hi));
                *added += 1;
            }
        };
    // Security zone (concourse, near the entry).
    add_poi(
        &mut b,
        "poi-security".to_string(),
        Point::new(14.0, 1.0),
        Point::new(30.0, cw - 1.0),
        &mut added,
    );
    for s in 0..cfg.shops {
        let x0 = s as f64 * shop_pitch + 2.0;
        let x1 = (s + 1) as f64 * shop_pitch - 2.0;
        if rng.random_range(0.0..1.0) < 0.5 {
            let mid = (x0 + x1) / 2.0;
            add_poi(
                &mut b,
                format!("poi-shop-{s}a"),
                Point::new(x0 + 0.5, -11.5),
                Point::new(mid - 0.2, -0.5),
                &mut added,
            );
            add_poi(
                &mut b,
                format!("poi-shop-{s}b"),
                Point::new(mid + 0.2, -11.5),
                Point::new(x1 - 0.5, -0.5),
                &mut added,
            );
        } else {
            add_poi(
                &mut b,
                format!("poi-shop-{s}"),
                Point::new(x0 + 0.5, -11.5),
                Point::new(x1 - 0.5, -0.5),
                &mut added,
            );
        }
    }
    for g in 0..cfg.gates {
        let x0 = g as f64 * gate_pitch + 2.0;
        let x1 = (g + 1) as f64 * gate_pitch - 2.0;
        add_poi(
            &mut b,
            format!("poi-gate-{g}"),
            Point::new(x0 + 0.5, cw + 0.5),
            Point::new(x1 - 0.5, cw + 11.5),
            &mut added,
        );
    }
    // Concourse seating segments until the target count is reached.
    let mut seg = 0usize;
    while added < cfg.num_pois {
        let x0 = 35.0 + (seg as f64 * 17.0) % (len - 60.0);
        let south = seg.is_multiple_of(2);
        let (y0, y1) = if south { (1.0, 5.0) } else { (cw - 5.0, cw - 1.0) };
        add_poi(
            &mut b,
            format!("poi-seating-{seg}"),
            Point::new(x0, y0),
            Point::new(x0 + 10.0, y1),
            &mut added,
        );
        seg += 1;
    }

    let layout = AirportLayout {
        entry: Point::new(3.0, cw / 2.0),
        security: Point::new(22.0, cw / 2.0),
        shop_cells,
        gate_cells,
    };
    (b.build().expect("airport plan is valid by construction"), layout)
}

/// Generates the CPH-like workload.
pub fn generate_cph(cfg: &CphConfig) -> Workload {
    let (plan, layout) = build_airport_plan(cfg);
    let ctx = Arc::new(IndoorContext::new(plan));
    let index = DeviceIndex::build(ctx.plan());
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut readings: Vec<RawReading> = Vec::new();
    let mut ground_truth = Vec::with_capacity(cfg.num_passengers);
    for p in 0..cfg.num_passengers {
        let object = ObjectId(p as u32);
        let path = passenger_path(ctx.plan(), ctx.oracle(), &layout, cfg, &mut rng);
        sample_readings(ctx.plan(), &index, object, &path, cfg.sampling_period, &mut readings);
        ground_truth.push((object, path));
    }

    let rows = merge_raw_readings(readings, 1.5 * cfg.sampling_period);
    let ott = ObjectTrackingTable::from_rows(rows)
        .expect("non-overlapping ranges yield a consistent OTT");
    Workload { ctx, ott, ground_truth, vmax: cfg.speed }
}

/// An exponential dwell with the given mean (heavy-tailed enough for
/// dwell-time modelling while staying simple and reproducible).
fn exp_dwell(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    -u.ln() * mean
}

/// A passenger's itinerary: entry → security → shops → gate → board.
fn passenger_path(
    plan: &FloorPlan,
    oracle: &DistanceOracle,
    layout: &AirportLayout,
    cfg: &CphConfig,
    rng: &mut StdRng,
) -> TimedPath {
    let mut path = TimedPath::new();
    let mut t = rng.random_range(0.0..cfg.duration * 0.75);
    let mut pos = layout.entry;
    path.push(t, pos);

    let walk_to = |path: &mut TimedPath, t: &mut f64, pos: &mut Point, dest: Point| {
        if let Some(route) = oracle.route(plan, *pos, dest) {
            for pair in route.waypoints.windows(2) {
                let dist = pair[0].distance(pair[1]);
                if dist <= 0.0 {
                    continue;
                }
                *t += dist / cfg.speed;
                path.push(*t, pair[1]);
            }
            *pos = dest;
        }
    };

    // Security.
    walk_to(&mut path, &mut t, &mut pos, layout.security);
    t += exp_dwell(rng, 120.0).min(900.0);
    path.push(t, pos);

    // Shops (0–3, popularity skewed towards low indices).
    let n_shops = [0usize, 1, 1, 2, 2, 3][rng.random_range(0..6usize)];
    for _ in 0..n_shops {
        let idx = (rng.random_range(0.0f64..1.0).powi(2) * layout.shop_cells.len() as f64) as usize;
        let cell = layout.shop_cells[idx.min(layout.shop_cells.len() - 1)];
        let target = random_point_in(plan, cell, rng);
        walk_to(&mut path, &mut t, &mut pos, target);
        t += exp_dwell(rng, 300.0).min(1800.0);
        path.push(t, pos);
    }

    // Gate, dwell until boarding; the trajectory then ends (the passenger
    // leaves the tracked airside area).
    let gate = layout.gate_cells[rng.random_range(0..layout.gate_cells.len())];
    let seat = random_point_in(plan, gate, rng);
    walk_to(&mut path, &mut t, &mut pos, seat);
    t += exp_dwell(rng, 1500.0).min(3600.0);
    path.push(t, pos);
    path
}

fn random_point_in(plan: &FloorPlan, cell: CellId, rng: &mut StdRng) -> Point {
    let mbr = plan.cell(cell).footprint().mbr();
    let inset = 0.4;
    Point::new(
        rng.random_range(mbr.lo.x + inset..mbr.hi.x - inset),
        rng.random_range(mbr.lo.y + inset..mbr.hi.y - inset),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airport_plan_counts() {
        let cfg = CphConfig::default();
        let (plan, layout) = build_airport_plan(&cfg);
        assert_eq!(plan.cells().len(), 1 + cfg.gates + cfg.shops);
        assert_eq!(plan.pois().len(), cfg.num_pois);
        assert_eq!(layout.gate_cells.len(), cfg.gates);
        assert_eq!(layout.shop_cells.len(), cfg.shops);
        // Sparse deployment: far fewer readers than the synthetic grid.
        assert!(plan.devices().len() < 40, "{} readers", plan.devices().len());
    }

    #[test]
    fn reader_ranges_do_not_overlap() {
        let cfg = CphConfig::default();
        let (plan, _) = build_airport_plan(&cfg);
        let devices = plan.devices();
        for (i, a) in devices.iter().enumerate() {
            for b in &devices[i + 1..] {
                assert!(
                    a.position.distance(b.position) > 2.0 * cfg.detection_range,
                    "{} and {} overlap",
                    a.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn passengers_produce_sparser_tracking_than_synthetic() {
        let cfg = CphConfig::tiny();
        let w = generate_cph(&cfg);
        assert!(!w.ott.is_empty());
        // Mean records per tracked passenger stays modest (sparse readers).
        let per_passenger = w.ott.len() as f64 / w.ott.object_count().max(1) as f64;
        assert!(per_passenger < 40.0, "too dense: {per_passenger} records/passenger");
    }

    #[test]
    fn passenger_speed_respects_vmax() {
        let w = generate_cph(&CphConfig::tiny());
        for (_, path) in &w.ground_truth {
            assert!(path.max_speed() <= 1.1 + 1e-9);
        }
    }

    #[test]
    fn itineraries_visit_security_then_gate() {
        let cfg = CphConfig::tiny();
        let (plan, layout) = build_airport_plan(&cfg);
        let oracle = DistanceOracle::new(&plan);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let path = passenger_path(&plan, &oracle, &layout, &cfg, &mut rng);
            let start = path.knots().first().unwrap().1;
            let end = path.knots().last().unwrap().1;
            assert!(start.distance(layout.entry) < 1e-9);
            // Ends inside some gate room.
            let end_cell = plan.locate(end).expect("gate position is indoors");
            assert!(layout.gate_cells.contains(&end_cell), "path must end at a gate");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CphConfig::tiny();
        let a = generate_cph(&cfg);
        let b = generate_cph(&cfg);
        assert_eq!(a.ott.len(), b.ott.len());
    }
}
