//! A small, committed PRNG replacing the external `rand` dependency.
//!
//! The workspace must build and test with no network access, so the
//! workload generators cannot depend on crates.io. This module provides
//! the tiny slice of the `rand` API the generators actually use —
//! [`StdRng::seed_from_u64`] and [`StdRng::random_range`] — backed by
//! xoshiro256++ with SplitMix64 seed expansion (the same construction
//! `rand`'s `SmallRng` family uses). Not cryptographically secure; it
//! only needs to be fast, deterministic given the seed, and
//! statistically uniform enough for workload synthesis.
//!
//! Streams are stable: the same seed must produce the same workload
//! across releases, because experiment figures and several tests pin
//! seeds. Do not change the seeding or sampling arithmetic without
//! regenerating expectations.

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256++ generator seeded from a single `u64`.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Expands `seed` into the full 256-bit state via SplitMix64, as
    /// recommended by the xoshiro authors (avoids the all-zero state and
    /// decorrelates nearby seeds).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64 random bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` from the high 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` by widening multiply (no modulo bias
    /// worth caring about at workload scales: error < 2⁻⁶⁴·n).
    fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform sample from a range, mirroring `rand`'s `random_range`.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Ranges [`StdRng::random_range`] can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "inverted f64 range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleRange<u32> for Range<u32> {
    fn sample(self, rng: &mut StdRng) -> u32 {
        assert!(self.start < self.end, "empty u32 range");
        self.start + rng.next_below((self.end - self.start) as u64) as u32
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty usize range");
        self.start + rng.next_below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample(self, rng: &mut StdRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "inverted usize range");
        lo + rng.next_below((hi - lo) as u64 + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            let w = rng.random_range(-3.5..=3.5);
            assert!((-3.5..=3.5).contains(&w));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Inclusive ranges reach both endpoints.
        let mut lo_hit = false;
        let mut hi_hit = false;
        for _ in 0..1_000 {
            match rng.random_range(2..=4usize) {
                2 => lo_hit = true,
                4 => hi_hit = true,
                3 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn u32_range_respects_offset() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
        }
    }
}
