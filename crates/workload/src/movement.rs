//! Movement trajectories and raw-reading synthesis.

use inflow_geometry::Point;
use inflow_indoor::{Device, DeviceId, FloorPlan};
use inflow_tracking::{ObjectId, RawReading};

/// A piecewise-linear timed trajectory: knots `(t, position)` with linear
/// interpolation in between. Dwells are encoded as two knots at the same
/// position. The trajectory exists only on `[start_time, end_time]` —
/// outside it the object is absent (not yet arrived / departed).
#[derive(Debug, Clone, Default)]
pub struct TimedPath {
    knots: Vec<(f64, Point)>,
}

impl TimedPath {
    /// Creates an empty path; extend it with [`TimedPath::push`].
    pub fn new() -> TimedPath {
        TimedPath::default()
    }

    /// Appends a knot. Times must be non-decreasing.
    pub fn push(&mut self, t: f64, p: Point) {
        if let Some(&(last_t, _)) = self.knots.last() {
            assert!(t >= last_t, "knot times must be non-decreasing ({t} < {last_t})");
        }
        self.knots.push((t, p));
    }

    /// The knots `(t, position)`.
    pub fn knots(&self) -> &[(f64, Point)] {
        &self.knots
    }

    /// First knot time, or `None` for an empty path.
    pub fn start_time(&self) -> Option<f64> {
        self.knots.first().map(|&(t, _)| t)
    }

    /// Last knot time, or `None` for an empty path.
    pub fn end_time(&self) -> Option<f64> {
        self.knots.last().map(|&(t, _)| t)
    }

    /// Position at time `t`, or `None` outside the path's lifetime.
    pub fn position_at(&self, t: f64) -> Option<Point> {
        let first = self.start_time()?;
        let last = self.end_time()?;
        if t < first || t > last {
            return None;
        }
        let idx = self.knots.partition_point(|&(kt, _)| kt <= t);
        if idx == 0 {
            return Some(self.knots[0].1);
        }
        if idx == self.knots.len() {
            return Some(self.knots[idx - 1].1);
        }
        let (t0, p0) = self.knots[idx - 1];
        let (t1, p1) = self.knots[idx];
        if t1 <= t0 {
            return Some(p1);
        }
        Some(p0.lerp(p1, (t - t0) / (t1 - t0)))
    }

    /// The maximum speed along the path (m/s); useful to validate that a
    /// generator respects `V_max`.
    pub fn max_speed(&self) -> f64 {
        self.knots
            .windows(2)
            .map(|w| {
                let dt = w[1].0 - w[0].0;
                if dt <= 0.0 {
                    0.0
                } else {
                    w[0].1.distance(w[1].1) / dt
                }
            })
            .fold(0.0, f64::max)
    }
}

/// A uniform-grid index over device positions, bucketed at the maximum
/// detection range, so proximity checks touch only the 3×3 neighbourhood.
#[derive(Debug)]
pub struct DeviceIndex {
    origin: Point,
    inv_cell: f64,
    nx: i64,
    ny: i64,
    buckets: Vec<Vec<DeviceId>>,
    max_range: f64,
}

impl DeviceIndex {
    /// Builds the index over the plan's devices.
    pub fn build(plan: &FloorPlan) -> DeviceIndex {
        let mbr = plan.mbr();
        let max_range = plan.devices().iter().map(|d| d.range).fold(0.0f64, f64::max).max(1.0);
        let cell = max_range;
        let nx = ((mbr.width() / cell).ceil() as i64 + 3).max(1);
        let ny = ((mbr.height() / cell).ceil() as i64 + 3).max(1);
        let origin = Point::new(mbr.lo.x - cell, mbr.lo.y - cell);
        let mut buckets = vec![Vec::new(); (nx * ny) as usize];
        for dev in plan.devices() {
            let i = (((dev.position.x - origin.x) / cell).floor() as i64).clamp(0, nx - 1);
            let j = (((dev.position.y - origin.y) / cell).floor() as i64).clamp(0, ny - 1);
            buckets[(j * nx + i) as usize].push(dev.id);
        }
        DeviceIndex { origin, inv_cell: 1.0 / cell, nx, ny, buckets, max_range }
    }

    /// All devices whose detection range covers `p`.
    pub fn detecting<'a>(
        &'a self,
        plan: &'a FloorPlan,
        p: Point,
    ) -> impl Iterator<Item = &'a Device> + 'a {
        let ci = ((p.x - self.origin.x) * self.inv_cell).floor() as i64;
        let cj = ((p.y - self.origin.y) * self.inv_cell).floor() as i64;
        let (nx, ny) = (self.nx, self.ny);
        (-1..=1)
            .flat_map(move |dj| (-1..=1).map(move |di| (ci + di, cj + dj)))
            .filter(move |&(i, j)| i >= 0 && j >= 0 && i < nx && j < ny)
            .flat_map(move |(i, j)| self.buckets[(j * nx + i) as usize].iter())
            .map(move |&id| plan.device(id))
            .filter(move |dev| dev.detects(p))
    }

    /// The largest detection range among indexed devices.
    pub fn max_range(&self) -> f64 {
        self.max_range
    }
}

/// Samples raw readings for one object along its path: at every sampling
/// tick within the path's lifetime, every device whose range covers the
/// object's position reports a reading (paper §2.1).
pub fn sample_readings(
    plan: &FloorPlan,
    index: &DeviceIndex,
    object: ObjectId,
    path: &TimedPath,
    sampling_period: f64,
    out: &mut Vec<RawReading>,
) {
    assert!(sampling_period > 0.0, "sampling period must be positive");
    let Some(start) = path.start_time() else {
        return;
    };
    let Some(end) = path.end_time() else { return };
    // Ticks on the global grid (multiples of the sampling period) so
    // concurrent objects are sampled at identical instants.
    let mut k = (start / sampling_period).ceil() as i64;
    loop {
        let t = k as f64 * sampling_period;
        if t > end {
            break;
        }
        if let Some(pos) = path.position_at(t) {
            for dev in index.detecting(plan, pos) {
                out.push(RawReading { object, device: dev.id, t });
            }
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflow_geometry::Polygon;
    use inflow_indoor::{CellKind, FloorPlanBuilder};

    fn simple_plan() -> FloorPlan {
        let mut b = FloorPlanBuilder::new();
        b.add_cell(
            "hall",
            CellKind::Hallway,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(30.0, 4.0)),
        );
        b.add_device("d0", Point::new(5.0, 2.0), 1.0);
        b.add_device("d1", Point::new(15.0, 2.0), 1.0);
        b.add_device("d2", Point::new(25.0, 2.0), 1.0);
        b.build().unwrap()
    }

    #[test]
    fn path_interpolation_and_domain() {
        let mut p = TimedPath::new();
        p.push(10.0, Point::new(0.0, 0.0));
        p.push(20.0, Point::new(10.0, 0.0));
        p.push(25.0, Point::new(10.0, 0.0)); // dwell
        p.push(35.0, Point::new(10.0, 10.0));
        assert_eq!(p.position_at(9.9), None);
        assert_eq!(p.position_at(10.0), Some(Point::new(0.0, 0.0)));
        assert_eq!(p.position_at(15.0), Some(Point::new(5.0, 0.0)));
        assert_eq!(p.position_at(22.0), Some(Point::new(10.0, 0.0)));
        assert_eq!(p.position_at(30.0), Some(Point::new(10.0, 5.0)));
        assert_eq!(p.position_at(35.0), Some(Point::new(10.0, 10.0)));
        assert_eq!(p.position_at(35.1), None);
        assert!((p.max_speed() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_knots_rejected() {
        let mut p = TimedPath::new();
        p.push(5.0, Point::ORIGIN);
        p.push(4.0, Point::ORIGIN);
    }

    #[test]
    fn device_index_matches_linear_scan() {
        let plan = simple_plan();
        let index = DeviceIndex::build(&plan);
        for i in 0..120 {
            let p = Point::new(i as f64 * 0.25, 2.0);
            let mut via_index: Vec<DeviceId> = index.detecting(&plan, p).map(|d| d.id).collect();
            via_index.sort_unstable();
            let mut via_scan: Vec<DeviceId> =
                plan.devices().iter().filter(|d| d.detects(p)).map(|d| d.id).collect();
            via_scan.sort_unstable();
            assert_eq!(via_index, via_scan, "at {p}");
        }
    }

    #[test]
    fn readings_generated_in_range_only() {
        let plan = simple_plan();
        let index = DeviceIndex::build(&plan);
        // Walk the corridor left to right at 1 m/s over 30 s.
        let mut path = TimedPath::new();
        path.push(0.0, Point::new(0.0, 2.0));
        path.push(30.0, Point::new(30.0, 2.0));
        let mut out = Vec::new();
        sample_readings(&plan, &index, ObjectId(7), &path, 1.0, &mut out);
        assert!(!out.is_empty());
        // Every reading's position is genuinely within the device's range.
        for r in &out {
            let pos = path.position_at(r.t).unwrap();
            assert!(plan.device(r.device).detects(pos));
        }
        // The object passes all three devices.
        let mut devs: Vec<DeviceId> = out.iter().map(|r| r.device).collect();
        devs.sort_unstable();
        devs.dedup();
        assert_eq!(devs.len(), 3);
    }

    #[test]
    fn sampling_uses_global_tick_grid() {
        let plan = simple_plan();
        let index = DeviceIndex::build(&plan);
        let mut path = TimedPath::new();
        path.push(0.4, Point::new(5.0, 2.0));
        path.push(10.0, Point::new(5.0, 2.0));
        let mut out = Vec::new();
        sample_readings(&plan, &index, ObjectId(0), &path, 1.0, &mut out);
        // Ticks at integer seconds 1..=10 (0.4 rounds up to 1.0).
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|r| (r.t - r.t.round()).abs() < 1e-9));
    }
}
