//! Failure injection: corrupting tracking data the way real deployments
//! do.
//!
//! Symbolic tracking data is messy in practice — readers fail, tags are
//! shielded, clocks drift. The query pipeline must stay *robust*: noisy
//! input may degrade answer quality (that is physics) but must never
//! panic, hang, or return malformed results. This module produces the
//! three classic corruption patterns:
//!
//! * **missed detections** ([`drop_records`]): a reader fails to see a
//!   tag, lengthening inactive gaps;
//! * **clock jitter** ([`jitter_timestamps`]): device clocks disagree by
//!   small offsets;
//! * **teleports** ([`inject_teleports`]): ghost reads attribute an object
//!   to a distant reader, producing gaps that are infeasible at `V_max`
//!   (the empty-uncertainty-region path).
//!
//! All functions are deterministic given the seed and preserve per-object
//! record ordering invariants (jitter is clamped so records never
//! overlap).

use crate::rng::StdRng;
use inflow_tracking::{ObjectTrackingTable, OttRow};

/// Extracts the rows of a table (the corruption functions operate on
/// rows).
pub fn rows_of(ott: &ObjectTrackingTable) -> Vec<OttRow> {
    ott.records()
        .iter()
        .map(|r| OttRow { object: r.object, device: r.device, ts: r.ts, te: r.te })
        .collect()
}

/// Randomly removes a fraction of the rows (missed detections).
pub fn drop_records(mut rows: Vec<OttRow>, drop_fraction: f64, seed: u64) -> Vec<OttRow> {
    assert!((0.0..=1.0).contains(&drop_fraction), "fraction must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    rows.retain(|_| rng.random_range(0.0..1.0) >= drop_fraction);
    rows
}

/// Applies bounded random offsets to record endpoints (clock jitter).
///
/// Offsets are clamped so each record keeps `ts ≤ te` and per-object
/// records stay disjoint: the OTT invariants survive.
pub fn jitter_timestamps(mut rows: Vec<OttRow>, max_jitter: f64, seed: u64) -> Vec<OttRow> {
    assert!(max_jitter >= 0.0, "jitter must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    // Sort per object so neighbour constraints are known.
    rows.sort_by(|a, b| {
        (a.object, a.ts).partial_cmp(&(b.object, b.ts)).expect("finite timestamps")
    });
    for i in 0..rows.len() {
        let prev_te =
            if i > 0 && rows[i - 1].object == rows[i].object { Some(rows[i - 1].te) } else { None };
        let next_ts = if i + 1 < rows.len() && rows[i + 1].object == rows[i].object {
            Some(rows[i + 1].ts)
        } else {
            None
        };
        let row = &mut rows[i];
        let dts = rng.random_range(-max_jitter..=max_jitter);
        let dte = rng.random_range(-max_jitter..=max_jitter);
        let mut ts = row.ts + dts;
        let mut te = row.te + dte;
        if let Some(lo) = prev_te {
            ts = ts.max(lo);
        }
        if let Some(hi) = next_ts {
            te = te.min(hi);
        }
        if te < ts {
            te = ts;
        }
        row.ts = ts;
        row.te = te;
    }
    rows
}

/// Replaces the device of a fraction of rows with a random other device
/// (ghost reads / tag collisions). The resulting gaps are frequently
/// infeasible at `V_max`, exercising the empty-region handling.
pub fn inject_teleports(
    mut rows: Vec<OttRow>,
    teleport_fraction: f64,
    device_count: u32,
    seed: u64,
) -> Vec<OttRow> {
    assert!((0.0..=1.0).contains(&teleport_fraction), "fraction must be in [0, 1]");
    assert!(device_count > 0, "need at least one device");
    let mut rng = StdRng::seed_from_u64(seed);
    for row in &mut rows {
        if rng.random_range(0.0..1.0) < teleport_fraction {
            row.device = inflow_indoor::DeviceId(rng.random_range(0..device_count));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_synthetic, SyntheticConfig};
    use inflow_tracking::ObjectTrackingTable;

    fn base_rows() -> Vec<OttRow> {
        rows_of(&generate_synthetic(&SyntheticConfig::tiny()).ott)
    }

    #[test]
    fn drop_reduces_row_count_proportionally() {
        let rows = base_rows();
        let kept = drop_records(rows.clone(), 0.3, 1);
        let ratio = kept.len() as f64 / rows.len() as f64;
        assert!(
            (0.6..0.8).contains(&ratio),
            "expected ~70% kept, got {ratio} ({} of {})",
            kept.len(),
            rows.len()
        );
        // Still a valid OTT.
        ObjectTrackingTable::from_rows(kept).unwrap();
        // Extremes.
        assert_eq!(drop_records(rows.clone(), 1.0, 1).len(), 0);
        assert_eq!(drop_records(rows.clone(), 0.0, 1).len(), rows.len());
    }

    #[test]
    fn jitter_preserves_ott_invariants() {
        let rows = base_rows();
        let jittered = jitter_timestamps(rows, 0.8, 7);
        // from_rows re-validates interval sanity and per-object disjointness.
        let ott = ObjectTrackingTable::from_rows(jittered).unwrap();
        assert!(!ott.is_empty());
    }

    #[test]
    fn jitter_zero_is_identity_up_to_order() {
        let rows = base_rows();
        let mut sorted = rows.clone();
        sorted.sort_by(|a, b| (a.object, a.ts).partial_cmp(&(b.object, b.ts)).unwrap());
        let out = jitter_timestamps(rows, 0.0, 7);
        assert_eq!(out, sorted);
    }

    #[test]
    fn teleports_change_devices_only() {
        let rows = base_rows();
        let mutated = inject_teleports(rows.clone(), 0.5, 40, 3);
        assert_eq!(mutated.len(), rows.len());
        let changed = rows.iter().zip(&mutated).filter(|(a, b)| a.device != b.device).count();
        assert!(changed > 0, "expected some teleports");
        for (a, b) in rows.iter().zip(&mutated) {
            assert_eq!((a.object, a.ts, a.te), (b.object, b.ts, b.te));
        }
    }

    #[test]
    fn determinism_given_seed() {
        let rows = base_rows();
        assert_eq!(drop_records(rows.clone(), 0.4, 9), drop_records(rows.clone(), 0.4, 9));
        assert_eq!(
            jitter_timestamps(rows.clone(), 0.5, 9),
            jitter_timestamps(rows.clone(), 0.5, 9)
        );
        assert_eq!(inject_teleports(rows.clone(), 0.2, 10, 9), inject_teleports(rows, 0.2, 10, 9));
    }
}
