//! Failure injection: corrupting tracking data the way real deployments
//! do.
//!
//! Symbolic tracking data is messy in practice — readers fail, tags are
//! shielded, clocks drift. The query pipeline must stay *robust*: noisy
//! input may degrade answer quality (that is physics) but must never
//! panic, hang, or return malformed results. This module produces the
//! three classic corruption patterns:
//!
//! * **missed detections** ([`drop_records`]): a reader fails to see a
//!   tag, lengthening inactive gaps;
//! * **clock jitter** ([`jitter_timestamps`]): device clocks disagree by
//!   small offsets;
//! * **teleports** ([`inject_teleports`]): ghost reads attribute an object
//!   to a distant reader, producing gaps that are infeasible at `V_max`
//!   (the empty-uncertainty-region path).
//!
//! Beyond the classics, the chaos harness adds deployment-scale failures:
//!
//! * **device outages** ([`inject_outages`]): a reader goes dark for a
//!   window, deleting every detection it would have made;
//! * **burst loss** ([`burst_loss`]): the whole pipeline drops a time
//!   window (network partition, collector crash);
//! * **clock drift** ([`clock_drift`]): per-device clock *rates* diverge,
//!   skewing timestamps progressively — unlike jitter, drift breaks
//!   per-object record ordering across devices, producing exactly the
//!   out-of-order and overlapping-run anomalies
//!   `inflow_tracking::sanitize` exists to repair.
//!
//! [`CorruptionSpec`] bundles every knob into one seeded recipe and
//! [`corruption_grid`] produces the graded suite (clean → severe) the
//! chaos tests and the `abl-noise` experiment sweep.
//!
//! All functions are deterministic given the seed. The classic three
//! preserve OTT invariants; the chaos functions deliberately may not —
//! their output is meant to be fed through the sanitization gate.

use crate::rng::StdRng;
use inflow_tracking::{ObjectTrackingTable, OttRow};

/// One seeded corruption recipe: which failures to inject and how hard.
///
/// Apply with [`apply_corruption`]. The fields mirror the individual
/// injection functions; zero disables a failure mode.
#[derive(Debug, Clone)]
pub struct CorruptionSpec {
    /// Human-readable name ("clean", "mild", …) for reports and bench rows.
    pub label: String,
    /// Fraction of rows dropped uniformly ([`drop_records`]).
    pub drop_fraction: f64,
    /// Number of reader outage windows ([`inject_outages`]).
    pub outage_count: usize,
    /// Length of each outage window, in seconds.
    pub outage_len: f64,
    /// Number of pipeline-wide loss bursts ([`burst_loss`]).
    pub burst_count: usize,
    /// Length of each loss burst, in seconds.
    pub burst_len: f64,
    /// Fraction of rows re-attributed to a random device
    /// ([`inject_teleports`]).
    pub teleport_fraction: f64,
    /// Maximum endpoint jitter, in seconds ([`jitter_timestamps`]).
    pub max_jitter: f64,
    /// Maximum per-device clock drift rate ([`clock_drift`]).
    pub drift_rate: f64,
    /// RNG seed shared by every stage (each stage derives its own stream).
    pub seed: u64,
}

impl CorruptionSpec {
    /// No corruption at all — the grid's control point.
    pub fn clean(seed: u64) -> CorruptionSpec {
        CorruptionSpec {
            label: "clean".to_string(),
            drop_fraction: 0.0,
            outage_count: 0,
            outage_len: 0.0,
            burst_count: 0,
            burst_len: 0.0,
            teleport_fraction: 0.0,
            max_jitter: 0.0,
            drift_rate: 0.0,
            seed,
        }
    }

    /// A recipe where every failure mode scales with one `severity` knob
    /// in `[0, 1]` (0 = clean, 1 = the harshest graded setting).
    pub fn with_severity(label: &str, severity: f64, seed: u64) -> CorruptionSpec {
        assert!((0.0..=1.0).contains(&severity), "severity must be in [0, 1]");
        CorruptionSpec {
            label: label.to_string(),
            drop_fraction: 0.20 * severity,
            outage_count: (3.0 * severity).round() as usize,
            outage_len: 40.0 * severity,
            burst_count: (2.0 * severity).round() as usize,
            burst_len: 15.0 * severity,
            teleport_fraction: 0.10 * severity,
            max_jitter: 1.0 * severity,
            drift_rate: 0.02 * severity,
            seed,
        }
    }

    /// Whether this spec injects nothing.
    pub fn is_clean(&self) -> bool {
        self.drop_fraction == 0.0
            && self.outage_count == 0
            && self.burst_count == 0
            && self.teleport_fraction == 0.0
            && self.max_jitter == 0.0
            && self.drift_rate == 0.0
    }
}

/// The graded corruption suite: clean control plus three severities.
pub fn corruption_grid(seed: u64) -> Vec<CorruptionSpec> {
    vec![
        CorruptionSpec::clean(seed),
        CorruptionSpec::with_severity("mild", 0.25, seed),
        CorruptionSpec::with_severity("moderate", 0.5, seed),
        CorruptionSpec::with_severity("severe", 1.0, seed),
    ]
}

/// Applies every failure mode of `spec` in deployment order: uniform
/// loss, then reader outages, then pipeline bursts (all loss first), then
/// teleports, jitter and clock drift (corruption of what survived).
///
/// The result may violate OTT invariants (drift creates out-of-order and
/// overlapping runs by design); feed it through
/// `inflow_tracking::sanitize_rows` before building a table.
pub fn apply_corruption(
    mut rows: Vec<OttRow>,
    spec: &CorruptionSpec,
    device_count: u32,
) -> Vec<OttRow> {
    if spec.drop_fraction > 0.0 {
        rows = drop_records(rows, spec.drop_fraction, spec.seed ^ 0x01);
    }
    if spec.outage_count > 0 && spec.outage_len > 0.0 {
        rows = inject_outages(
            rows,
            spec.outage_count,
            spec.outage_len,
            device_count,
            spec.seed ^ 0x02,
        );
    }
    if spec.burst_count > 0 && spec.burst_len > 0.0 {
        rows = burst_loss(rows, spec.burst_count, spec.burst_len, spec.seed ^ 0x03);
    }
    if spec.teleport_fraction > 0.0 {
        rows = inject_teleports(rows, spec.teleport_fraction, device_count, spec.seed ^ 0x04);
    }
    if spec.max_jitter > 0.0 {
        rows = jitter_timestamps(rows, spec.max_jitter, spec.seed ^ 0x05);
    }
    if spec.drift_rate > 0.0 {
        rows = clock_drift(rows, spec.drift_rate, spec.seed ^ 0x06);
    }
    rows
}

/// Extracts the rows of a table (the corruption functions operate on
/// rows).
pub fn rows_of(ott: &ObjectTrackingTable) -> Vec<OttRow> {
    ott.records()
        .iter()
        .map(|r| OttRow { object: r.object, device: r.device, ts: r.ts, te: r.te })
        .collect()
}

/// Randomly removes a fraction of the rows (missed detections).
pub fn drop_records(mut rows: Vec<OttRow>, drop_fraction: f64, seed: u64) -> Vec<OttRow> {
    assert!((0.0..=1.0).contains(&drop_fraction), "fraction must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    rows.retain(|_| rng.random_range(0.0..1.0) >= drop_fraction);
    rows
}

/// Applies bounded random offsets to record endpoints (clock jitter).
///
/// Offsets are clamped so each record keeps `ts ≤ te` and per-object
/// records stay disjoint: the OTT invariants survive.
pub fn jitter_timestamps(mut rows: Vec<OttRow>, max_jitter: f64, seed: u64) -> Vec<OttRow> {
    assert!(max_jitter >= 0.0, "jitter must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    // Sort per object so neighbour constraints are known. total_cmp keeps
    // the order total even if a NaN sneaks in upstream.
    rows.sort_by(|a, b| a.object.cmp(&b.object).then_with(|| a.ts.total_cmp(&b.ts)));
    for i in 0..rows.len() {
        let prev_te =
            if i > 0 && rows[i - 1].object == rows[i].object { Some(rows[i - 1].te) } else { None };
        let next_ts = if i + 1 < rows.len() && rows[i + 1].object == rows[i].object {
            Some(rows[i + 1].ts)
        } else {
            None
        };
        let row = &mut rows[i];
        let dts = rng.random_range(-max_jitter..=max_jitter);
        let dte = rng.random_range(-max_jitter..=max_jitter);
        let mut ts = row.ts + dts;
        let mut te = row.te + dte;
        if let Some(lo) = prev_te {
            ts = ts.max(lo);
        }
        if let Some(hi) = next_ts {
            te = te.min(hi);
        }
        if te < ts {
            te = ts;
        }
        row.ts = ts;
        row.te = te;
    }
    rows
}

/// Replaces the device of a fraction of rows with a random other device
/// (ghost reads / tag collisions). The resulting gaps are frequently
/// infeasible at `V_max`, exercising the empty-region handling.
pub fn inject_teleports(
    mut rows: Vec<OttRow>,
    teleport_fraction: f64,
    device_count: u32,
    seed: u64,
) -> Vec<OttRow> {
    assert!((0.0..=1.0).contains(&teleport_fraction), "fraction must be in [0, 1]");
    assert!(device_count > 0, "need at least one device");
    let mut rng = StdRng::seed_from_u64(seed);
    for row in &mut rows {
        if rng.random_range(0.0..1.0) < teleport_fraction {
            row.device = inflow_indoor::DeviceId(rng.random_range(0..device_count));
        }
    }
    rows
}

/// The `[min ts, max te]` span of the rows (`None` when empty).
fn time_span(rows: &[OttRow]) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in rows {
        lo = lo.min(r.ts);
        hi = hi.max(r.te);
    }
    (lo <= hi).then_some((lo, hi))
}

/// Simulates reader outages: `outage_count` random devices each go dark
/// for a random `outage_len`-second window, deleting every row that
/// device would have produced while dark (any overlap with the window).
pub fn inject_outages(
    rows: Vec<OttRow>,
    outage_count: usize,
    outage_len: f64,
    device_count: u32,
    seed: u64,
) -> Vec<OttRow> {
    assert!(outage_len >= 0.0, "outage length must be non-negative");
    assert!(device_count > 0, "need at least one device");
    let Some((lo, hi)) = time_span(&rows) else {
        return rows;
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let outages: Vec<(inflow_indoor::DeviceId, f64, f64)> = (0..outage_count)
        .map(|_| {
            let dev = inflow_indoor::DeviceId(rng.random_range(0..device_count));
            let start = rng.random_range(lo..=hi.max(lo));
            (dev, start, start + outage_len)
        })
        .collect();
    let mut rows = rows;
    rows.retain(|r| {
        !outages.iter().any(|&(dev, start, end)| r.device == dev && r.ts < end && r.te > start)
    });
    rows
}

/// Simulates pipeline-wide loss bursts (collector crash, network
/// partition): `burst_count` random `burst_len`-second windows in which
/// *every* device's rows are lost.
pub fn burst_loss(rows: Vec<OttRow>, burst_count: usize, burst_len: f64, seed: u64) -> Vec<OttRow> {
    assert!(burst_len >= 0.0, "burst length must be non-negative");
    let Some((lo, hi)) = time_span(&rows) else {
        return rows;
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let bursts: Vec<(f64, f64)> = (0..burst_count)
        .map(|_| {
            let start = rng.random_range(lo..=hi.max(lo));
            (start, start + burst_len)
        })
        .collect();
    let mut rows = rows;
    rows.retain(|r| !bursts.iter().any(|&(start, end)| r.ts < end && r.te > start));
    rows
}

/// Applies per-device clock *drift*: each device's clock runs fast or
/// slow by a rate drawn from `[-max_rate, +max_rate]`, so a timestamp `t`
/// becomes `t + rate · (t − t₀)` (anchored at the dataset start `t₀`).
///
/// Unlike [`jitter_timestamps`], drift is unclamped: records observed by
/// different devices skew apart progressively, breaking per-object
/// ordering and creating overlapping runs — the dirty input the
/// sanitization gate's reorder/clamp repairs are for.
pub fn clock_drift(mut rows: Vec<OttRow>, max_rate: f64, seed: u64) -> Vec<OttRow> {
    assert!((0.0..1.0).contains(&max_rate), "drift rate must be in [0, 1)");
    let Some((t0, _)) = time_span(&rows) else {
        return rows;
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rates: std::collections::HashMap<inflow_indoor::DeviceId, f64> =
        std::collections::HashMap::new();
    for row in &mut rows {
        let rate =
            *rates.entry(row.device).or_insert_with(|| rng.random_range(-max_rate..=max_rate));
        row.ts += rate * (row.ts - t0);
        row.te += rate * (row.te - t0);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_synthetic, SyntheticConfig};
    use inflow_tracking::ObjectTrackingTable;

    fn base_rows() -> Vec<OttRow> {
        rows_of(&generate_synthetic(&SyntheticConfig::tiny()).ott)
    }

    #[test]
    fn drop_reduces_row_count_proportionally() {
        let rows = base_rows();
        let kept = drop_records(rows.clone(), 0.3, 1);
        let ratio = kept.len() as f64 / rows.len() as f64;
        assert!(
            (0.6..0.8).contains(&ratio),
            "expected ~70% kept, got {ratio} ({} of {})",
            kept.len(),
            rows.len()
        );
        // Still a valid OTT.
        ObjectTrackingTable::from_rows(kept).unwrap();
        // Extremes.
        assert_eq!(drop_records(rows.clone(), 1.0, 1).len(), 0);
        assert_eq!(drop_records(rows.clone(), 0.0, 1).len(), rows.len());
    }

    #[test]
    fn jitter_preserves_ott_invariants() {
        let rows = base_rows();
        let jittered = jitter_timestamps(rows, 0.8, 7);
        // from_rows re-validates interval sanity and per-object disjointness.
        let ott = ObjectTrackingTable::from_rows(jittered).unwrap();
        assert!(!ott.is_empty());
    }

    #[test]
    fn jitter_zero_is_identity_up_to_order() {
        let rows = base_rows();
        let mut sorted = rows.clone();
        sorted.sort_by(|a, b| a.object.cmp(&b.object).then_with(|| a.ts.total_cmp(&b.ts)));
        let out = jitter_timestamps(rows, 0.0, 7);
        assert_eq!(out, sorted);
    }

    #[test]
    fn teleports_change_devices_only() {
        let rows = base_rows();
        let mutated = inject_teleports(rows.clone(), 0.5, 40, 3);
        assert_eq!(mutated.len(), rows.len());
        let changed = rows.iter().zip(&mutated).filter(|(a, b)| a.device != b.device).count();
        assert!(changed > 0, "expected some teleports");
        for (a, b) in rows.iter().zip(&mutated) {
            assert_eq!((a.object, a.ts, a.te), (b.object, b.ts, b.te));
        }
    }

    #[test]
    fn determinism_given_seed() {
        let rows = base_rows();
        assert_eq!(drop_records(rows.clone(), 0.4, 9), drop_records(rows.clone(), 0.4, 9));
        assert_eq!(
            jitter_timestamps(rows.clone(), 0.5, 9),
            jitter_timestamps(rows.clone(), 0.5, 9)
        );
        assert_eq!(inject_teleports(rows.clone(), 0.2, 10, 9), inject_teleports(rows, 0.2, 10, 9));
    }

    #[test]
    fn outages_silence_whole_devices_in_windows() {
        let rows = base_rows();
        let out = inject_outages(rows.clone(), 5, 120.0, 40, 17);
        assert!(out.len() < rows.len(), "outages should delete detections");
        // Zero outages is the identity.
        assert_eq!(inject_outages(rows.clone(), 0, 120.0, 40, 17), rows);
        // Determinism.
        assert_eq!(
            inject_outages(rows.clone(), 5, 120.0, 40, 17),
            inject_outages(rows, 5, 120.0, 40, 17)
        );
    }

    #[test]
    fn bursts_delete_time_windows_across_devices() {
        let rows = base_rows();
        let out = burst_loss(rows.clone(), 3, 60.0, 23);
        assert!(out.len() < rows.len(), "bursts should delete rows");
        assert_eq!(burst_loss(rows.clone(), 0, 60.0, 23), rows);
        assert_eq!(burst_loss(rows.clone(), 3, 60.0, 23), burst_loss(rows, 3, 60.0, 23));
    }

    #[test]
    fn drift_skews_devices_apart_and_breaks_ordering() {
        let rows = base_rows();
        let out = clock_drift(rows.clone(), 0.05, 31);
        assert_eq!(out.len(), rows.len());
        // Every record still has ts ≤ te and finite endpoints.
        for r in &out {
            assert!(r.ts.is_finite() && r.te.is_finite());
            assert!(r.ts <= r.te, "drift must preserve within-record order");
        }
        let moved = rows.iter().zip(&out).filter(|(a, b)| a.ts != b.ts || a.te != b.te).count();
        assert!(moved > 0, "drift should move timestamps");
        assert_eq!(clock_drift(rows.clone(), 0.05, 31), clock_drift(rows, 0.05, 31));
    }

    #[test]
    fn corruption_grid_is_graded() {
        let grid = corruption_grid(7);
        assert_eq!(grid.len(), 4);
        assert!(grid[0].is_clean());
        assert!(!grid[3].is_clean());
        assert!(grid[1].drop_fraction < grid[3].drop_fraction);

        let rows = base_rows();
        // The clean spec is a no-op; harsher specs lose more rows.
        assert_eq!(apply_corruption(rows.clone(), &grid[0], 40), rows);
        let mild = apply_corruption(rows.clone(), &grid[1], 40);
        let severe = apply_corruption(rows.clone(), &grid[3], 40);
        assert!(mild.len() <= rows.len());
        assert!(severe.len() < mild.len(), "severe should lose more than mild");
        // Deterministic end to end.
        assert_eq!(severe, apply_corruption(rows, &grid[3], 40));
    }
}
