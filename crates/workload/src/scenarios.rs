//! Ready-made floor plans for the indoor settings the paper's
//! introduction motivates: office buildings, libraries, and metro
//! stations (§1: "shopping malls, office buildings, libraries, metro
//! stations, and airports").
//!
//! Each scenario builds a validated [`FloorPlan`] with a door topology, a
//! proximity-device deployment whose detection ranges never overlap, and
//! a POI set — ready to combine with the movement simulator or with
//! externally captured tracking data. The synthetic grid (shopping-mall
//! style) and the airport live in [`crate::synthetic`] and [`crate::cph`].

use inflow_geometry::{Point, Polygon};
use inflow_indoor::{CellKind, FloorPlan, FloorPlanBuilder};

/// An office floor: a central corridor with private offices on one side
/// and meeting rooms on the other; readers at every meeting-room door and
/// alternate office doors; POIs are the meeting rooms, the printer nook,
/// and the kitchen.
///
/// `offices` is the number of office rooms (at least 2).
pub fn office_plan(offices: usize) -> FloorPlan {
    assert!(offices >= 2, "an office floor needs at least 2 offices");
    let office_w = 5.0;
    let office_d = 6.0;
    let corridor_w = 2.5;
    let length = offices as f64 * office_w;

    let mut b = FloorPlanBuilder::new();
    let corridor = b.add_cell(
        "corridor",
        CellKind::Hallway,
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(length, corridor_w)),
    );

    // Offices along the north side.
    for i in 0..offices {
        let x0 = i as f64 * office_w;
        let office = b.add_cell(
            format!("office-{i}"),
            CellKind::Room,
            Polygon::rectangle(
                Point::new(x0, corridor_w),
                Point::new(x0 + office_w, corridor_w + office_d),
            ),
        );
        let door = Point::new(x0 + office_w / 2.0, corridor_w);
        b.add_door(format!("office-door-{i}"), door, office, corridor);
        if i % 2 == 0 {
            b.add_device(format!("dev-office-{i}"), door, 1.0);
        }
    }

    // Meeting rooms, kitchen, and printer nook along the south side.
    let south_rooms = (offices / 2).max(2);
    let south_w = length / south_rooms as f64;
    for i in 0..south_rooms {
        let x0 = i as f64 * south_w;
        let name = match i {
            0 => "kitchen".to_string(),
            1 => "printer-nook".to_string(),
            n => format!("meeting-{}", n - 2),
        };
        let room = b.add_cell(
            &name,
            CellKind::Room,
            Polygon::rectangle(Point::new(x0, -office_d), Point::new(x0 + south_w, 0.0)),
        );
        let door = Point::new(x0 + south_w / 2.0, 0.0);
        b.add_door(format!("{name}-door"), door, room, corridor);
        b.add_device(format!("dev-{name}"), door, 1.0);
        // Each south room is a POI (inset from the walls).
        b.add_poi(
            format!("poi-{name}"),
            Polygon::rectangle(
                Point::new(x0 + 0.5, -office_d + 0.5),
                Point::new(x0 + south_w - 0.5, -0.5),
            ),
        );
    }

    b.build().expect("office plan is valid by construction")
}

/// A library floor: an entrance hall, a row of book-stack aisles, and two
/// reading rooms; readers at the entrance, between stacks, and at the
/// reading-room doors; POIs are each aisle and each reading room.
pub fn library_plan(aisles: usize) -> FloorPlan {
    assert!(aisles >= 2, "a library needs at least 2 stack aisles");
    let aisle_w = 4.0;
    let aisle_d = 12.0;
    let hall_d = 6.0;
    let length = aisles as f64 * aisle_w + 16.0; // stacks + two reading rooms

    let mut b = FloorPlanBuilder::new();
    let hall = b.add_cell(
        "entrance-hall",
        CellKind::Hallway,
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(length, hall_d)),
    );
    b.add_device("dev-entrance", Point::new(length / 2.0, hall_d / 2.0), 1.5);

    for i in 0..aisles {
        let x0 = i as f64 * aisle_w;
        let aisle = b.add_cell(
            format!("stacks-{i}"),
            CellKind::Room,
            Polygon::rectangle(Point::new(x0, hall_d), Point::new(x0 + aisle_w, hall_d + aisle_d)),
        );
        let door = Point::new(x0 + aisle_w / 2.0, hall_d);
        b.add_door(format!("stacks-door-{i}"), door, aisle, hall);
        if i % 2 == 1 {
            b.add_device(format!("dev-stacks-{i}"), door, 1.0);
        }
        b.add_poi(
            format!("poi-stacks-{i}"),
            Polygon::rectangle(
                Point::new(x0 + 0.4, hall_d + 0.4),
                Point::new(x0 + aisle_w - 0.4, hall_d + aisle_d - 0.4),
            ),
        );
    }

    // Two reading rooms east of the stacks.
    let rr_x0 = aisles as f64 * aisle_w;
    for (i, name) in ["reading-quiet", "reading-group"].iter().enumerate() {
        let x0 = rr_x0 + i as f64 * 8.0;
        let room = b.add_cell(
            *name,
            CellKind::Room,
            Polygon::rectangle(Point::new(x0, hall_d), Point::new(x0 + 8.0, hall_d + aisle_d)),
        );
        let door = Point::new(x0 + 4.0, hall_d);
        b.add_door(format!("{name}-door"), door, room, hall);
        b.add_device(format!("dev-{name}"), door, 1.0);
        b.add_poi(
            format!("poi-{name}"),
            Polygon::rectangle(
                Point::new(x0 + 0.5, hall_d + 0.5),
                Point::new(x0 + 7.5, hall_d + aisle_d - 0.5),
            ),
        );
    }

    b.build().expect("library plan is valid by construction")
}

/// A metro station mezzanine: a ticket hall with fare gates leading to a
/// platform-access concourse; readers at the gates and along both halls;
/// POIs are the ticket machines, each gate line, and the platform stairs.
pub fn metro_station_plan(gates: usize) -> FloorPlan {
    assert!(gates >= 2, "a station needs at least 2 fare gates");
    let hall_len = (gates as f64 * 6.0).max(30.0);
    let hall_d = 12.0;
    let concourse_d = 10.0;

    let mut b = FloorPlanBuilder::new();
    let ticket_hall = b.add_cell(
        "ticket-hall",
        CellKind::Hallway,
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(hall_len, hall_d)),
    );
    let concourse = b.add_cell(
        "concourse",
        CellKind::Hallway,
        Polygon::rectangle(Point::new(0.0, hall_d), Point::new(hall_len, hall_d + concourse_d)),
    );

    // Fare gates: evenly spaced doors between the halls, one reader each.
    let pitch = hall_len / gates as f64;
    for g in 0..gates {
        let x = (g as f64 + 0.5) * pitch;
        b.add_door(format!("gate-{g}"), Point::new(x, hall_d), ticket_hall, concourse);
        b.add_device(format!("dev-gate-{g}"), Point::new(x, hall_d), 1.2);
        b.add_poi(
            format!("poi-gate-{g}"),
            Polygon::rectangle(
                Point::new(x - pitch / 2.0 + 0.3, hall_d - 2.0),
                Point::new(x + pitch / 2.0 - 0.3, hall_d + 2.0),
            ),
        );
    }

    // Ticket machines near the entrance (south wall) and platform stairs
    // (north wall).
    b.add_poi(
        "poi-ticket-machines",
        Polygon::rectangle(Point::new(1.0, 0.5), Point::new(hall_len / 3.0, 3.0)),
    );
    b.add_poi(
        "poi-stairs-east",
        Polygon::rectangle(
            Point::new(hall_len - 6.0, hall_d + concourse_d - 3.0),
            Point::new(hall_len - 1.0, hall_d + concourse_d - 0.5),
        ),
    );
    b.add_poi(
        "poi-stairs-west",
        Polygon::rectangle(
            Point::new(1.0, hall_d + concourse_d - 3.0),
            Point::new(6.0, hall_d + concourse_d - 0.5),
        ),
    );
    b.add_device("dev-entrance", Point::new(2.0, 2.0), 1.2);
    b.add_device("dev-stairs", Point::new(hall_len - 3.0, hall_d + concourse_d - 1.5), 1.2);

    b.build().expect("station plan is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflow_indoor::DistanceOracle;

    fn assert_connected(plan: &FloorPlan) {
        let oracle = DistanceOracle::new(plan);
        let origin = plan.cells()[0].footprint().centroid();
        for cell in plan.cells() {
            let p = cell.footprint().centroid();
            assert!(oracle.distance(plan, origin, p).is_some(), "cell {} unreachable", cell.name);
        }
    }

    fn assert_ranges_disjoint(plan: &FloorPlan) {
        let devices = plan.devices();
        for (i, a) in devices.iter().enumerate() {
            for b in &devices[i + 1..] {
                assert!(
                    a.position.distance(b.position) > a.range + b.range,
                    "{} and {} overlap",
                    a.name,
                    b.name
                );
            }
        }
    }

    fn assert_pois_inside(plan: &FloorPlan) {
        for poi in plan.pois() {
            assert!(plan.mbr().contains_mbr(&poi.mbr()), "{} escapes the plan", poi.name);
        }
    }

    #[test]
    fn office_plan_is_sound() {
        let plan = office_plan(8);
        assert_eq!(plan.cells().len(), 1 + 8 + 4); // corridor + offices + south rooms
        assert!(plan.pois().len() >= 4);
        assert_connected(&plan);
        assert_ranges_disjoint(&plan);
        assert_pois_inside(&plan);
        // Named amenities exist.
        assert!(plan.pois().iter().any(|p| p.name == "poi-kitchen"));
        assert!(plan.pois().iter().any(|p| p.name == "poi-printer-nook"));
    }

    #[test]
    fn library_plan_is_sound() {
        let plan = library_plan(6);
        assert_connected(&plan);
        assert_ranges_disjoint(&plan);
        assert_pois_inside(&plan);
        assert_eq!(plan.pois().len(), 6 + 2); // aisles + reading rooms
    }

    #[test]
    fn metro_station_plan_is_sound() {
        let plan = metro_station_plan(5);
        assert_connected(&plan);
        assert_ranges_disjoint(&plan);
        assert_pois_inside(&plan);
        assert_eq!(plan.pois().len(), 5 + 3); // gates + machines + 2 stairs
        assert_eq!(plan.doors().len(), 5);
    }

    #[test]
    fn scenarios_scale_with_parameters() {
        assert!(office_plan(12).cells().len() > office_plan(4).cells().len());
        assert!(library_plan(8).pois().len() > library_plan(2).pois().len());
        assert!(metro_station_plan(8).devices().len() > metro_station_plan(2).devices().len());
    }

    #[test]
    fn scenarios_work_with_the_movement_simulator() {
        // Generate a tiny amount of tracking data on the office plan via
        // the shared device index + path machinery.
        use crate::movement::{sample_readings, DeviceIndex, TimedPath};
        use inflow_tracking::{merge_raw_readings, ObjectId, ObjectTrackingTable};

        let plan = office_plan(6);
        let oracle = DistanceOracle::new(&plan);
        let index = DeviceIndex::build(&plan);
        let from = plan.cells()[1].footprint().centroid(); // an office
        let to = plan.cells()[8].footprint().centroid(); // a south room
        let route = oracle.route(&plan, from, to).expect("connected");
        let mut path = TimedPath::new();
        let mut t = 0.0;
        path.push(t, route.waypoints[0]);
        for pair in route.waypoints.windows(2) {
            t += pair[0].distance(pair[1]) / 1.1;
            path.push(t, pair[1]);
        }
        let mut readings = Vec::new();
        sample_readings(&plan, &index, ObjectId(0), &path, 1.0, &mut readings);
        assert!(!readings.is_empty(), "the walk passes at least one reader");
        let ott = ObjectTrackingTable::from_rows(merge_raw_readings(readings, 1.5)).unwrap();
        assert!(!ott.is_empty());
    }
}
