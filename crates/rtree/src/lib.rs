//! R-tree spatial indexing for the top-k join algorithms.
//!
//! The paper (§4.1) uses two R-tree based indexes: `R_P` over the query
//! POIs and an in-memory *aggregate* R-tree `R_I` over the MBRs of the
//! objects relevant to a query, where every node entry is augmented with a
//! `count` of the objects in its subtree — the source of the join
//! algorithms' upper-bound flows.
//!
//! [`RTree`] provides both roles:
//!
//! * Guttman-style insertion with quadratic split, plus an STR
//!   (sort-tile-recursive) bulk loader for static data;
//! * rectangle intersection queries;
//! * a low-level *entry* API ([`EntryRef`]) exposing per-entry MBRs,
//!   aggregate counts, and child navigation, which the join algorithms
//!   (Algorithms 2, 3 and 5) drive directly.

use inflow_geometry::Mbr;

/// Maximum number of entries per node before a split.
pub const MAX_ENTRIES: usize = 16;
/// Minimum number of entries per node after a split.
pub const MIN_ENTRIES: usize = 6;

/// A 2D R-tree mapping rectangles to payloads of type `T`.
#[derive(Debug)]
pub struct RTree<T> {
    nodes: Vec<Node>,
    items: Vec<T>,
    root: u32,
    len: usize,
}

#[derive(Debug)]
struct Node {
    /// 0 for leaves; grows towards the root.
    level: u32,
    entries: Vec<Entry>,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    mbr: Mbr,
    /// Child node index (internal nodes) or item index (leaves).
    child: u32,
    /// Number of items in the subtree (1 for leaf entries).
    count: u32,
}

/// An opaque reference to one entry of the tree, valid until the next
/// mutation. The join algorithms copy these freely into join lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryRef {
    node: u32,
    slot: u32,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        RTree::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree.
    pub fn new() -> RTree<T> {
        RTree {
            nodes: vec![Node { level: 0, entries: Vec::new() }],
            items: Vec::new(),
            root: 0,
            len: 0,
        }
    }

    /// Bulk-loads the tree with sort-tile-recursive packing; much better
    /// node utilization than repeated insertion for static data.
    pub fn bulk_load(data: Vec<(Mbr, T)>) -> RTree<T> {
        if data.is_empty() {
            return RTree::new();
        }
        let mut tree = RTree {
            nodes: Vec::new(),
            items: Vec::with_capacity(data.len()),
            root: 0,
            len: data.len(),
        };
        // Leaf entries reference items by index.
        let mut entries: Vec<Entry> = Vec::with_capacity(data.len());
        for (mbr, item) in data {
            let idx = tree.items.len() as u32;
            tree.items.push(item);
            entries.push(Entry { mbr, child: idx, count: 1 });
        }
        let mut level = 0u32;
        loop {
            let parents = tree.pack_level(entries, level);
            if parents.len() == 1 {
                tree.root = parents[0].child;
                return tree;
            }
            entries = parents;
            level += 1;
        }
    }

    /// Packs one level's entries into nodes (STR), returning the entries of
    /// the level above.
    fn pack_level(&mut self, mut entries: Vec<Entry>, level: u32) -> Vec<Entry> {
        let n = entries.len();
        let node_count = n.div_ceil(MAX_ENTRIES);
        let strip_count = (node_count as f64).sqrt().ceil() as usize;
        let per_strip = n.div_ceil(strip_count);
        entries.sort_by(|a, b| a.mbr.center().x.total_cmp(&b.mbr.center().x));
        let mut parents = Vec::with_capacity(node_count);
        for strip in entries.chunks_mut(per_strip.max(1)) {
            strip.sort_by(|a, b| a.mbr.center().y.total_cmp(&b.mbr.center().y));
            for group in strip.chunks(MAX_ENTRIES) {
                let node_idx = self.nodes.len() as u32;
                let mbr = group.iter().fold(Mbr::EMPTY, |m, e| m.union(&e.mbr));
                let count = group.iter().map(|e| e.count).sum();
                self.nodes.push(Node { level, entries: group.to_vec() });
                parents.push(Entry { mbr, child: node_idx, count });
            }
        }
        parents
    }

    /// Number of items in the tree.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a single leaf node).
    pub fn height(&self) -> usize {
        self.nodes[self.root as usize].level as usize + 1
    }

    /// Inserts an item with its bounding rectangle.
    pub fn insert(&mut self, mbr: Mbr, item: T) {
        let item_idx = self.items.len() as u32;
        self.items.push(item);
        let entry = Entry { mbr, child: item_idx, count: 1 };
        if let Some((split_a, split_b)) = self.insert_at(self.root, entry) {
            // Root split: grow the tree by one level.
            let new_level = self.nodes[self.root as usize].level + 1;
            let new_root = self.nodes.len() as u32;
            self.nodes.push(Node { level: new_level, entries: vec![split_a, split_b] });
            self.root = new_root;
        }
        self.len += 1;
    }

    /// Recursively inserts `entry` under `node`; returns the replacement
    /// pair when the node split.
    fn insert_at(&mut self, node: u32, entry: Entry) -> Option<(Entry, Entry)> {
        let level = self.nodes[node as usize].level;
        if level == 0 {
            self.nodes[node as usize].entries.push(entry);
        } else {
            let slot = self.choose_subtree(node, &entry.mbr);
            let child = self.nodes[node as usize].entries[slot].child;
            match self.insert_at(child, entry) {
                None => {
                    // Update the covering entry in place.
                    let e = &mut self.nodes[node as usize].entries[slot];
                    e.mbr = e.mbr.union(&entry.mbr);
                    e.count += 1;
                }
                Some((a, b)) => {
                    self.nodes[node as usize].entries[slot] = a;
                    self.nodes[node as usize].entries.push(b);
                }
            }
        }
        if self.nodes[node as usize].entries.len() > MAX_ENTRIES {
            Some(self.split(node))
        } else {
            None
        }
    }

    /// Least-enlargement subtree choice (ties by smaller area).
    fn choose_subtree(&self, node: u32, mbr: &Mbr) -> usize {
        let entries = &self.nodes[node as usize].entries;
        let mut best = 0usize;
        let mut best_enlargement = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for (i, e) in entries.iter().enumerate() {
            let enlargement = e.mbr.enlargement(mbr);
            let area = e.mbr.area();
            if enlargement < best_enlargement
                || (enlargement == best_enlargement && area < best_area)
            {
                best = i;
                best_enlargement = enlargement;
                best_area = area;
            }
        }
        best
    }

    /// Guttman's quadratic split. The node keeps one group; a sibling takes
    /// the other; the returned entry pair replaces the original parent
    /// entry.
    fn split(&mut self, node: u32) -> (Entry, Entry) {
        let level = self.nodes[node as usize].level;
        let entries = std::mem::take(&mut self.nodes[node as usize].entries);

        // Pick the pair of seeds wasting the most area together.
        let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
        for i in 0..entries.len() {
            for j in i + 1..entries.len() {
                let waste = entries[i].mbr.union(&entries[j].mbr).area()
                    - entries[i].mbr.area()
                    - entries[j].mbr.area();
                if waste > worst {
                    worst = waste;
                    seed_a = i;
                    seed_b = j;
                }
            }
        }

        let mut group_a = vec![entries[seed_a]];
        let mut group_b = vec![entries[seed_b]];
        let mut mbr_a = entries[seed_a].mbr;
        let mut mbr_b = entries[seed_b].mbr;
        let mut rest: Vec<Entry> = entries
            .into_iter()
            .enumerate()
            .filter(|&(i, _)| i != seed_a && i != seed_b)
            .map(|(_, e)| e)
            .collect();

        while let Some(pos) = next_split_candidate(&rest, &mbr_a, &mbr_b) {
            let e = rest.swap_remove(pos);
            let da = mbr_a.enlargement(&e.mbr);
            let db = mbr_b.enlargement(&e.mbr);
            // Force-assign when one group must absorb the remainder to
            // satisfy the minimum fill.
            let need_a = MIN_ENTRIES.saturating_sub(group_a.len());
            let need_b = MIN_ENTRIES.saturating_sub(group_b.len());
            let remaining = rest.len() + 1;
            let to_a = if need_a >= remaining {
                true
            } else if need_b >= remaining {
                false
            } else {
                da < db || (da == db && mbr_a.area() <= mbr_b.area())
            };
            if to_a {
                mbr_a = mbr_a.union(&e.mbr);
                group_a.push(e);
            } else {
                mbr_b = mbr_b.union(&e.mbr);
                group_b.push(e);
            }
        }

        let count_a = group_a.iter().map(|e| e.count).sum();
        let count_b = group_b.iter().map(|e| e.count).sum();
        self.nodes[node as usize].entries = group_a;
        let sibling = self.nodes.len() as u32;
        self.nodes.push(Node { level, entries: group_b });
        (
            Entry { mbr: mbr_a, child: node, count: count_a },
            Entry { mbr: mbr_b, child: sibling, count: count_b },
        )
    }

    /// Collects references to all items whose MBRs intersect `query`.
    pub fn query_intersecting(&self, query: &Mbr) -> Vec<&T> {
        let mut out = Vec::new();
        self.visit_intersecting(query, &mut |_mbr, item| out.push(item));
        out
    }

    /// Like [`RTree::query_intersecting`], but also reports how many tree
    /// nodes the search expanded — the observability layer's
    /// `rtree_nodes_visited` counter.
    pub fn query_intersecting_counted(&self, query: &Mbr) -> (Vec<&T>, usize) {
        let mut out = Vec::new();
        let visited = self.visit_counted(query, &mut |_mbr, item| out.push(item));
        (out, visited)
    }

    /// Visits `(mbr, item)` for every item whose MBR intersects `query`.
    pub fn visit_intersecting<'a>(&'a self, query: &Mbr, f: &mut dyn FnMut(&Mbr, &'a T)) {
        self.visit_counted(query, f);
    }

    fn visit_counted<'a>(&'a self, query: &Mbr, f: &mut dyn FnMut(&Mbr, &'a T)) -> usize {
        if self.len == 0 {
            return 0;
        }
        let mut visited = 0;
        let mut stack = vec![self.root];
        while let Some(node_idx) = stack.pop() {
            visited += 1;
            let node = &self.nodes[node_idx as usize];
            for e in &node.entries {
                if e.mbr.intersects(query) {
                    if node.level == 0 {
                        f(&e.mbr, &self.items[e.child as usize]);
                    } else {
                        stack.push(e.child);
                    }
                }
            }
        }
        visited
    }

    // ---- Entry-level API used by the join algorithms -------------------

    /// The entries of the root node.
    pub fn root_entries(&self) -> Vec<EntryRef> {
        self.node_entry_refs(self.root)
    }

    fn node_entry_refs(&self, node: u32) -> Vec<EntryRef> {
        (0..self.nodes[node as usize].entries.len())
            .map(|slot| EntryRef { node, slot: slot as u32 })
            .collect()
    }

    fn entry(&self, e: EntryRef) -> &Entry {
        &self.nodes[e.node as usize].entries[e.slot as usize]
    }

    /// The entry's bounding rectangle.
    pub fn entry_mbr(&self, e: EntryRef) -> Mbr {
        self.entry(e).mbr
    }

    /// The number of items in the entry's subtree (1 for leaf entries) —
    /// the aggregate `count` of the paper's `R_I`.
    pub fn entry_count(&self, e: EntryRef) -> u32 {
        self.entry(e).count
    }

    /// Whether the entry belongs to a leaf node (i.e. references an item).
    pub fn is_leaf_entry(&self, e: EntryRef) -> bool {
        self.nodes[e.node as usize].level == 0
    }

    /// The entries of the child node referenced by a non-leaf entry.
    ///
    /// # Panics
    /// Panics when called on a leaf entry.
    pub fn children(&self, e: EntryRef) -> Vec<EntryRef> {
        assert!(!self.is_leaf_entry(e), "leaf entries have no children");
        self.node_entry_refs(self.entry(e).child)
    }

    /// The item referenced by a leaf entry.
    ///
    /// # Panics
    /// Panics when called on a non-leaf entry.
    pub fn item(&self, e: EntryRef) -> &T {
        assert!(self.is_leaf_entry(e), "internal entries carry no item");
        &self.items[self.entry(e).child as usize]
    }

    /// Iterates over all `(mbr, item)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (Mbr, &T)> + '_ {
        self.nodes.iter().filter(|n| n.level == 0).flat_map(move |n| {
            n.entries.iter().map(move |e| (e.mbr, &self.items[e.child as usize]))
        })
    }
}

/// Picks the next entry to assign during the quadratic split: the one with
/// the greatest preference for either group. Returns `None` when done.
fn next_split_candidate(rest: &[Entry], mbr_a: &Mbr, mbr_b: &Mbr) -> Option<usize> {
    if rest.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_pref = f64::NEG_INFINITY;
    for (i, e) in rest.iter().enumerate() {
        let pref = (mbr_a.enlargement(&e.mbr) - mbr_b.enlargement(&e.mbr)).abs();
        if pref > best_pref {
            best_pref = pref;
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflow_geometry::Point;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Mbr {
        Mbr::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// Deterministic pseudo-random rectangles (xorshift, no external crates).
    fn pseudo_random_rects(n: usize, seed: u64) -> Vec<Mbr> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let x = next() * 100.0;
                let y = next() * 100.0;
                let w = next() * 5.0;
                let h = next() * 5.0;
                rect(x, y, x + w, y + h)
            })
            .collect()
    }

    fn brute_force(rects: &[Mbr], query: &Mbr) -> Vec<usize> {
        let mut v: Vec<usize> =
            rects.iter().enumerate().filter(|(_, r)| r.intersects(query)).map(|(i, _)| i).collect();
        v.sort_unstable();
        v
    }

    fn check_against_brute_force(tree: &RTree<usize>, rects: &[Mbr]) {
        for q in pseudo_random_rects(40, 777) {
            let q = rect(q.lo.x, q.lo.y, q.lo.x + 20.0, q.lo.y + 20.0);
            let mut got: Vec<usize> = tree.query_intersecting(&q).into_iter().copied().collect();
            got.sort_unstable();
            assert_eq!(got, brute_force(rects, &q), "query {q:?}");
        }
    }

    #[test]
    fn insert_then_query_matches_brute_force() {
        let rects = pseudo_random_rects(500, 42);
        let mut tree = RTree::new();
        for (i, &m) in rects.iter().enumerate() {
            tree.insert(m, i);
        }
        assert_eq!(tree.len(), 500);
        check_against_brute_force(&tree, &rects);
    }

    #[test]
    fn bulk_load_then_query_matches_brute_force() {
        let rects = pseudo_random_rects(500, 4242);
        let tree =
            RTree::bulk_load(rects.iter().copied().enumerate().map(|(i, m)| (m, i)).collect());
        assert_eq!(tree.len(), 500);
        check_against_brute_force(&tree, &rects);
    }

    #[test]
    fn empty_tree() {
        let tree: RTree<usize> = RTree::new();
        assert!(tree.is_empty());
        assert!(tree.query_intersecting(&rect(0.0, 0.0, 100.0, 100.0)).is_empty());
        assert!(tree.root_entries().is_empty());
        let bulk: RTree<usize> = RTree::bulk_load(Vec::new());
        assert!(bulk.is_empty());
    }

    #[test]
    fn single_item() {
        let mut tree = RTree::new();
        tree.insert(rect(1.0, 1.0, 2.0, 2.0), 7usize);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.query_intersecting(&rect(0.0, 0.0, 3.0, 3.0)), vec![&7]);
        assert!(tree.query_intersecting(&rect(5.0, 5.0, 6.0, 6.0)).is_empty());
    }

    /// Structural invariants: parent MBRs contain child MBRs and counts sum.
    fn check_invariants(tree: &RTree<usize>) {
        fn recurse(tree: &RTree<usize>, e: EntryRef) -> (Mbr, u32) {
            if tree.is_leaf_entry(e) {
                assert_eq!(tree.entry_count(e), 1);
                return (tree.entry_mbr(e), 1);
            }
            let mut total = 0;
            let parent_mbr = tree.entry_mbr(e);
            for child in tree.children(e) {
                let (child_mbr, child_count) = recurse(tree, child);
                assert!(parent_mbr.contains_mbr(&child_mbr), "parent MBR must contain child MBR");
                total += child_count;
            }
            assert_eq!(tree.entry_count(e), total, "aggregate count mismatch");
            (parent_mbr, total)
        }
        let mut total = 0;
        for e in tree.root_entries() {
            total += recurse(tree, e).1;
        }
        assert_eq!(total, tree.len() as u32);
    }

    #[test]
    fn invariants_after_insertion() {
        let rects = pseudo_random_rects(800, 99);
        let mut tree = RTree::new();
        for (i, &m) in rects.iter().enumerate() {
            tree.insert(m, i);
        }
        check_invariants(&tree);
        assert!(tree.height() >= 2);
    }

    #[test]
    fn invariants_after_bulk_load() {
        let rects = pseudo_random_rects(800, 123);
        let tree =
            RTree::bulk_load(rects.iter().copied().enumerate().map(|(i, m)| (m, i)).collect());
        check_invariants(&tree);
    }

    #[test]
    fn entry_api_reaches_every_item_once() {
        let rects = pseudo_random_rects(200, 5);
        let tree =
            RTree::bulk_load(rects.iter().copied().enumerate().map(|(i, m)| (m, i)).collect());
        let mut seen = [false; 200];
        let mut stack = tree.root_entries();
        while let Some(e) = stack.pop() {
            if tree.is_leaf_entry(e) {
                let &i = tree.item(e);
                assert!(!seen[i], "item {i} reached twice");
                seen[i] = true;
            } else {
                stack.extend(tree.children(e));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn iter_yields_all_items() {
        let rects = pseudo_random_rects(64, 9);
        let mut tree = RTree::new();
        for (i, &m) in rects.iter().enumerate() {
            tree.insert(m, i);
        }
        let mut items: Vec<usize> = tree.iter().map(|(_, &i)| i).collect();
        items.sort_unstable();
        assert_eq!(items, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_mbrs_are_kept() {
        let mut tree = RTree::new();
        let m = rect(0.0, 0.0, 1.0, 1.0);
        for i in 0..50usize {
            tree.insert(m, i);
        }
        assert_eq!(tree.query_intersecting(&m).len(), 50);
        check_invariants(&tree);
    }
}
