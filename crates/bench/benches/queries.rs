//! Criterion micro/meso-benchmarks: one group per query type per dataset
//! (the per-figure sweeps live in the `figures` binary, which measures the
//! same code paths over full parameter grids).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use inflow_bench::{analytics, base_cph, base_synthetic, poi_subset, Scale};
use inflow_core::{FlowAnalytics, IntervalQuery, SnapshotQuery};
use inflow_workload::{generate_cph, generate_synthetic};
use std::hint::black_box;

fn bench_scale() -> Scale {
    Scale { objects: 150, passengers: 120, duration: 1800.0, repeats: 1, ..Scale::default() }
}

fn synthetic_analytics() -> FlowAnalytics {
    let scale = bench_scale();
    analytics(generate_synthetic(&base_synthetic(&scale)), &scale)
}

fn cph_analytics() -> FlowAnalytics {
    let scale = bench_scale();
    analytics(generate_cph(&base_cph(&scale)), &scale)
}

fn snapshot_queries(c: &mut Criterion) {
    let fa = synthetic_analytics();
    let q = SnapshotQuery::new(900.0, poi_subset(&fa, 60, 0), 10);
    let mut group = c.benchmark_group("snapshot_synthetic");
    group.sample_size(10);
    group.bench_function("iterative", |b| {
        b.iter(|| black_box(fa.snapshot_topk_iterative(black_box(&q))))
    });
    group.bench_function("join", |b| {
        b.iter(|| black_box(fa.snapshot_topk_join(black_box(&q))))
    });
    group.finish();
}

fn interval_queries(c: &mut Criterion) {
    let fa = synthetic_analytics();
    let q = IntervalQuery::new(300.0, 900.0, poi_subset(&fa, 60, 0), 10);
    let mut group = c.benchmark_group("interval_synthetic");
    group.sample_size(10);
    group.bench_function("iterative", |b| {
        b.iter(|| black_box(fa.interval_topk_iterative(black_box(&q))))
    });
    group.bench_function("join", |b| {
        b.iter(|| black_box(fa.interval_topk_join(black_box(&q))))
    });
    group.finish();
}

fn cph_queries(c: &mut Criterion) {
    let fa = cph_analytics();
    let snap = SnapshotQuery::new(5400.0, poi_subset(&fa, 60, 0), 10);
    let int = IntervalQuery::new(3600.0, 4800.0, poi_subset(&fa, 60, 0), 10);
    let mut group = c.benchmark_group("cph_like");
    group.sample_size(10);
    group.bench_function("snapshot_iterative", |b| {
        b.iter(|| black_box(fa.snapshot_topk_iterative(black_box(&snap))))
    });
    group.bench_function("snapshot_join", |b| {
        b.iter(|| black_box(fa.snapshot_topk_join(black_box(&snap))))
    });
    group.bench_function("interval_iterative", |b| {
        b.iter(|| black_box(fa.interval_topk_iterative(black_box(&int))))
    });
    group.bench_function("interval_join", |b| {
        b.iter(|| black_box(fa.interval_topk_join(black_box(&int))))
    });
    group.finish();
}

fn substrate(c: &mut Criterion) {
    use inflow_geometry::{
        area_in_polygon, circle_polygon_area, Circle, GridResolution, Mbr, Point, Polygon,
    };
    use inflow_rtree::RTree;

    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);

    let circle = Circle::new(Point::new(1.0, 1.5), 2.0);
    let poly = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 3.0));
    group.bench_function("circle_polygon_area_exact", |b| {
        b.iter(|| black_box(circle_polygon_area(black_box(&circle), black_box(&poly))))
    });
    group.bench_function("area_in_polygon_coarse", |b| {
        b.iter(|| {
            black_box(area_in_polygon(
                black_box(&circle),
                black_box(&poly),
                GridResolution::COARSE,
            ))
        })
    });
    group.bench_function("area_in_polygon_default", |b| {
        b.iter(|| {
            black_box(area_in_polygon(
                black_box(&circle),
                black_box(&poly),
                GridResolution::DEFAULT,
            ))
        })
    });

    // R-tree build + query over a realistic POI-count set.
    let rects: Vec<(Mbr, usize)> = (0..1000)
        .map(|i| {
            let x = (i % 40) as f64 * 3.0;
            let y = (i / 40) as f64 * 4.0;
            (Mbr::new(Point::new(x, y), Point::new(x + 2.5, y + 3.0)), i)
        })
        .collect();
    group.bench_function("rtree_bulk_load_1k", |b| {
        b.iter_batched(|| rects.clone(), |r| black_box(RTree::bulk_load(r)), BatchSize::SmallInput)
    });
    let tree = RTree::bulk_load(rects);
    let query = Mbr::new(Point::new(20.0, 20.0), Point::new(60.0, 60.0));
    group.bench_function("rtree_query_1k", |b| {
        b.iter(|| black_box(tree.query_intersecting(black_box(&query))))
    });

    group.finish();
}

fn tracking_index(c: &mut Criterion) {
    use inflow_tracking::ArTree;
    let scale = bench_scale();
    let w = generate_synthetic(&base_synthetic(&scale));
    let mut group = c.benchmark_group("artree");
    group.sample_size(20);
    group.bench_function("build", |b| {
        b.iter(|| black_box(ArTree::build(black_box(&w.ott))))
    });
    let tree = ArTree::build(&w.ott);
    group.bench_function("point_query", |b| {
        b.iter(|| black_box(tree.point_query(black_box(900.0))))
    });
    group.bench_function("range_query_10min", |b| {
        b.iter(|| black_box(tree.range_query(black_box(600.0), black_box(1200.0))))
    });
    group.finish();
}

criterion_group!(
    benches,
    snapshot_queries,
    interval_queries,
    cph_queries,
    substrate,
    tracking_index
);
criterion_main!(benches);
