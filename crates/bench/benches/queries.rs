//! Micro/meso-benchmarks: one group per query type per dataset (the
//! per-figure sweeps live in the `figures` binary, which measures the
//! same code paths over full parameter grids).
//!
//! Deliberately dependency-free (`harness = false`, no criterion): the
//! workspace must build offline. Reports median-of-N wall times plus the
//! profiling-recorder overhead check (disabled recorder vs. enabled —
//! the disabled path is the default and must stay within noise).
//!
//! Run with `cargo bench -p inflow-bench` or
//! `cargo bench -p inflow-bench -- overhead` to filter by group name.

use inflow_bench::{analytics, base_cph, base_synthetic, poi_subset, Scale};
use inflow_core::{FlowAnalytics, IntervalQuery, SnapshotQuery};
use inflow_workload::{generate_cph, generate_synthetic};
use std::hint::black_box;
use std::time::Instant;

fn bench_scale() -> Scale {
    Scale { objects: 150, passengers: 120, duration: 1800.0, repeats: 1, ..Scale::default() }
}

/// Median wall time in milliseconds over `samples` runs (after one
/// warm-up run that also populates lazy caches).
fn time_ms<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn report(group: &str, name: &str, ms: f64) {
    println!("{group}/{name:<28} {ms:>10.3} ms");
}

fn snapshot_queries(fa: &FlowAnalytics) {
    let q = SnapshotQuery::new(900.0, poi_subset(fa, 60, 0), 10);
    report("snapshot_synthetic", "iterative", time_ms(10, || fa.snapshot_topk_iterative(&q)));
    report("snapshot_synthetic", "join", time_ms(10, || fa.snapshot_topk_join(&q)));
}

fn interval_queries(fa: &FlowAnalytics) {
    let q = IntervalQuery::new(300.0, 900.0, poi_subset(fa, 60, 0), 10);
    report("interval_synthetic", "iterative", time_ms(10, || fa.interval_topk_iterative(&q)));
    report("interval_synthetic", "join", time_ms(10, || fa.interval_topk_join(&q)));
}

fn cph_queries(fa: &FlowAnalytics) {
    let snap = SnapshotQuery::new(5400.0, poi_subset(fa, 60, 0), 10);
    let int = IntervalQuery::new(3600.0, 4800.0, poi_subset(fa, 60, 0), 10);
    report("cph_like", "snapshot_iterative", time_ms(10, || fa.snapshot_topk_iterative(&snap)));
    report("cph_like", "snapshot_join", time_ms(10, || fa.snapshot_topk_join(&snap)));
    report("cph_like", "interval_iterative", time_ms(10, || fa.interval_topk_iterative(&int)));
    report("cph_like", "interval_join", time_ms(10, || fa.interval_topk_join(&int)));
}

/// Acceptance check for the observability layer: the disabled recorder
/// (the default) must cost ≤2% versus itself run-to-run, and the
/// *enabled* recorder's cost is reported for context. Prints the
/// measured overhead so CI logs record it.
fn recorder_overhead(fa: &mut FlowAnalytics) {
    let q = IntervalQuery::new(300.0, 900.0, poi_subset(fa, 60, 0), 10);

    fa.set_profiling(false);
    let off_a = time_ms(10, || fa.interval_topk_join(&q));
    fa.set_profiling(true);
    let on = time_ms(10, || fa.interval_topk_join(&q));
    fa.set_profiling(false);
    let off_b = time_ms(10, || fa.interval_topk_join(&q));

    let off = off_a.min(off_b);
    let jitter = (off_a - off_b).abs() / off * 100.0;
    let enabled_delta = (on - off) / off * 100.0;
    report("overhead", "disabled_recorder", off);
    report("overhead", "enabled_recorder", on);
    println!(
        "overhead/summary: run-to-run jitter {jitter:.2}%, enabled-recorder delta {enabled_delta:+.2}%"
    );
}

/// Acceptance check for the sanitization layer: queries over a façade
/// with *no* sanitize report attached (the default path) must cost the
/// same as before the degraded-mode hooks existed — those hooks are plain
/// integer/f64 bumps plus one empty-set probe per object. Measured like
/// the recorder check: the delta between a report-free and a
/// report-carrying façade must sit within run-to-run jitter.
fn sanitizer_overhead(scale: &Scale) {
    use inflow_tracking::{sanitize_rows, ObjectId, ObjectTrackingTable, SanitizeConfig};
    use inflow_uncertainty::UrConfig;
    use inflow_workload::rows_of;

    let w = generate_synthetic(&base_synthetic(scale));
    let rows = rows_of(&w.ott);
    let cfg = || UrConfig {
        vmax: w.vmax,
        topology_check: true,
        resolution: scale.resolution,
        ..UrConfig::default()
    };
    let plain = FlowAnalytics::new(w.ctx.clone(), w.ott, cfg());
    let outcome =
        sanitize_rows(rows, &SanitizeConfig::repair_all().with_vmax(w.vmax), Some(w.ctx.plan()));
    let gated = FlowAnalytics::new(
        w.ctx.clone(),
        ObjectTrackingTable::from_rows(outcome.rows).expect("sanitized rows are consistent"),
        cfg(),
    )
    .with_sanitize_report(outcome.report, (0..50).map(ObjectId));

    let q = IntervalQuery::new(300.0, 900.0, poi_subset(&plain, 60, 0), 10);
    let off_a = time_ms(10, || plain.interval_topk_join(&q));
    let on = time_ms(10, || gated.interval_topk_join(&q));
    let off_b = time_ms(10, || plain.interval_topk_join(&q));

    let off = off_a.min(off_b);
    let jitter = (off_a - off_b).abs() / off * 100.0;
    let gated_delta = (on - off) / off * 100.0;
    report("sanitizer", "no_report", off);
    report("sanitizer", "with_report", on);
    println!(
        "sanitizer/summary: run-to-run jitter {jitter:.2}%, report-attached delta {gated_delta:+.2}%"
    );
}

fn substrate() {
    use inflow_geometry::{
        area_in_polygon, circle_polygon_area, Circle, GridResolution, Mbr, Point, Polygon,
    };
    use inflow_rtree::RTree;

    let circle = Circle::new(Point::new(1.0, 1.5), 2.0);
    let poly = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 3.0));
    report(
        "substrate",
        "circle_polygon_area_exact",
        time_ms(200, || circle_polygon_area(&circle, &poly)),
    );
    report(
        "substrate",
        "area_in_polygon_coarse",
        time_ms(50, || area_in_polygon(&circle, &poly, GridResolution::COARSE)),
    );
    report(
        "substrate",
        "area_in_polygon_default",
        time_ms(20, || area_in_polygon(&circle, &poly, GridResolution::DEFAULT)),
    );

    // R-tree build + query over a realistic POI-count set.
    let rects: Vec<(Mbr, usize)> = (0..1000)
        .map(|i| {
            let x = (i % 40) as f64 * 3.0;
            let y = (i / 40) as f64 * 4.0;
            (Mbr::new(Point::new(x, y), Point::new(x + 2.5, y + 3.0)), i)
        })
        .collect();
    report("substrate", "rtree_bulk_load_1k", time_ms(20, || RTree::bulk_load(rects.clone())));
    let tree = RTree::bulk_load(rects);
    let query = Mbr::new(Point::new(20.0, 20.0), Point::new(60.0, 60.0));
    report("substrate", "rtree_query_1k", time_ms(200, || tree.query_intersecting(&query)));
}

fn tracking_index() {
    use inflow_tracking::ArTree;
    let scale = bench_scale();
    let w = generate_synthetic(&base_synthetic(&scale));
    report("artree", "build", time_ms(20, || ArTree::build(&w.ott)));
    let tree = ArTree::build(&w.ott);
    report("artree", "point_query", time_ms(200, || tree.point_query(900.0)));
    report("artree", "range_query_10min", time_ms(200, || tree.range_query(600.0, 1200.0)));
}

fn main() {
    let filter: Option<String> = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let wants = |group: &str| filter.as_deref().is_none_or(|f| group.contains(f));

    let scale = bench_scale();
    if wants("snapshot") || wants("interval") || wants("overhead") {
        let mut fa = analytics(generate_synthetic(&base_synthetic(&scale)), &scale);
        if wants("snapshot") {
            snapshot_queries(&fa);
        }
        if wants("interval") {
            interval_queries(&fa);
        }
        if wants("overhead") {
            recorder_overhead(&mut fa);
        }
    }
    if wants("sanitizer") {
        sanitizer_overhead(&scale);
    }
    if wants("cph") {
        let fa = analytics(generate_cph(&base_cph(&scale)), &scale);
        cph_queries(&fa);
    }
    if wants("substrate") {
        substrate();
    }
    if wants("artree") {
        tracking_index();
    }
}
