//! Experiment harness regenerating every figure of the paper's evaluation
//! (§5), plus ablations.
//!
//! Each experiment id (`f10a` … `f14c`, see DESIGN.md's per-experiment
//! index) produces a series of rows mirroring the corresponding figure's
//! axes: query time (ms) as a function of one swept parameter, for the
//! iterative and join algorithms. Figure rows additionally carry per-query
//! work counters (presence integrations and join-pruned POIs) so that a
//! latency difference can be attributed to actual work saved rather than
//! measurement noise.
//!
//! Scales are reduced from paper scale by default (hundreds rather than
//! tens of thousands of objects) so the full suite regenerates in minutes;
//! `Scale` exposes every knob, and the `figures` binary accepts
//! `--objects`, `--passengers`, `--duration` and `--repeats` overrides for
//! paper-scale runs.

use inflow_core::{DistribQuery, FlowAnalytics, IntervalQuery, SnapshotQuery};
use inflow_geometry::GridResolution;
use inflow_indoor::PoiId;
use inflow_uncertainty::UrConfig;
use inflow_workload::{generate_cph, generate_synthetic, CphConfig, SyntheticConfig, Workload};
use std::time::Instant;

/// Global scale knobs for an experiment run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Synthetic moving objects (paper default: 10 K–50 K).
    pub objects: usize,
    /// CPH-like passengers (paper: ~21 K over 7 months).
    pub passengers: usize,
    /// Simulated seconds for the synthetic dataset.
    pub duration: f64,
    /// Query repetitions per measured point (median is reported).
    pub repeats: usize,
    /// Presence-integration resolution.
    pub resolution: GridResolution,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            objects: 400,
            passengers: 300,
            duration: 3600.0,
            repeats: 3,
            resolution: GridResolution::COARSE,
        }
    }
}

impl Scale {
    /// A very small scale for smoke tests of the harness itself.
    pub fn smoke() -> Scale {
        Scale { objects: 60, passengers: 60, duration: 900.0, repeats: 1, ..Scale::default() }
    }
}

/// Default experiment parameters (Table 4 defaults).
pub mod defaults {
    /// Default result size `k`.
    pub const K: usize = 10;
    /// Default query POI percentage.
    pub const POI_PERCENT: usize = 60;
    /// Default detection range (synthetic), metres.
    pub const DETECTION_RANGE: f64 = 1.0;
    /// Default interval length, seconds (20 minutes).
    pub const INTERVAL_LEN: f64 = 1200.0;
    /// The swept `k` values (Figures 10a, 12a, 13a, 14a).
    pub const K_SWEEP: [usize; 6] = [1, 10, 20, 30, 40, 50];
    /// The swept POI percentages (Figures 10b, 12b, 13b, 14b).
    pub const POI_SWEEP: [usize; 5] = [20, 40, 60, 80, 100];
    /// The swept detection ranges (Figure 11).
    pub const RANGE_SWEEP: [f64; 4] = [1.0, 1.5, 2.0, 2.5];
    /// The swept interval lengths in minutes (Figures 12d, 14c).
    pub const INTERVAL_SWEEP_MIN: [usize; 6] = [10, 20, 30, 40, 50, 60];
}

/// One timed algorithm run: median latency plus the work counters of the
/// median-adjacent executions (from [`inflow_core::QueryStats`], which the
/// algorithms populate even with profiling disabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct Measure {
    /// Median query time (ms).
    pub ms: f64,
    /// Median presence integrations per query.
    pub presence: u64,
    /// Median POIs pruned by the join upper bound per query (always 0 for
    /// the iterative algorithms, which evaluate every candidate).
    pub pruned: u64,
}

/// One measured point of a series.
#[derive(Debug, Clone)]
pub struct Row {
    /// The swept parameter's value, formatted.
    pub x: String,
    /// Median iterative query time (ms).
    pub iterative_ms: f64,
    /// Median join query time (ms).
    pub join_ms: f64,
    /// Median presence integrations per iterative query.
    pub iterative_presence: u64,
    /// Median presence integrations per join query.
    pub join_presence: u64,
    /// Median POIs the join pruned via upper-bound flows per query.
    pub join_pruned: u64,
}

impl Row {
    /// A figure row from two algorithm measurements.
    pub fn measured(x: impl Into<String>, it: Measure, jn: Measure) -> Row {
        Row {
            x: x.into(),
            iterative_ms: it.ms,
            join_ms: jn.ms,
            iterative_presence: it.presence,
            join_presence: jn.presence,
            join_pruned: jn.pruned,
        }
    }

    /// A timing-only row (ablations repurpose the two ms columns and carry
    /// no counters).
    pub fn timing(x: impl Into<String>, iterative_ms: f64, join_ms: f64) -> Row {
        Row {
            x: x.into(),
            iterative_ms,
            join_ms,
            iterative_presence: 0,
            join_presence: 0,
            join_pruned: 0,
        }
    }
}

/// A completed experiment: id, axis label, and the measured series.
#[derive(Debug, Clone)]
pub struct Series {
    pub experiment: String,
    pub x_label: String,
    pub rows: Vec<Row>,
}

impl Series {
    /// Prints the series as CSV
    /// (`experiment, x, iterative_ms, join_ms, it_presence, jn_presence,
    /// jn_pruned`).
    pub fn print_csv(&self) {
        println!("# {} — x = {}", self.experiment, self.x_label);
        println!("experiment,x,iterative_ms,join_ms,it_presence,jn_presence,jn_pruned");
        for row in &self.rows {
            println!(
                "{},{},{:.2},{:.2},{},{},{}",
                self.experiment,
                row.x,
                row.iterative_ms,
                row.join_ms,
                row.iterative_presence,
                row.join_presence,
                row.join_pruned
            );
        }
        println!();
    }
}

/// The base synthetic configuration at a given scale.
pub fn base_synthetic(scale: &Scale) -> SyntheticConfig {
    SyntheticConfig {
        num_objects: scale.objects,
        duration: scale.duration,
        detection_range: defaults::DETECTION_RANGE,
        ..SyntheticConfig::default()
    }
}

/// The base CPH-like configuration at a given scale.
pub fn base_cph(scale: &Scale) -> CphConfig {
    CphConfig { num_passengers: scale.passengers, ..CphConfig::default() }
}

/// Builds the analytics stack for a workload.
pub fn analytics(w: Workload, scale: &Scale) -> FlowAnalytics {
    let cfg = UrConfig {
        vmax: w.vmax,
        topology_check: true,
        resolution: scale.resolution,
        ..UrConfig::default()
    };
    FlowAnalytics::new(w.ctx.clone(), w.ott, cfg)
}

/// A deterministic pseudo-random `percent`% subset of the plan's POIs.
pub fn poi_subset(fa: &FlowAnalytics, percent: usize, salt: usize) -> Vec<PoiId> {
    let all = fa.engine().context().plan().pois();
    let take = (all.len() * percent / 100).max(1);
    let mut ids: Vec<PoiId> =
        (0..take).map(|i| all[(i * 13 + salt * 7 + 3) % all.len()].id).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn median_u64(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// One timed sample: latency plus the counters the run reported.
struct Sample {
    ms: f64,
    presence: u64,
    pruned: u64,
}

fn measure(samples: Vec<Sample>) -> Measure {
    Measure {
        ms: median(samples.iter().map(|s| s.ms).collect()),
        presence: median_u64(samples.iter().map(|s| s.presence).collect()),
        pruned: median_u64(samples.iter().map(|s| s.pruned).collect()),
    }
}

fn sample(f: impl FnOnce() -> inflow_core::QueryResult) -> Sample {
    let t0 = Instant::now();
    let result = std::hint::black_box(f());
    Sample {
        ms: t0.elapsed().as_secs_f64() * 1e3,
        presence: result.stats.presence_evaluations as u64,
        pruned: result.stats.pois_pruned as u64,
    }
}

/// Times both algorithms on a set of snapshot queries; returns the median
/// latency and work counters of each.
pub fn time_snapshot(fa: &FlowAnalytics, queries: &[SnapshotQuery]) -> (Measure, Measure) {
    let mut it = Vec::new();
    let mut jn = Vec::new();
    for q in queries {
        it.push(sample(|| fa.snapshot_topk_iterative(q)));
        jn.push(sample(|| fa.snapshot_topk_join(q)));
    }
    (measure(it), measure(jn))
}

/// Times both algorithms on a set of interval queries; returns the median
/// latency and work counters of each.
pub fn time_interval(fa: &FlowAnalytics, queries: &[IntervalQuery]) -> (Measure, Measure) {
    let mut it = Vec::new();
    let mut jn = Vec::new();
    for q in queries {
        it.push(sample(|| fa.interval_topk_iterative(q)));
        jn.push(sample(|| fa.interval_topk_join(q)));
    }
    (measure(it), measure(jn))
}

/// Query time points spread over the simulation's busy middle.
fn snapshot_times(scale: &Scale) -> Vec<f64> {
    (0..scale.repeats).map(|i| scale.duration * (0.35 + 0.1 * i as f64)).collect()
}

fn snapshot_queries(
    fa: &FlowAnalytics,
    scale: &Scale,
    k: usize,
    percent: usize,
) -> Vec<SnapshotQuery> {
    snapshot_times(scale)
        .into_iter()
        .enumerate()
        .map(|(i, t)| SnapshotQuery::new(t, poi_subset(fa, percent, i), k))
        .collect()
}

fn interval_queries(
    fa: &FlowAnalytics,
    scale: &Scale,
    k: usize,
    percent: usize,
    len: f64,
) -> Vec<IntervalQuery> {
    (0..scale.repeats)
        .map(|i| {
            let ts = (scale.duration * (0.15 + 0.1 * i as f64)).max(0.0);
            let te = (ts + len).min(scale.duration);
            IntervalQuery::new(ts, te, poi_subset(fa, percent, i), k)
        })
        .collect()
}

// ───────────────────────── experiments ─────────────────────────────────

/// Figure 10(a): snapshot query vs `k`, synthetic data.
pub fn f10a(scale: &Scale) -> Series {
    let fa = analytics(generate_synthetic(&base_synthetic(scale)), scale);
    let rows = defaults::K_SWEEP
        .iter()
        .map(|&k| {
            let qs = snapshot_queries(&fa, scale, k, defaults::POI_PERCENT);
            let (i, j) = time_snapshot(&fa, &qs);
            Row::measured(k.to_string(), i, j)
        })
        .collect();
    Series { experiment: "f10a".into(), x_label: "k".into(), rows }
}

/// Figure 10(b): snapshot query vs `|P|`, synthetic data.
pub fn f10b(scale: &Scale) -> Series {
    let fa = analytics(generate_synthetic(&base_synthetic(scale)), scale);
    let rows = defaults::POI_SWEEP
        .iter()
        .map(|&p| {
            let qs = snapshot_queries(&fa, scale, defaults::K, p);
            let (i, j) = time_snapshot(&fa, &qs);
            Row::measured(format!("{p}%"), i, j)
        })
        .collect();
    Series { experiment: "f10b".into(), x_label: "|P| (% of POIs)".into(), rows }
}

/// Figure 11(a): snapshot query vs detection range, synthetic data.
pub fn f11a(scale: &Scale) -> Series {
    let rows = defaults::RANGE_SWEEP
        .iter()
        .map(|&r| {
            let cfg = SyntheticConfig { detection_range: r, ..base_synthetic(scale) };
            let fa = analytics(generate_synthetic(&cfg), scale);
            let qs = snapshot_queries(&fa, scale, defaults::K, defaults::POI_PERCENT);
            let (i, j) = time_snapshot(&fa, &qs);
            Row::measured(format!("{r}m"), i, j)
        })
        .collect();
    Series { experiment: "f11a".into(), x_label: "detection range".into(), rows }
}

/// Figure 11(b): interval query vs detection range, synthetic data.
pub fn f11b(scale: &Scale) -> Series {
    let rows = defaults::RANGE_SWEEP
        .iter()
        .map(|&r| {
            let cfg = SyntheticConfig { detection_range: r, ..base_synthetic(scale) };
            let fa = analytics(generate_synthetic(&cfg), scale);
            let qs = interval_queries(
                &fa,
                scale,
                defaults::K,
                defaults::POI_PERCENT,
                defaults::INTERVAL_LEN,
            );
            let (i, j) = time_interval(&fa, &qs);
            Row::measured(format!("{r}m"), i, j)
        })
        .collect();
    Series { experiment: "f11b".into(), x_label: "detection range".into(), rows }
}

/// Figure 12(a): interval query vs `k`, synthetic data.
pub fn f12a(scale: &Scale) -> Series {
    let fa = analytics(generate_synthetic(&base_synthetic(scale)), scale);
    let rows = defaults::K_SWEEP
        .iter()
        .map(|&k| {
            let qs = interval_queries(&fa, scale, k, defaults::POI_PERCENT, defaults::INTERVAL_LEN);
            let (i, j) = time_interval(&fa, &qs);
            Row::measured(k.to_string(), i, j)
        })
        .collect();
    Series { experiment: "f12a".into(), x_label: "k".into(), rows }
}

/// Figure 12(b): interval query vs `|P|`, synthetic data.
pub fn f12b(scale: &Scale) -> Series {
    let fa = analytics(generate_synthetic(&base_synthetic(scale)), scale);
    let rows = defaults::POI_SWEEP
        .iter()
        .map(|&p| {
            let qs = interval_queries(&fa, scale, defaults::K, p, defaults::INTERVAL_LEN);
            let (i, j) = time_interval(&fa, &qs);
            Row::measured(format!("{p}%"), i, j)
        })
        .collect();
    Series { experiment: "f12b".into(), x_label: "|P| (% of POIs)".into(), rows }
}

/// Figure 12(c): interval query vs `|O|`, synthetic data.
pub fn f12c(scale: &Scale) -> Series {
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    let rows = fractions
        .iter()
        .map(|&f| {
            let n = ((scale.objects as f64 * f) as usize).max(10);
            let cfg = SyntheticConfig { num_objects: n, ..base_synthetic(scale) };
            let fa = analytics(generate_synthetic(&cfg), scale);
            let qs = interval_queries(
                &fa,
                scale,
                defaults::K,
                defaults::POI_PERCENT,
                defaults::INTERVAL_LEN,
            );
            let (i, j) = time_interval(&fa, &qs);
            Row::measured(n.to_string(), i, j)
        })
        .collect();
    Series { experiment: "f12c".into(), x_label: "|O|".into(), rows }
}

/// Figure 12(d): interval query vs `t_e − t_s`, synthetic data.
pub fn f12d(scale: &Scale) -> Series {
    let fa = analytics(generate_synthetic(&base_synthetic(scale)), scale);
    let rows = defaults::INTERVAL_SWEEP_MIN
        .iter()
        .map(|&mins| {
            let len = (mins * 60) as f64;
            let qs = interval_queries(&fa, scale, defaults::K, defaults::POI_PERCENT, len);
            let (i, j) = time_interval(&fa, &qs);
            Row::measured(format!("{mins}min"), i, j)
        })
        .collect();
    Series { experiment: "f12d".into(), x_label: "t_e − t_s".into(), rows }
}

/// Figure 13(a): snapshot query vs `k`, CPH-like data.
pub fn f13a(scale: &Scale) -> Series {
    let cfg = base_cph(scale);
    let fa = analytics(generate_cph(&cfg), scale);
    let rows = defaults::K_SWEEP
        .iter()
        .map(|&k| {
            let qs: Vec<SnapshotQuery> = (0..scale.repeats)
                .map(|i| {
                    SnapshotQuery::new(
                        cfg.duration * (0.35 + 0.1 * i as f64),
                        poi_subset(&fa, defaults::POI_PERCENT, i),
                        k,
                    )
                })
                .collect();
            let (i, j) = time_snapshot(&fa, &qs);
            Row::measured(k.to_string(), i, j)
        })
        .collect();
    Series { experiment: "f13a".into(), x_label: "k".into(), rows }
}

/// Figure 13(b): snapshot query vs `|P|`, CPH-like data.
pub fn f13b(scale: &Scale) -> Series {
    let cfg = base_cph(scale);
    let fa = analytics(generate_cph(&cfg), scale);
    let rows = defaults::POI_SWEEP
        .iter()
        .map(|&p| {
            let qs: Vec<SnapshotQuery> = (0..scale.repeats)
                .map(|i| {
                    SnapshotQuery::new(
                        cfg.duration * (0.35 + 0.1 * i as f64),
                        poi_subset(&fa, p, i),
                        defaults::K,
                    )
                })
                .collect();
            let (i, j) = time_snapshot(&fa, &qs);
            Row::measured(format!("{p}%"), i, j)
        })
        .collect();
    Series { experiment: "f13b".into(), x_label: "|P| (% of POIs)".into(), rows }
}

fn cph_interval_queries(
    fa: &FlowAnalytics,
    scale: &Scale,
    duration: f64,
    k: usize,
    percent: usize,
    len: f64,
) -> Vec<IntervalQuery> {
    (0..scale.repeats)
        .map(|i| {
            let ts = duration * (0.2 + 0.1 * i as f64);
            IntervalQuery::new(ts, (ts + len).min(duration), poi_subset(fa, percent, i), k)
        })
        .collect()
}

/// Figure 14(a): interval query vs `k`, CPH-like data.
pub fn f14a(scale: &Scale) -> Series {
    let cfg = base_cph(scale);
    let fa = analytics(generate_cph(&cfg), scale);
    let rows = defaults::K_SWEEP
        .iter()
        .map(|&k| {
            let qs = cph_interval_queries(
                &fa,
                scale,
                cfg.duration,
                k,
                defaults::POI_PERCENT,
                defaults::INTERVAL_LEN,
            );
            let (i, j) = time_interval(&fa, &qs);
            Row::measured(k.to_string(), i, j)
        })
        .collect();
    Series { experiment: "f14a".into(), x_label: "k".into(), rows }
}

/// Figure 14(b): interval query vs `|P|`, CPH-like data.
pub fn f14b(scale: &Scale) -> Series {
    let cfg = base_cph(scale);
    let fa = analytics(generate_cph(&cfg), scale);
    let rows = defaults::POI_SWEEP
        .iter()
        .map(|&p| {
            let qs = cph_interval_queries(
                &fa,
                scale,
                cfg.duration,
                defaults::K,
                p,
                defaults::INTERVAL_LEN,
            );
            let (i, j) = time_interval(&fa, &qs);
            Row::measured(format!("{p}%"), i, j)
        })
        .collect();
    Series { experiment: "f14b".into(), x_label: "|P| (% of POIs)".into(), rows }
}

/// Figure 14(c): interval query vs `t_e − t_s`, CPH-like data.
pub fn f14c(scale: &Scale) -> Series {
    let cfg = base_cph(scale);
    let fa = analytics(generate_cph(&cfg), scale);
    let rows = defaults::INTERVAL_SWEEP_MIN
        .iter()
        .map(|&mins| {
            let len = (mins * 60) as f64;
            let qs = cph_interval_queries(
                &fa,
                scale,
                cfg.duration,
                defaults::K,
                defaults::POI_PERCENT,
                len,
            );
            let (i, j) = time_interval(&fa, &qs);
            Row::measured(format!("{mins}min"), i, j)
        })
        .collect();
    Series { experiment: "f14c".into(), x_label: "t_e − t_s".into(), rows }
}

// ───────────────────────── ablations ────────────────────────────────────

/// Ablation: topology check on/off. Column semantics differ from the
/// figures: `iterative_ms` = topology OFF, `join_ms` = topology ON (both
/// via the join algorithm).
pub fn abl_topo(scale: &Scale) -> Series {
    let mk = |topo: bool| {
        let w = generate_synthetic(&base_synthetic(scale));
        let cfg = UrConfig {
            vmax: w.vmax,
            topology_check: topo,
            resolution: scale.resolution,
            ..UrConfig::default()
        };
        FlowAnalytics::new(w.ctx.clone(), w.ott, cfg)
    };
    let fa_on = mk(true);
    let fa_off = mk(false);
    let mut rows = Vec::new();

    let snaps = snapshot_queries(&fa_on, scale, defaults::K, defaults::POI_PERCENT);
    let time_snap = |fa: &FlowAnalytics| {
        let t0 = Instant::now();
        for q in &snaps {
            std::hint::black_box(fa.snapshot_topk_join(q));
        }
        t0.elapsed().as_secs_f64() * 1e3 / snaps.len() as f64
    };
    rows.push(Row::timing("snapshot", time_snap(&fa_off), time_snap(&fa_on)));

    let ints =
        interval_queries(&fa_on, scale, defaults::K, defaults::POI_PERCENT, defaults::INTERVAL_LEN);
    let time_int = |fa: &FlowAnalytics| {
        let t0 = Instant::now();
        for q in &ints {
            std::hint::black_box(fa.interval_topk_join(q));
        }
        t0.elapsed().as_secs_f64() * 1e3 / ints.len() as f64
    };
    rows.push(Row::timing("interval-20min", time_int(&fa_off), time_int(&fa_on)));

    Series {
        experiment: "abl-topo".into(),
        x_label: "query type (iterative_ms column = topology OFF, join_ms = ON)".into(),
        rows,
    }
}

/// Ablation: the §4.3.2 small-MBR improvement on the interval join
/// (`iterative_ms` column = single large MBR, `join_ms` = per-segment).
pub fn abl_mbr(scale: &Scale) -> Series {
    use inflow_core::JoinConfig;
    let mk = |seg: bool| {
        let w = generate_synthetic(&base_synthetic(scale));
        let cfg = UrConfig {
            vmax: w.vmax,
            topology_check: true,
            resolution: scale.resolution,
            ..UrConfig::default()
        };
        FlowAnalytics::new(w.ctx.clone(), w.ott, cfg)
            .with_join_config(JoinConfig { use_segment_mbrs: seg })
    };
    let fa_seg = mk(true);
    let fa_big = mk(false);
    let rows = defaults::INTERVAL_SWEEP_MIN[..3]
        .iter()
        .map(|&mins| {
            let len = (mins * 60) as f64;
            let qs = interval_queries(&fa_seg, scale, defaults::K, defaults::POI_PERCENT, len);
            let time = |fa: &FlowAnalytics| {
                let t0 = Instant::now();
                for q in &qs {
                    std::hint::black_box(fa.interval_topk_join(q));
                }
                t0.elapsed().as_secs_f64() * 1e3 / qs.len() as f64
            };
            Row::timing(format!("{mins}min"), time(&fa_big), time(&fa_seg))
        })
        .collect();
    Series {
        experiment: "abl-mbr".into(),
        x_label: "t_e − t_s (iterative_ms column = large MBR, join_ms = small MBRs)".into(),
        rows,
    }
}

/// Ablation: the paper's coarse snapshot-MBR estimation (Algorithm 2,
/// line 8 merges the two extended device MBRs) vs the tighter
/// intersection. Column semantics: `iterative_ms` = paper merge (union),
/// `join_ms` = tight intersection; both run the snapshot join.
pub fn abl_snapmbr(scale: &Scale) -> Series {
    let mk = |paper: bool| {
        let w = generate_synthetic(&base_synthetic(scale));
        let cfg = UrConfig {
            vmax: w.vmax,
            topology_check: true,
            resolution: scale.resolution,
            paper_coarse_mbr: paper,
        };
        FlowAnalytics::new(w.ctx.clone(), w.ott, cfg)
    };
    let fa_paper = mk(true);
    let fa_tight = mk(false);
    let rows = [1usize, 10, 50]
        .iter()
        .map(|&k| {
            let qs = snapshot_queries(&fa_paper, scale, k, defaults::POI_PERCENT);
            let time = |fa: &FlowAnalytics| {
                let t0 = Instant::now();
                for q in &qs {
                    std::hint::black_box(fa.snapshot_topk_join(q));
                }
                t0.elapsed().as_secs_f64() * 1e3 / qs.len() as f64
            };
            Row::timing(format!("k={k}"), time(&fa_paper), time(&fa_tight))
        })
        .collect();
    Series {
        experiment: "abl-snapmbr".into(),
        x_label: "k (iterative_ms column = paper merge MBR, join_ms = tight MBR)".into(),
        rows,
    }
}

/// Ablation: presence-integration resolution vs accuracy and cost.
/// `iterative_ms` column = mean relative error vs the FINE reference
/// (×1e-3), `join_ms` = mean presence time in microseconds.
pub fn abl_grid(scale: &Scale) -> Series {
    use inflow_geometry::Region;
    let w = generate_synthetic(&SyntheticConfig { num_objects: 40, ..base_synthetic(scale) });
    let engine_for = |res: GridResolution| {
        inflow_uncertainty::UrEngine::new(
            w.ctx.clone(),
            UrConfig { vmax: w.vmax, topology_check: true, resolution: res, ..UrConfig::default() },
        )
    };
    let fine = engine_for(GridResolution::FINE);
    let (ts, te) = (scale.duration * 0.3, scale.duration * 0.3 + 600.0);

    // Reference presences on the FINE grid.
    let plan = w.ctx.plan();
    let mut cases = Vec::new();
    for o in 0..30u32 {
        if let Some(ur) = fine.interval_ur(&w.ott, inflow_tracking::ObjectId(o), ts, te) {
            if ur.is_empty() {
                continue;
            }
            for poi in plan.pois().iter().take(20) {
                if ur.mbr().intersects(&poi.mbr()) {
                    let reference = fine.presence(&ur, poi);
                    if reference > 1e-3 {
                        cases.push((o, poi.id, reference));
                    }
                }
            }
        }
    }

    let rows = [
        ("16x2", GridResolution::new(16, 2)),
        ("32x2", GridResolution::COARSE),
        ("64x4", GridResolution::DEFAULT),
        ("96x4", GridResolution::new(96, 4)),
    ]
    .iter()
    .map(|(label, res)| {
        let eng = engine_for(*res);
        let mut err_sum = 0.0;
        let mut time_sum = 0.0;
        let mut n = 0usize;
        for &(o, poi, reference) in &cases {
            let Some(ur) = eng.interval_ur(&w.ott, inflow_tracking::ObjectId(o), ts, te) else {
                continue;
            };
            let t0 = Instant::now();
            let p = eng.presence(&ur, plan.poi(poi));
            time_sum += t0.elapsed().as_secs_f64() * 1e6;
            err_sum += (p - reference).abs() / reference;
            n += 1;
        }
        Row::timing(label.to_string(), err_sum / n.max(1) as f64 * 1e3, time_sum / n.max(1) as f64)
    })
    .collect();
    Series {
        experiment: "abl-grid".into(),
        x_label: "resolution (iterative_ms column = rel. error ×1e-3, join_ms = µs/presence)"
            .into(),
        rows,
    }
}

/// Ablation: answer quality against simulated ground truth. Column
/// semantics: `iterative_ms` = precision@5, `join_ms` = precision@10 of
/// the estimated top-k vs the true visit-count ranking (1.0 = identical
/// membership).
pub fn abl_accuracy(scale: &Scale) -> Series {
    use inflow_workload::{ranking_overlap, true_interval_ranking, true_snapshot_ranking};
    let w = generate_synthetic(&base_synthetic(scale));
    let plan_pois: Vec<PoiId> = w.ctx.plan().pois().iter().map(|p| p.id).collect();
    let ctx = w.ctx.clone();
    let ground_truth = w.ground_truth.clone();
    let fa = analytics(w, scale);

    let mut rows = Vec::new();

    // Snapshot accuracy at the busy middle of the simulation.
    let t = scale.duration * 0.5;
    let est = fa
        .snapshot_topk_iterative(&SnapshotQuery::new(t, plan_pois.clone(), plan_pois.len()))
        .poi_ids();
    let truth: Vec<PoiId> =
        true_snapshot_ranking(ctx.plan(), &ground_truth, t).into_iter().map(|(p, _)| p).collect();
    rows.push(Row::timing(
        "snapshot",
        ranking_overlap(&est, &truth, 5),
        ranking_overlap(&est, &truth, 10),
    ));

    // Interval accuracy over the default window.
    let (ts, te) = (scale.duration * 0.3, scale.duration * 0.3 + defaults::INTERVAL_LEN);
    let est = fa
        .interval_topk_iterative(&IntervalQuery::new(ts, te, plan_pois.clone(), plan_pois.len()))
        .poi_ids();
    let truth: Vec<PoiId> = true_interval_ranking(ctx.plan(), &ground_truth, ts, te, 5.0)
        .into_iter()
        .map(|(p, _)| p)
        .collect();
    rows.push(Row::timing(
        "interval-20min",
        ranking_overlap(&est, &truth, 5),
        ranking_overlap(&est, &truth, 10),
    ));

    Series {
        experiment: "abl-accuracy".into(),
        x_label: "query type (iterative_ms column = precision@5, join_ms = precision@10)".into(),
        rows,
    }
}

/// Ablation: answer quality as input corruption rises. Each level of the
/// seeded corruption grid (clean → severe) is applied to the synthetic
/// rows, routed through the repair-all sanitization gate, and the interval
/// top-k ranking is scored against the ranking computed from *clean*
/// input — so the clean row reads 1.0 by construction and each severity
/// row reads directly as "how much of the clean answer survives the
/// corruption + repair round trip". (Scoring against simulated ground
/// truth instead would fold in the estimator-vs-truth gap that
/// `abl-accuracy` measures, saturating the columns on dense workloads.)
/// Column semantics: `iterative_ms` = precision@5, `join_ms` =
/// precision@10.
pub fn abl_noise(scale: &Scale) -> Series {
    use inflow_tracking::{sanitize_rows, ObjectTrackingTable, SanitizeConfig};
    use inflow_workload::{apply_corruption, corruption_grid, ranking_overlap, rows_of};
    let w = generate_synthetic(&base_synthetic(scale));
    let plan_pois: Vec<PoiId> = w.ctx.plan().pois().iter().map(|p| p.id).collect();
    let device_count = w.ctx.plan().devices().len() as u32;
    let base_rows = rows_of(&w.ott);
    let (ts, te) = (scale.duration * 0.3, scale.duration * 0.3 + defaults::INTERVAL_LEN);
    let gate = SanitizeConfig::repair_all().with_vmax(w.vmax);

    let ranking_for = |rows: Vec<inflow_tracking::OttRow>| -> Vec<PoiId> {
        let outcome = sanitize_rows(rows, &gate, Some(w.ctx.plan()));
        let ott = ObjectTrackingTable::from_rows(outcome.rows)
            .expect("sanitized rows satisfy OTT invariants");
        let cfg = UrConfig {
            vmax: w.vmax,
            topology_check: true,
            resolution: scale.resolution,
            ..UrConfig::default()
        };
        let fa = FlowAnalytics::new(w.ctx.clone(), ott, cfg)
            .with_sanitize_report(outcome.report, outcome.repaired_objects);
        let q = IntervalQuery::new(ts, te, plan_pois.clone(), plan_pois.len());
        fa.interval_topk_iterative(&q).poi_ids()
    };
    let clean = ranking_for(base_rows.clone());

    let rows = corruption_grid(0xC0FFEE)
        .iter()
        .map(|spec| {
            let est = ranking_for(apply_corruption(base_rows.clone(), spec, device_count));
            Row::timing(
                spec.label.clone(),
                ranking_overlap(&est, &clean, 5),
                ranking_overlap(&est, &clean, 10),
            )
        })
        .collect();
    Series {
        experiment: "abl-noise".into(),
        x_label: "corruption level (iterative_ms column = precision@5 vs clean, \
                  join_ms = precision@10 vs clean)"
            .into(),
        rows,
    }
}

/// Ablation: cold-start cost of making the AR-tree queryable after a
/// restart — a full rebuild from the OTT versus reloading the flat
/// serialization persisted in an ingestion-store snapshot (a bounds-check
/// validation pass, no per-entry sorting or tree construction). Column
/// semantics: `iterative_ms` = rebuild from OTT, `join_ms` = snapshot
/// reload.
pub fn abl_coldstart(scale: &Scale) -> Series {
    use inflow_tracking::ArTree;
    let mut rows = Vec::new();
    for divisor in [4usize, 2, 1] {
        let mut cfg = base_synthetic(scale);
        cfg.num_objects = (scale.objects / divisor).max(1);
        let w = generate_synthetic(&cfg);
        let flat = ArTree::build(&w.ott).to_flat_bytes(w.ott.len());
        let rebuild = median(
            (0..scale.repeats.max(1))
                .map(|_| {
                    let t0 = Instant::now();
                    std::hint::black_box(ArTree::build(&w.ott));
                    t0.elapsed().as_secs_f64() * 1e3
                })
                .collect(),
        );
        let reload = median(
            (0..scale.repeats.max(1))
                .map(|_| {
                    let t0 = Instant::now();
                    std::hint::black_box(
                        ArTree::from_flat_bytes(&flat).expect("own serialization reloads"),
                    );
                    t0.elapsed().as_secs_f64() * 1e3
                })
                .collect(),
        );
        rows.push(Row::timing(format!("{} objects", cfg.num_objects), rebuild, reload));
    }
    Series {
        experiment: "abl-coldstart".into(),
        x_label: "dataset size (iterative_ms = AR-tree rebuild, join_ms = snapshot reload)".into(),
        rows,
    }
}

/// Probabilistic count-distribution query cost vs the convolution
/// truncation bound `kmax` and the object count. Column semantics:
/// `iterative_ms` = snapshot-form distribution query (`DistribQuery::at`),
/// `join_ms` = interval-form (`DistribQuery::over`). The convolution is
/// O(n·kmax) on top of the shared presence work, so rows should grow
/// mildly with `kmax` and the At/Over gap should track the candidate
/// volume, not the bound.
pub fn abl_distrib(scale: &Scale) -> Series {
    let mut rows = Vec::new();
    for divisor in [2usize, 1] {
        let mut cfg = base_synthetic(scale);
        cfg.num_objects = (scale.objects / divisor).max(1);
        let n = cfg.num_objects;
        let fa = analytics(generate_synthetic(&cfg), scale);
        for kmax in [8usize, 32, 128] {
            let t = scale.duration * 0.45;
            let (ts, te) = (scale.duration * 0.25, scale.duration * 0.55);
            let at_ms = median(
                (0..scale.repeats.max(1))
                    .map(|i| {
                        let q = DistribQuery::at(t, poi_subset(&fa, 60, i), 2, kmax, defaults::K);
                        let t0 = Instant::now();
                        std::hint::black_box(fa.distrib_topk(&q));
                        t0.elapsed().as_secs_f64() * 1e3
                    })
                    .collect(),
            );
            let over_ms = median(
                (0..scale.repeats.max(1))
                    .map(|i| {
                        let q = DistribQuery::over(
                            ts,
                            te,
                            poi_subset(&fa, 60, i),
                            2,
                            kmax,
                            defaults::K,
                        );
                        let t0 = Instant::now();
                        std::hint::black_box(fa.distrib_topk(&q));
                        t0.elapsed().as_secs_f64() * 1e3
                    })
                    .collect(),
            );
            rows.push(Row::timing(format!("{n} objects kmax={kmax}"), at_ms, over_ms));
        }
    }
    Series {
        experiment: "abl-distrib".into(),
        x_label: "objects × kmax (iterative_ms = At-form distrib, join_ms = Over-form)".into(),
        rows,
    }
}

/// One sustained-ingest run against an in-process
/// [`inflow_service::Server`]: one ε = 0 snapshot subscription, the
/// whole endpoint-expanded reading stream published over TCP. `trace`
/// toggles pipeline tracing + flight recording — the knob `BENCH_6`
/// compares. Returns (sustained readings/sec, notify p99 ms).
pub fn serve_run(scale: &Scale, num_objects: usize, trace: bool) -> (f64, f64) {
    serve_run_tiered(scale, num_objects, trace, true)
}

/// [`serve_run_spec`] with the benchmark-default snapshot subscription.
fn serve_run_tiered(scale: &Scale, num_objects: usize, trace: bool, tier: bool) -> (f64, f64) {
    serve_run_spec(scale, num_objects, trace, tier, |duration| inflow_service::SubKind::Snapshot {
        t: duration / 2.0,
    })
}

/// The sustained-ingest run with the subscription kind pluggable —
/// `tier` keeps/disables the segment tier (the knob `BENCH_8` compares),
/// `make_kind` picks what the one ε = 0 subscription computes per delta
/// (the knob `BENCH_9` compares across answer families).
fn serve_run_spec(
    scale: &Scale,
    num_objects: usize,
    trace: bool,
    tier: bool,
    make_kind: impl Fn(f64) -> inflow_service::SubKind,
) -> (f64, f64) {
    use inflow_service::{Client, ServeConfig, Server, SubSpec};
    use inflow_tracking::RawReading;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static RUN: AtomicUsize = AtomicUsize::new(0);
    let mut cfg = base_synthetic(scale);
    cfg.num_objects = num_objects.max(1);
    let w = generate_synthetic(&cfg);
    // The same endpoint-expanded stream `inflow ingest` consumes.
    let mut readings: Vec<RawReading> = Vec::with_capacity(w.ott.len() * 2);
    for r in w.ott.records() {
        readings.push(RawReading { object: r.object, device: r.device, t: r.ts });
        if r.te > r.ts {
            readings.push(RawReading { object: r.object, device: r.device, t: r.te });
        }
    }
    readings.sort_by(|a, b| a.t.total_cmp(&b.t).then_with(|| a.object.cmp(&b.object)));

    let dir = std::env::temp_dir().join(format!(
        "inflow-bench-serve-{}-{}",
        std::process::id(),
        RUN.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let defaults = ServeConfig::new(dir.clone());
    let serve_cfg = ServeConfig {
        shards: 4,
        trace,
        compact_every: if tier { defaults.compact_every } else { None },
        scrub_every: if tier { defaults.scrub_every } else { None },
        ur: UrConfig { vmax: w.vmax, resolution: scale.resolution, ..UrConfig::default() },
        ..defaults
    };
    let handle = Server::start(w.ctx.clone(), serve_cfg).expect("bench server start");
    let mut client = Client::connect(handle.addr()).expect("bench client connect");
    let spec = SubSpec { kind: make_kind(cfg.duration), k: 10, epsilon: 0.0, pois: Vec::new() };
    client.subscribe(&spec).expect("bench subscribe");
    client.barrier().expect("bench barrier");

    let t0 = Instant::now();
    for batch in readings.chunks(256) {
        client.publish(batch).expect("bench publish");
    }
    client.barrier().expect("bench drain barrier");
    let elapsed = t0.elapsed().as_secs_f64();
    let throughput = readings.len() as f64 / elapsed.max(1e-9);
    let notify_p99_ms = handle.metrics().notify_p99_ns() as f64 / 1e6;

    client.shutdown_server().expect("bench shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
    (throughput, notify_p99_ms)
}

/// Sustained server throughput and tail notification latency vs object
/// count (tracing on, the server default). The `iterative_ms` column
/// carries sustained readings/sec; `join_ms` carries the p99
/// notification latency in milliseconds.
pub fn abl_serve(scale: &Scale) -> Series {
    let mut rows = Vec::new();
    for divisor in [4usize, 2, 1] {
        let n = (scale.objects / divisor).max(1);
        let (throughput, notify_p99_ms) = serve_run(scale, n, true);
        rows.push(Row::timing(format!("{n} objects"), throughput, notify_p99_ms));
    }
    Series {
        experiment: "abl-serve".into(),
        x_label: "dataset size (iterative_ms = readings/sec, join_ms = notify p99 ms)".into(),
        rows,
    }
}

/// The PR 6 observability-overhead benchmark: ingest throughput and
/// notify p99 with tracing + flight recording off (`baseline`) vs on
/// (`traced`), as the JSON document CI writes to `BENCH_6.json`. Each
/// side takes the best of `scale.repeats` runs — the overhead question
/// is about the mechanism's cost, not scheduler noise, and max-of-N is
/// the standard noise filter for throughput.
pub fn bench6_json(scale: &Scale) -> String {
    let repeats = scale.repeats.max(1);
    let run_best = |trace: bool| -> (f64, f64) {
        let mut best = (0.0f64, 0.0f64);
        for _ in 0..repeats {
            let (rps, p99) = serve_run(scale, scale.objects, trace);
            if rps > best.0 {
                best = (rps, p99);
            }
        }
        best
    };
    let (base_rps, base_p99) = run_best(false);
    let (traced_rps, traced_p99) = run_best(true);
    let regression_pct =
        if base_rps > 0.0 { ((base_rps - traced_rps) / base_rps * 100.0).max(0.0) } else { 0.0 };
    format!(
        "{{\"bench\":6,\"experiment\":\"abl-serve-tracing-overhead\",\"objects\":{},\"repeats\":{},\
         \"baseline\":{{\"ingest_rps\":{:.1},\"notify_p99_ms\":{:.3}}},\
         \"traced\":{{\"ingest_rps\":{:.1},\"notify_p99_ms\":{:.3}}},\
         \"ingest_regression_pct\":{:.2}}}",
        scale.objects, repeats, base_rps, base_p99, traced_rps, traced_p99, regression_pct
    )
}

/// One sustained-ingest run for the recorder-overhead comparison. Both
/// sides run the same workload, chunking and barrier cadence; the
/// `recorded` side additionally routes every op through the replay
/// recorder ([`inflow_replay::record_run`]) — per-barrier state-hash
/// RPCs, op logging and all. Returns (readings/sec, notify p99 ms).
fn record_overhead_run(scale: &Scale, recorded: bool) -> (f64, f64) {
    use inflow_replay::{record_run, FaultPlan, RecordOptions};
    use inflow_service::{Client, ServeConfig, Server, SubKind, SubSpec};
    use inflow_tracking::RawReading;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const CHUNK: usize = 256;
    const BARRIER_EVERY: usize = 8;

    static RUN: AtomicUsize = AtomicUsize::new(0);
    let mut cfg = base_synthetic(scale);
    cfg.num_objects = scale.objects.max(1);
    let w = generate_synthetic(&cfg);
    let mut readings: Vec<RawReading> = Vec::with_capacity(w.ott.len() * 2);
    for r in w.ott.records() {
        readings.push(RawReading { object: r.object, device: r.device, t: r.ts });
        if r.te > r.ts {
            readings.push(RawReading { object: r.object, device: r.device, t: r.te });
        }
    }
    readings.sort_by(|a, b| a.t.total_cmp(&b.t).then_with(|| a.object.cmp(&b.object)));

    let dir = std::env::temp_dir().join(format!(
        "inflow-bench-record-{}-{}",
        std::process::id(),
        RUN.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let serve_cfg = ServeConfig {
        shards: 4,
        ur: UrConfig { vmax: w.vmax, resolution: scale.resolution, ..UrConfig::default() },
        ..ServeConfig::new(dir.clone())
    };
    let handle = Server::start(w.ctx.clone(), serve_cfg).expect("bench server start");
    let spec = SubSpec {
        kind: SubKind::Snapshot { t: cfg.duration / 2.0 },
        k: 10,
        epsilon: 0.0,
        pois: Vec::new(),
    };

    let t0 = Instant::now();
    if recorded {
        let opts = RecordOptions {
            chunk: CHUNK,
            barrier_every: BARRIER_EVERY,
            subs: vec![spec],
            plan: FaultPlan::default(),
        };
        let log = record_run(&handle, dir.clone(), &readings, &opts).expect("bench record");
        std::hint::black_box(log.to_bytes().len());
    } else {
        let mut client = Client::connect(handle.addr()).expect("bench client connect");
        client.subscribe(&spec).expect("bench subscribe");
        let mut publishes = 0usize;
        for batch in readings.chunks(CHUNK) {
            client.publish(batch).expect("bench publish");
            publishes += 1;
            if publishes.is_multiple_of(BARRIER_EVERY) {
                client.barrier().expect("bench barrier");
            }
        }
        client.barrier().expect("bench drain barrier");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let throughput = readings.len() as f64 / elapsed.max(1e-9);
    let notify_p99_ms = handle.metrics().notify_p99_ns() as f64 / 1e6;

    handle.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
    (throughput, notify_p99_ms)
}

/// The PR 7 recorder-overhead benchmark: sustained ingest throughput
/// and notify p99 with the replay recorder off (`baseline`) vs on
/// (`recorded`), as the JSON document CI writes to `BENCH_7.json`.
/// Best-of-`scale.repeats` per side, like [`bench6_json`]. The
/// acceptance bar is < 5% ingest-throughput regression while recording.
pub fn bench7_json(scale: &Scale) -> String {
    let repeats = scale.repeats.max(1);
    let run_best = |recorded: bool| -> (f64, f64) {
        let mut best = (0.0f64, 0.0f64);
        for _ in 0..repeats {
            let (rps, p99) = record_overhead_run(scale, recorded);
            if rps > best.0 {
                best = (rps, p99);
            }
        }
        best
    };
    let (base_rps, base_p99) = run_best(false);
    let (rec_rps, rec_p99) = run_best(true);
    let regression_pct =
        if base_rps > 0.0 { ((base_rps - rec_rps) / base_rps * 100.0).max(0.0) } else { 0.0 };
    format!(
        "{{\"bench\":7,\"experiment\":\"replay-recorder-overhead\",\"objects\":{},\"repeats\":{},\
         \"baseline\":{{\"ingest_rps\":{:.1},\"notify_p99_ms\":{:.3}}},\
         \"recorded\":{{\"ingest_rps\":{:.1},\"notify_p99_ms\":{:.3}}},\
         \"ingest_regression_pct\":{:.2}}}",
        scale.objects, repeats, base_rps, base_p99, rec_rps, rec_p99, regression_pct
    )
}

/// One direct store-ingest run for the segment-tier comparison: open a
/// fresh [`inflow_tracking::IngestStore`] under `opts` in a temp dir,
/// ingest the endpoint-expanded reading stream, snapshot, drop — then
/// time a cold reopen of the same directory. Returns
/// (readings/sec, coldstart reopen ms).
fn tier_ingest_run(
    readings: &[inflow_tracking::RawReading],
    opts: inflow_tracking::StoreOptions,
) -> (f64, f64) {
    use inflow_tracking::{IngestStore, OnlineTracker, StdFs};
    use std::sync::atomic::{AtomicUsize, Ordering};

    const MAX_GAP: f64 = 60.0;
    static RUN: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "inflow-bench-tier-{}-{}",
        std::process::id(),
        RUN.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    let t0 = Instant::now();
    let (mut store, _) = IngestStore::open(StdFs, &dir, OnlineTracker::new(MAX_GAP), opts)
        .expect("bench store open");
    for r in readings {
        store.ingest(*r).expect("bench ingest");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    store.snapshot().expect("bench snapshot");
    drop(store);
    let throughput = readings.len() as f64 / elapsed.max(1e-9);

    // Cold start = reopen to queryable, the shard-restart path: recover
    // the snapshot + WAL tail and reconcile the manifest. (The loaded
    // AR-tree image is what makes the store queryable without a rebuild.)
    let t1 = Instant::now();
    let (reopened, report) = IngestStore::open(StdFs, &dir, OnlineTracker::new(MAX_GAP), opts)
        .expect("bench store reopen");
    std::hint::black_box((report.segments, reopened.loaded_snapshot().is_some()));
    let coldstart_ms = t1.elapsed().as_secs_f64() * 1e3;

    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
    (throughput, coldstart_ms)
}

/// The PR 8 segment-tier benchmark: direct store ingest throughput and
/// cold-start reopen time with the tier off (`baseline`: WAL + snapshot
/// reload, the PR 3 path) vs on (`tiered`: background compaction into
/// immutable segments plus the budgeted scrubber), as the JSON document
/// CI writes to `BENCH_8.json`. Throughput is best-of-`scale.repeats`,
/// cold start is the fastest reopen over `scale.repeats` store builds.
/// The acceptance bars are < 5% ingest regression with the tier on and
/// a tiered cold start at least as fast as the snapshot-reload baseline
/// (ratio ≤ 1.0, with headroom for timer noise).
///
/// Ingest is measured at the serving layer — the same sustained-publish
/// harness as `BENCH_6`/`BENCH_7`, with the server's default compaction
/// and scrub cadence against both turned off — because that is the
/// configuration the tier actually ships in. Cold start is measured at
/// the store layer, where the reopen paths differ: snapshot + full WAL
/// tail (baseline) vs manifest + segments + rebased tail (tiered).
pub fn bench8_json(scale: &Scale) -> String {
    use inflow_tracking::{RawReading, StoreOptions};

    // Best-of-2 minimum even at smoke scale: a single ~100 ms serve run
    // has enough timer noise to swamp a 5% gate.
    let repeats = scale.repeats.max(2);
    let serve_best = |tier: bool| -> (f64, f64) {
        let mut best = (0.0f64, 0.0f64);
        for _ in 0..repeats {
            let (rps, p99) = serve_run_tiered(scale, scale.objects, true, tier);
            if rps > best.0 {
                best = (rps, p99);
            }
        }
        best
    };
    let (base_rps, base_p99) = serve_best(false);
    let (tier_rps, tier_p99) = serve_best(true);
    let regression_pct =
        if base_rps > 0.0 { ((base_rps - tier_rps) / base_rps * 100.0).max(0.0) } else { 0.0 };

    // The cold-start comparison ingests the same endpoint-expanded
    // stream directly into the two store layouts and times the reopen.
    let mut cfg = base_synthetic(scale);
    cfg.num_objects = scale.objects.max(1);
    let w = generate_synthetic(&cfg);
    let mut readings: Vec<RawReading> = Vec::with_capacity(w.ott.len() * 2);
    for r in w.ott.records() {
        readings.push(RawReading { object: r.object, device: r.device, t: r.ts });
        if r.te > r.ts {
            readings.push(RawReading { object: r.object, device: r.device, t: r.te });
        }
    }
    readings.sort_by(|a, b| a.t.total_cmp(&b.t).then_with(|| a.object.cmp(&b.object)));
    let base_opts = StoreOptions {
        snapshot_every: Some(4096),
        sync_each_reading: false,
        ..StoreOptions::default()
    };
    // Same snapshot clock as the baseline: compaction itself never
    // snapshots (the manifest swap is its commit point), it only rebases
    // the WAL to the oldest snapshot the regular clock retained.
    let tier_opts = StoreOptions {
        compact_every: Some(4096),
        scrub_every: Some(4096),
        scrub_budget: 1,
        ..base_opts
    };
    let cold_best = |opts: StoreOptions| -> f64 {
        (0..repeats).map(|_| tier_ingest_run(&readings, opts).1).fold(f64::INFINITY, f64::min)
    };
    let base_cold = cold_best(base_opts);
    let tier_cold = cold_best(tier_opts);
    let coldstart_ratio = if base_cold > 0.0 { tier_cold / base_cold } else { 0.0 };

    format!(
        "{{\"bench\":8,\"experiment\":\"segment-tier-overhead\",\"objects\":{},\"repeats\":{},\
         \"readings\":{},\
         \"baseline\":{{\"ingest_rps\":{:.1},\"notify_p99_ms\":{:.3},\"coldstart_ms\":{:.3}}},\
         \"tiered\":{{\"ingest_rps\":{:.1},\"notify_p99_ms\":{:.3},\"coldstart_ms\":{:.3}}},\
         \"ingest_regression_pct\":{:.2},\"coldstart_ratio\":{:.3}}}",
        scale.objects,
        repeats,
        readings.len(),
        base_rps,
        base_p99,
        base_cold,
        tier_rps,
        tier_p99,
        tier_cold,
        regression_pct,
        coldstart_ratio
    )
}

/// The PR 9 distribution-subscription overhead benchmark: sustained
/// serving-ingest throughput with one ε = 0 subscription of each answer
/// family — the expected-flow snapshot baseline vs the probabilistic
/// count distribution (and, informationally, the long-visit count) —
/// as the JSON document CI writes to `BENCH_9.json`. The acceptance bar
/// is < 5% ingest regression for the distrib subscription: its per-delta
/// recompute is the same per-object snapshot flow the baseline runs, so
/// the only added work is the per-notification convolution at rank time.
/// Runs are paired: each round measures baseline, distrib, and
/// long-visit back-to-back, and the reported regression is the
/// *minimum* paired regression across `scale.repeats` rounds (min 3).
/// A minimum over pairs is the right noise filter for an overhead gate
/// on short runs — a load spike that slows one side of one round
/// cannot flip it, while genuinely inherent overhead shows up in every
/// round. Reported throughputs are each side's best across rounds.
pub fn bench9_json(scale: &Scale) -> String {
    use inflow_service::SubKind;
    let repeats = scale.repeats.max(3);
    let run = |make_kind: &dyn Fn(f64) -> SubKind| -> (f64, f64) {
        serve_run_spec(scale, scale.objects, true, true, make_kind)
    };
    let paired_regression = |base: f64, rps: f64| {
        if base > 0.0 {
            ((base - rps) / base * 100.0).max(0.0)
        } else {
            0.0
        }
    };
    let mut base_best = (0.0f64, 0.0f64);
    let mut dist_best = (0.0f64, 0.0f64);
    let mut lv_best = (0.0f64, 0.0f64);
    let mut dist_reg = f64::INFINITY;
    let mut lv_reg = f64::INFINITY;
    for _ in 0..repeats {
        let (b_rps, b_p99) = run(&|duration| SubKind::Snapshot { t: duration / 2.0 });
        let (d_rps, d_p99) =
            run(&|duration| SubKind::Distrib { t: duration / 2.0, kq: 2, kmax: 32 });
        let (l_rps, l_p99) =
            run(&|duration| SubKind::LongVisit { ts: 0.0, te: duration, d: duration / 8.0 });
        if b_rps > base_best.0 {
            base_best = (b_rps, b_p99);
        }
        if d_rps > dist_best.0 {
            dist_best = (d_rps, d_p99);
        }
        if l_rps > lv_best.0 {
            lv_best = (l_rps, l_p99);
        }
        dist_reg = dist_reg.min(paired_regression(b_rps, d_rps));
        lv_reg = lv_reg.min(paired_regression(b_rps, l_rps));
    }
    let (base_rps, base_p99) = base_best;
    let (dist_rps, dist_p99) = dist_best;
    let (lv_rps, lv_p99) = lv_best;
    format!(
        "{{\"bench\":9,\"experiment\":\"distrib-subscription-overhead\",\"objects\":{},\
         \"repeats\":{},\
         \"baseline\":{{\"ingest_rps\":{:.1},\"notify_p99_ms\":{:.3}}},\
         \"distrib\":{{\"ingest_rps\":{:.1},\"notify_p99_ms\":{:.3}}},\
         \"longvisit\":{{\"ingest_rps\":{:.1},\"notify_p99_ms\":{:.3}}},\
         \"ingest_regression_pct\":{:.2},\"longvisit_regression_pct\":{:.2}}}",
        scale.objects,
        repeats,
        base_rps,
        base_p99,
        dist_rps,
        dist_p99,
        lv_rps,
        lv_p99,
        dist_reg,
        lv_reg
    )
}

/// All experiment ids in suite order.
pub const ALL_EXPERIMENTS: [&str; 22] = [
    "f10a",
    "f10b",
    "f11a",
    "f11b",
    "f12a",
    "f12b",
    "f12c",
    "f12d",
    "f13a",
    "f13b",
    "f14a",
    "f14b",
    "f14c",
    "abl-topo",
    "abl-mbr",
    "abl-snapmbr",
    "abl-grid",
    "abl-accuracy",
    "abl-noise",
    "abl-coldstart",
    "abl-serve",
    "abl-distrib",
];

/// Runs one experiment by id.
pub fn run_experiment(id: &str, scale: &Scale) -> Option<Series> {
    Some(match id {
        "f10a" => f10a(scale),
        "f10b" => f10b(scale),
        "f11a" => f11a(scale),
        "f11b" => f11b(scale),
        "f12a" => f12a(scale),
        "f12b" => f12b(scale),
        "f12c" => f12c(scale),
        "f12d" => f12d(scale),
        "f13a" => f13a(scale),
        "f13b" => f13b(scale),
        "f14a" => f14a(scale),
        "f14b" => f14b(scale),
        "f14c" => f14c(scale),
        "abl-topo" => abl_topo(scale),
        "abl-mbr" => abl_mbr(scale),
        "abl-snapmbr" => abl_snapmbr(scale),
        "abl-grid" => abl_grid(scale),
        "abl-accuracy" => abl_accuracy(scale),
        "abl-noise" => abl_noise(scale),
        "abl-coldstart" => abl_coldstart(scale),
        "abl-serve" => abl_serve(scale),
        "abl-distrib" => abl_distrib(scale),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poi_subset_is_deterministic_and_sized() {
        let scale = Scale::smoke();
        let fa = analytics(generate_synthetic(&base_synthetic(&scale)), &scale);
        let a = poi_subset(&fa, 60, 0);
        let b = poi_subset(&fa, 60, 0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let larger = poi_subset(&fa, 100, 0);
        assert!(larger.len() >= a.len());
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("nope", &Scale::smoke()).is_none());
    }

    #[test]
    fn smoke_run_abl_noise() {
        let s = run_experiment("abl-noise", &Scale::smoke()).unwrap();
        assert_eq!(s.rows.len(), 4, "one row per corruption level");
        assert_eq!(s.rows[0].x, "clean");
        // Scored against the clean-input ranking, so the clean row is
        // exact by construction.
        assert_eq!(s.rows[0].iterative_ms, 1.0);
        assert_eq!(s.rows[0].join_ms, 1.0);
        // Precisions are valid fractions. (Monotonicity in corruption is a
        // statistical property that only emerges at real scales, so the
        // smoke test checks well-formedness, not ordering.)
        for r in &s.rows {
            assert!((0.0..=1.0).contains(&r.iterative_ms), "{:?}", r);
            assert!((0.0..=1.0).contains(&r.join_ms), "{:?}", r);
        }
    }

    #[test]
    fn smoke_run_abl_coldstart() {
        let s = run_experiment("abl-coldstart", &Scale::smoke()).unwrap();
        assert_eq!(s.rows.len(), 3, "one row per dataset size");
        for r in &s.rows {
            assert!(r.iterative_ms >= 0.0 && r.join_ms >= 0.0, "{:?}", r);
        }
    }

    #[test]
    fn smoke_run_abl_serve() {
        let tiny = Scale { objects: 12, duration: 240.0, ..Scale::smoke() };
        let s = run_experiment("abl-serve", &tiny).unwrap();
        assert_eq!(s.rows.len(), 3, "one row per dataset size");
        for r in &s.rows {
            assert!(r.iterative_ms > 0.0, "throughput must be positive: {r:?}");
            assert!(r.join_ms >= 0.0, "{r:?}");
        }
    }

    #[test]
    fn smoke_run_f10a() {
        let s = run_experiment("f10a", &Scale::smoke()).unwrap();
        assert_eq!(s.rows.len(), defaults::K_SWEEP.len());
        assert!(s.rows.iter().all(|r| r.iterative_ms >= 0.0 && r.join_ms >= 0.0));
    }
}
