//! The observability-overhead gate: `BENCH_6.json`.
//!
//! Runs the sustained-ingest server benchmark twice — tracing + flight
//! recording off, then on — and writes one JSON document with both
//! sides' ingest throughput and notify p99, plus the computed
//! regression percentage. The acceptance bar is < 5% ingest-throughput
//! regression with tracing on.
//!
//! ```text
//! bench6 [--objects N] [--duration S] [--repeats N] [--smoke] [--out PATH]
//! ```
//!
//! Without `--out` the document goes to stdout.

use inflow_bench::{bench6_json, Scale};

fn main() {
    let mut scale = Scale::default();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--objects" => scale.objects = parse(args.next(), "--objects"),
            "--duration" => scale.duration = parse(args.next(), "--duration"),
            "--repeats" => scale.repeats = parse(args.next(), "--repeats"),
            "--smoke" => scale = Scale::smoke(),
            "--out" => out = Some(parse(args.next(), "--out")),
            "--help" | "-h" => {
                println!(
                    "bench6 — tracing/flight-recorder overhead report (BENCH_6.json)\n\n\
                     usage: bench6 [--objects N] [--duration S] [--repeats N] [--smoke] [--out PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (see --help)");
                std::process::exit(2);
            }
        }
    }
    let json = bench6_json(&scale);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
                eprintln!("bench6: writing {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("bench6: wrote {path}");
        }
        None => println!("{json}"),
    }
}

fn parse<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}
