//! The distribution-subscription overhead gate: `BENCH_9.json`.
//!
//! Runs the sustained serving-ingest benchmark three times — once with
//! the expected-flow snapshot subscription (the baseline every earlier
//! bench uses), once with a probabilistic count-distribution
//! subscription, once with a long-visit subscription — and writes one
//! JSON document with each side's ingest throughput and notify p99,
//! plus the computed regression percentages. The acceptance bar is
//! < 5% ingest regression for the distrib subscription vs the
//! expected-flow baseline; the binary exits non-zero when the bar is
//! missed, which is how `scripts/ci.sh` gates it.
//!
//! ```text
//! bench9 [--objects N] [--duration S] [--repeats N] [--smoke] [--out PATH]
//! ```
//!
//! Without `--out` the document goes to stdout.

use inflow_bench::{bench9_json, Scale};

/// The acceptance bar: distrib-subscription serving-ingest overhead.
const MAX_REGRESSION_PCT: f64 = 5.0;

fn main() {
    let mut scale = Scale::default();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--objects" => scale.objects = parse(args.next(), "--objects"),
            "--duration" => scale.duration = parse(args.next(), "--duration"),
            "--repeats" => scale.repeats = parse(args.next(), "--repeats"),
            "--smoke" => scale = Scale::smoke(),
            "--out" => out = Some(parse(args.next(), "--out")),
            "--help" | "-h" => {
                println!(
                    "bench9 — distrib-subscription overhead report (BENCH_9.json)\n\n\
                     usage: bench9 [--objects N] [--duration S] [--repeats N] [--smoke] [--out PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (see --help)");
                std::process::exit(2);
            }
        }
    }
    let json = bench9_json(&scale);
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("bench9: writing {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("bench9: wrote {path}");
        }
        None => println!("{json}"),
    }
    // Gate on the regression figure the document itself reports, so the
    // committed JSON and the exit code can never disagree.
    let regression = json
        .split("\"ingest_regression_pct\":")
        .nth(1)
        .and_then(|rest| rest.split([',', '}']).next())
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(f64::INFINITY);
    if regression >= MAX_REGRESSION_PCT {
        eprintln!(
            "bench9: distrib-subscription ingest regression {regression:.2}% exceeds the \
             {MAX_REGRESSION_PCT}% bar"
        );
        std::process::exit(1);
    }
}

fn parse<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}
