//! The segment-tier overhead gate: `BENCH_8.json`.
//!
//! Runs the direct store-ingest benchmark twice — once against the PR 3
//! WAL + snapshot layout, once with the immutable segment tier on
//! (background compaction plus the budgeted scrubber) — and writes one
//! JSON document with both sides' ingest throughput and cold-start
//! reopen time, plus the computed regression percentage and cold-start
//! ratio. The acceptance bars are < 5% ingest regression with the tier
//! on and a tiered cold start no slower than the snapshot reload.
//!
//! ```text
//! bench8 [--objects N] [--duration S] [--repeats N] [--smoke] [--out PATH]
//! ```
//!
//! Without `--out` the document goes to stdout.

use inflow_bench::{bench8_json, Scale};

fn main() {
    let mut scale = Scale::default();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--objects" => scale.objects = parse(args.next(), "--objects"),
            "--duration" => scale.duration = parse(args.next(), "--duration"),
            "--repeats" => scale.repeats = parse(args.next(), "--repeats"),
            "--smoke" => scale = Scale::smoke(),
            "--out" => out = Some(parse(args.next(), "--out")),
            "--help" | "-h" => {
                println!(
                    "bench8 — segment-tier overhead report (BENCH_8.json)\n\n\
                     usage: bench8 [--objects N] [--duration S] [--repeats N] [--smoke] [--out PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (see --help)");
                std::process::exit(2);
            }
        }
    }
    let json = bench8_json(&scale);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
                eprintln!("bench8: writing {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("bench8: wrote {path}");
        }
        None => println!("{json}"),
    }
}

fn parse<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}
