//! The replay-recorder overhead gate: `BENCH_7.json`.
//!
//! Runs the sustained-ingest server benchmark twice — once driven
//! directly, once routed through the replay recorder (op logging plus
//! per-barrier state-hash verification points) — and writes one JSON
//! document with both sides' ingest throughput and notify p99, plus the
//! computed regression percentage. The acceptance bar is < 5%
//! ingest-throughput regression while recording.
//!
//! ```text
//! bench7 [--objects N] [--duration S] [--repeats N] [--smoke] [--out PATH]
//! ```
//!
//! Without `--out` the document goes to stdout.

use inflow_bench::{bench7_json, Scale};

fn main() {
    let mut scale = Scale::default();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--objects" => scale.objects = parse(args.next(), "--objects"),
            "--duration" => scale.duration = parse(args.next(), "--duration"),
            "--repeats" => scale.repeats = parse(args.next(), "--repeats"),
            "--smoke" => scale = Scale::smoke(),
            "--out" => out = Some(parse(args.next(), "--out")),
            "--help" | "-h" => {
                println!(
                    "bench7 — replay-recorder overhead report (BENCH_7.json)\n\n\
                     usage: bench7 [--objects N] [--duration S] [--repeats N] [--smoke] [--out PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (see --help)");
                std::process::exit(2);
            }
        }
    }
    let json = bench7_json(&scale);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
                eprintln!("bench7: writing {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("bench7: wrote {path}");
        }
        None => println!("{json}"),
    }
}

fn parse<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}
