//! The figure-regeneration harness.
//!
//! Reruns the paper's evaluation experiments (DESIGN.md per-experiment
//! index) and prints one CSV series per figure:
//!
//! ```text
//! figures [EXPERIMENT ...] [--objects N] [--passengers N] [--duration S]
//!         [--repeats N] [--smoke]
//! ```
//!
//! With no experiment ids, the whole suite runs (`all`). Scales default to
//! the reduced sizes documented in DESIGN.md; raise `--objects` /
//! `--passengers` towards paper scale as your time budget allows.

use inflow_bench::{run_experiment, Scale, ALL_EXPERIMENTS};
use std::time::Instant;

fn main() {
    let mut scale = Scale::default();
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--objects" => scale.objects = parse(args.next(), "--objects"),
            "--passengers" => scale.passengers = parse(args.next(), "--passengers"),
            "--duration" => scale.duration = parse(args.next(), "--duration"),
            "--repeats" => scale.repeats = parse(args.next(), "--repeats"),
            "--smoke" => scale = Scale::smoke(),
            "--help" | "-h" => {
                print_help();
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                print_help();
                std::process::exit(2);
            }
            exp => experiments.push(exp.to_string()),
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    eprintln!(
        "# scale: objects={} passengers={} duration={}s repeats={}",
        scale.objects, scale.passengers, scale.duration, scale.repeats
    );
    for exp in &experiments {
        let t0 = Instant::now();
        match run_experiment(exp, &scale) {
            Some(series) => {
                series.print_csv();
                eprintln!("# {exp} done in {:.1}s", t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment id {exp}; known: {ALL_EXPERIMENTS:?}");
                std::process::exit(2);
            }
        }
    }
}

fn parse<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}

fn print_help() {
    println!(
        "figures — regenerate the EDBT 2016 evaluation figures\n\n\
         usage: figures [EXPERIMENT ...] [--objects N] [--passengers N]\n\
                [--duration SECONDS] [--repeats N] [--smoke]\n\n\
         experiments: {}\n\
         (default: all)",
        ALL_EXPERIMENTS.join(", ")
    );
}
