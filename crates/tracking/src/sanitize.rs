//! Anomaly detection and repair for dirty tracking data.
//!
//! Real symbolic tracking feeds are dirty: readers deliver readings out of
//! order, tags produce duplicate or ghost reads, device clocks drift until
//! per-object runs overlap, and `V_max`-infeasible transitions (teleports)
//! appear when two tags collide on one identifier. The paper's own CPH
//! Bluetooth data motivates infeasible gaps and missed detections (§3);
//! this module makes them first-class instead of accidental.
//!
//! Two gates share one typed taxonomy ([`AnomalyKind`]) and one per-kind
//! policy table ([`SanitizeConfig`]):
//!
//! * [`sanitize_rows`] — a batch pass over OTT rows that enforces every
//!   invariant [`crate::ObjectTrackingTable::from_rows`] checks (and the
//!   `V_max` feasibility it cannot check) *before* table construction;
//! * [`ReadingSanitizer`] — a streaming gate over raw readings with a
//!   bounded reorder buffer (watermark + allowed lateness), feeding
//!   [`crate::OnlineTracker`] or [`crate::merge_raw_readings`].
//!
//! Every anomaly is counted in a [`SanitizeReport`] regardless of policy,
//! so degraded-mode query answers can attribute flow mass to repaired
//! records.

use crate::ott::{ObjectId, OttRow};
use crate::reading::RawReading;
use crate::Timestamp;
use inflow_indoor::DeviceId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// The anomaly taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// A reading arrived later than the allowed lateness behind the
    /// watermark, or a row's endpoints are reversed (`te < ts`).
    OutOfOrder,
    /// An exact duplicate of an already-accepted reading or row.
    Duplicate,
    /// Two runs of the same object overlap in time (clock drift, reader
    /// misconfiguration) — the invariant `from_rows` rejects.
    OverlappingRun,
    /// The device id is not part of the known deployment.
    UnknownDevice,
    /// A NaN or infinite timestamp.
    NonFiniteTimestamp,
    /// Consecutive runs of one object require travelling faster than
    /// `V_max` (a teleport / ghost read / tag collision).
    InfeasibleTransition,
}

impl AnomalyKind {
    /// All kinds, in display order.
    pub const ALL: [AnomalyKind; 6] = [
        AnomalyKind::OutOfOrder,
        AnomalyKind::Duplicate,
        AnomalyKind::OverlappingRun,
        AnomalyKind::UnknownDevice,
        AnomalyKind::NonFiniteTimestamp,
        AnomalyKind::InfeasibleTransition,
    ];

    /// Stable snake_case name used in rendered reports.
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::OutOfOrder => "out_of_order",
            AnomalyKind::Duplicate => "duplicate",
            AnomalyKind::OverlappingRun => "overlapping_run",
            AnomalyKind::UnknownDevice => "unknown_device",
            AnomalyKind::NonFiniteTimestamp => "non_finite_timestamp",
            AnomalyKind::InfeasibleTransition => "infeasible_transition",
        }
    }

    /// Inverse of [`AnomalyKind::name`]; `None` for unrecognised names.
    pub fn from_name(name: &str) -> Option<AnomalyKind> {
        AnomalyKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    fn index(self) -> usize {
        AnomalyKind::ALL.iter().position(|&k| k == self).expect("kind in ALL")
    }
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What to do with a detected anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Drop the offending record silently (counted, not stored).
    Reject,
    /// Remove the record from the clean stream but keep it in the
    /// outcome's quarantine store for offline inspection.
    Quarantine,
    /// Fix the record in place where a sound repair exists: reorder within
    /// the lateness bound, deduplicate, clamp overlaps, split infeasible
    /// chains. Anomalies with no sound repair (non-finite timestamps,
    /// unknown devices) degrade to `Reject`.
    Repair,
}

/// Per-kind policies plus the knobs the repairs need.
#[derive(Debug, Clone)]
pub struct SanitizeConfig {
    policies: [Policy; AnomalyKind::ALL.len()],
    /// How far behind the watermark a reading may arrive and still be
    /// reordered instead of counted out-of-order ([`ReadingSanitizer`]).
    pub allowed_lateness: f64,
    /// Maximum indoor movement speed; `0.0` disables the feasibility
    /// check (no [`AnomalyKind::InfeasibleTransition`] detection).
    pub vmax: f64,
}

impl Default for SanitizeConfig {
    fn default() -> SanitizeConfig {
        SanitizeConfig::repair_all()
    }
}

impl SanitizeConfig {
    /// Every anomaly repaired where possible (the forgiving default).
    pub fn repair_all() -> SanitizeConfig {
        SanitizeConfig {
            policies: [Policy::Repair; AnomalyKind::ALL.len()],
            allowed_lateness: 0.0,
            vmax: 0.0,
        }
    }

    /// Every anomaly rejected (drop-and-count).
    pub fn reject_all() -> SanitizeConfig {
        SanitizeConfig { policies: [Policy::Reject; AnomalyKind::ALL.len()], ..Self::repair_all() }
    }

    /// Every anomaly quarantined for offline inspection.
    pub fn quarantine_all() -> SanitizeConfig {
        SanitizeConfig {
            policies: [Policy::Quarantine; AnomalyKind::ALL.len()],
            ..Self::repair_all()
        }
    }

    /// The policy for one anomaly kind.
    pub fn policy(&self, kind: AnomalyKind) -> Policy {
        self.policies[kind.index()]
    }

    /// Overrides the policy for one anomaly kind.
    pub fn with_policy(mut self, kind: AnomalyKind, policy: Policy) -> SanitizeConfig {
        self.policies[kind.index()] = policy;
        self
    }

    /// Sets `V_max` (enables teleport detection when a geometry oracle is
    /// supplied).
    pub fn with_vmax(mut self, vmax: f64) -> SanitizeConfig {
        assert!(vmax >= 0.0 && vmax.is_finite(), "vmax must be finite and non-negative");
        self.vmax = vmax;
        self
    }

    /// Sets the reorder-buffer lateness bound.
    pub fn with_lateness(mut self, lateness: f64) -> SanitizeConfig {
        assert!(lateness >= 0.0 && lateness.is_finite(), "lateness must be finite, non-negative");
        self.allowed_lateness = lateness;
        self
    }
}

/// Deployment geometry the sanitizer consults: which devices exist and a
/// *lower bound* on the travel distance between two devices' detection
/// ranges. A lower bound keeps the feasibility check conservative — a
/// transition is flagged only when even the straight-line path is too
/// fast for `V_max`.
pub trait DeviceOracle {
    /// Whether the device is part of the deployment.
    fn is_known(&self, device: DeviceId) -> bool;

    /// Lower bound on the distance an object must travel from `a`'s range
    /// to `b`'s range; `None` when either device is unknown.
    fn min_travel_distance(&self, a: DeviceId, b: DeviceId) -> Option<f64>;
}

impl DeviceOracle for inflow_indoor::FloorPlan {
    fn is_known(&self, device: DeviceId) -> bool {
        (device.0 as usize) < self.devices().len()
    }

    fn min_travel_distance(&self, a: DeviceId, b: DeviceId) -> Option<f64> {
        if !self.is_known(a) || !self.is_known(b) {
            return None;
        }
        let da = self.device(a);
        let db = self.device(b);
        let centers = da.position.distance(db.position);
        Some((centers - da.range - db.range).max(0.0))
    }
}

/// What happened to a detected anomaly (for report accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Repaired,
    Rejected,
    Quarantined,
}

/// Per-kind detection and disposition counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    detected: [u64; AnomalyKind::ALL.len()],
    repaired: [u64; AnomalyKind::ALL.len()],
    rejected: [u64; AnomalyKind::ALL.len()],
    quarantined: [u64; AnomalyKind::ALL.len()],
    /// Records entering the gate.
    pub records_in: u64,
    /// Records surviving to the clean output.
    pub records_out: u64,
    /// Previously quarantined rows restored to the clean output by a
    /// [`readmit_rows`] pass.
    pub readmitted: u64,
}

impl SanitizeReport {
    fn count(&mut self, kind: AnomalyKind, action: Action) {
        let i = kind.index();
        self.detected[i] += 1;
        match action {
            Action::Repaired => self.repaired[i] += 1,
            Action::Rejected => self.rejected[i] += 1,
            Action::Quarantined => self.quarantined[i] += 1,
        }
    }

    /// Detections of one kind.
    pub fn detected(&self, kind: AnomalyKind) -> u64 {
        self.detected[kind.index()]
    }

    /// Repairs of one kind.
    pub fn repaired(&self, kind: AnomalyKind) -> u64 {
        self.repaired[kind.index()]
    }

    /// Rejections of one kind.
    pub fn rejected(&self, kind: AnomalyKind) -> u64 {
        self.rejected[kind.index()]
    }

    /// Quarantines of one kind.
    pub fn quarantined(&self, kind: AnomalyKind) -> u64 {
        self.quarantined[kind.index()]
    }

    /// All detections across kinds.
    pub fn total_detected(&self) -> u64 {
        self.detected.iter().sum()
    }

    /// All repairs across kinds.
    pub fn total_repaired(&self) -> u64 {
        self.repaired.iter().sum()
    }

    /// All rejections across kinds.
    pub fn total_rejected(&self) -> u64 {
        self.rejected.iter().sum()
    }

    /// All quarantines across kinds.
    pub fn total_quarantined(&self) -> u64 {
        self.quarantined.iter().sum()
    }

    /// Whether no anomaly was detected.
    pub fn is_clean(&self) -> bool {
        self.total_detected() == 0
    }

    /// Accumulates another report (e.g. readings gate + row gate).
    pub fn merge(&mut self, other: &SanitizeReport) {
        for i in 0..AnomalyKind::ALL.len() {
            self.detected[i] += other.detected[i];
            self.repaired[i] += other.repaired[i];
            self.rejected[i] += other.rejected[i];
            self.quarantined[i] += other.quarantined[i];
        }
        self.records_in += other.records_in;
        self.records_out += other.records_out;
        self.readmitted += other.readmitted;
    }

    /// One-line summary, e.g.
    /// `sanitize: 1000 in, 982 out; 18 anomalies (12 repaired, 6 rejected)
    /// [duplicate: 7, overlapping_run: 11]`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("sanitize: {} in, {} out", self.records_in, self.records_out);
        if self.readmitted > 0 {
            let _ = write!(s, "; {} readmitted", self.readmitted);
        }
        if self.is_clean() {
            s.push_str("; clean");
            return s;
        }
        let _ = write!(
            s,
            "; {} anomalies ({} repaired, {} rejected, {} quarantined)",
            self.total_detected(),
            self.total_repaired(),
            self.total_rejected(),
            self.total_quarantined()
        );
        let per_kind: Vec<String> = AnomalyKind::ALL
            .iter()
            .filter(|&&k| self.detected(k) > 0)
            .map(|&k| format!("{}: {}", k.name(), self.detected(k)))
            .collect();
        let _ = write!(s, " [{}]", per_kind.join(", "));
        s
    }
}

/// The result of [`sanitize_rows`].
#[derive(Debug, Default)]
pub struct RowSanitizeOutcome {
    /// Clean rows, safe for [`crate::ObjectTrackingTable::from_rows`].
    pub rows: Vec<OttRow>,
    /// Rows removed under [`Policy::Quarantine`], with their diagnosis.
    pub quarantined: Vec<(OttRow, AnomalyKind)>,
    /// Objects whose chains were touched by a repair (sorted, deduped).
    /// Includes the synthetic object ids minted by chain splitting.
    pub repaired_objects: Vec<ObjectId>,
    /// Detection and disposition counts.
    pub report: SanitizeReport,
}

const FEASIBILITY_EPS: f64 = 1e-9;

/// Batch gate over OTT rows: detects and disposes of every taxonomy
/// anomaly so the output always satisfies the `from_rows` invariants.
///
/// Repairs, in pass order:
///
/// * reversed endpoints (`te < ts`) are swapped;
/// * exact duplicates keep one copy;
/// * overlapping runs of one object are clamped to start at the previous
///   run's end (rows swallowed whole are dropped);
/// * `V_max`-infeasible transitions split the object's chain: the rows
///   after the teleport continue under a fresh synthetic [`ObjectId`] —
///   physically, two different objects shared one tag id.
///
/// Non-finite timestamps and unknown devices have no sound repair;
/// [`Policy::Repair`] degrades to rejection for them. Feasibility is only
/// checked when `cfg.vmax > 0` and an oracle is supplied.
pub fn sanitize_rows(
    rows: Vec<OttRow>,
    cfg: &SanitizeConfig,
    oracle: Option<&dyn DeviceOracle>,
) -> RowSanitizeOutcome {
    let mut out = RowSanitizeOutcome::default();
    out.report.records_in = rows.len() as u64;
    let mut repaired_objects: Vec<ObjectId> = Vec::new();
    let mut next_synthetic =
        rows.iter().map(|r| r.object.0).max().map_or(0, |m| m.saturating_add(1));

    // Pass 1: per-row anomalies (no neighbour context needed).
    let mut kept: Vec<OttRow> = Vec::with_capacity(rows.len());
    for mut row in rows {
        if !(row.ts.is_finite() && row.te.is_finite()) {
            // Unrepairable: Repair degrades to Reject.
            match cfg.policy(AnomalyKind::NonFiniteTimestamp) {
                Policy::Quarantine => {
                    out.report.count(AnomalyKind::NonFiniteTimestamp, Action::Quarantined);
                    out.quarantined.push((row, AnomalyKind::NonFiniteTimestamp));
                }
                _ => out.report.count(AnomalyKind::NonFiniteTimestamp, Action::Rejected),
            }
            continue;
        }
        if let Some(oracle) = oracle {
            if !oracle.is_known(row.device) {
                match cfg.policy(AnomalyKind::UnknownDevice) {
                    Policy::Quarantine => {
                        out.report.count(AnomalyKind::UnknownDevice, Action::Quarantined);
                        out.quarantined.push((row, AnomalyKind::UnknownDevice));
                    }
                    _ => out.report.count(AnomalyKind::UnknownDevice, Action::Rejected),
                }
                continue;
            }
        }
        if row.te < row.ts {
            match cfg.policy(AnomalyKind::OutOfOrder) {
                Policy::Repair => {
                    std::mem::swap(&mut row.ts, &mut row.te);
                    out.report.count(AnomalyKind::OutOfOrder, Action::Repaired);
                    repaired_objects.push(row.object);
                }
                Policy::Reject => {
                    out.report.count(AnomalyKind::OutOfOrder, Action::Rejected);
                    continue;
                }
                Policy::Quarantine => {
                    out.report.count(AnomalyKind::OutOfOrder, Action::Quarantined);
                    out.quarantined.push((row, AnomalyKind::OutOfOrder));
                    continue;
                }
            }
        }
        kept.push(row);
    }

    // Pass 2: neighbour anomalies, per object in time order.
    kept.sort_by(|a, b| {
        a.object
            .cmp(&b.object)
            .then_with(|| a.ts.total_cmp(&b.ts))
            .then_with(|| a.te.total_cmp(&b.te))
            .then_with(|| a.device.0.cmp(&b.device.0))
    });
    let check_feasibility = cfg.vmax > 0.0 && oracle.is_some();
    // The previous *kept* row per original object id, plus the synthetic
    // alias its chain currently writes to (chain splitting).
    let mut prev: HashMap<ObjectId, (OttRow, ObjectId)> = HashMap::new();
    let mut clean: Vec<OttRow> = Vec::with_capacity(kept.len());
    for mut row in kept {
        let original = row.object;
        let Some(&(prev_row, alias)) = prev.get(&original) else {
            prev.insert(original, (row, original));
            clean.push(row);
            continue;
        };
        if row == prev_row {
            match cfg.policy(AnomalyKind::Duplicate) {
                Policy::Repair => {
                    out.report.count(AnomalyKind::Duplicate, Action::Repaired);
                    repaired_objects.push(original);
                }
                Policy::Reject => out.report.count(AnomalyKind::Duplicate, Action::Rejected),
                Policy::Quarantine => {
                    out.report.count(AnomalyKind::Duplicate, Action::Quarantined);
                    out.quarantined.push((row, AnomalyKind::Duplicate));
                }
            }
            continue;
        }
        let mut alias = alias;
        if row.ts < prev_row.te {
            match cfg.policy(AnomalyKind::OverlappingRun) {
                Policy::Repair => {
                    if row.te <= prev_row.te {
                        // Swallowed whole by the previous run: nothing
                        // left after clamping.
                        out.report.count(AnomalyKind::OverlappingRun, Action::Repaired);
                        repaired_objects.push(original);
                        continue;
                    }
                    row.ts = prev_row.te;
                    out.report.count(AnomalyKind::OverlappingRun, Action::Repaired);
                    repaired_objects.push(original);
                }
                Policy::Reject => {
                    out.report.count(AnomalyKind::OverlappingRun, Action::Rejected);
                    continue;
                }
                Policy::Quarantine => {
                    out.report.count(AnomalyKind::OverlappingRun, Action::Quarantined);
                    out.quarantined.push((row, AnomalyKind::OverlappingRun));
                    continue;
                }
            }
        } else if check_feasibility && row.device != prev_row.device {
            let oracle = oracle.expect("checked above");
            if let Some(dist) = oracle.min_travel_distance(prev_row.device, row.device) {
                let gap = row.ts - prev_row.te;
                if dist > cfg.vmax * gap + FEASIBILITY_EPS {
                    match cfg.policy(AnomalyKind::InfeasibleTransition) {
                        Policy::Repair => {
                            // Chain splitting: the tail is physically a
                            // different object that shared the tag id.
                            alias = ObjectId(next_synthetic);
                            next_synthetic = next_synthetic.saturating_add(1);
                            out.report.count(AnomalyKind::InfeasibleTransition, Action::Repaired);
                            repaired_objects.push(original);
                            repaired_objects.push(alias);
                        }
                        Policy::Reject => {
                            out.report.count(AnomalyKind::InfeasibleTransition, Action::Rejected);
                            continue;
                        }
                        Policy::Quarantine => {
                            out.report
                                .count(AnomalyKind::InfeasibleTransition, Action::Quarantined);
                            out.quarantined.push((row, AnomalyKind::InfeasibleTransition));
                            continue;
                        }
                    }
                }
            }
        }
        prev.insert(original, (row, alias));
        row.object = alias;
        clean.push(row);
    }

    repaired_objects.sort_unstable();
    repaired_objects.dedup();
    out.report.records_out = clean.len() as u64;
    out.rows = clean;
    out.repaired_objects = repaired_objects;
    out
}

/// Offline re-admission of quarantined rows (the `readmit` pass).
///
/// Replays previously quarantined rows together with the already-clean
/// table through [`sanitize_rows`] under the current config and oracle.
/// Typical use: rows quarantined as [`AnomalyKind::UnknownDevice`] during
/// a device outage or deployment change become admissible once the oracle
/// knows the device. The replay re-checks the full taxonomy over the
/// combined table, so rows that still violate it stay out — rejected or
/// re-quarantined per policy, never silently admitted.
///
/// `report.readmitted` is the *net* number of quarantined rows restored
/// to the clean output (output size minus surviving clean input, capped
/// at the quarantine size). The replay diagnoses the combined table, so
/// when a readmitted row conflicts with a formerly-clean row the drop may
/// be charged to either side; the net count stays truthful either way.
pub fn readmit_rows(
    clean: Vec<OttRow>,
    quarantined: Vec<OttRow>,
    cfg: &SanitizeConfig,
    oracle: Option<&dyn DeviceOracle>,
) -> RowSanitizeOutcome {
    let clean_in = clean.len() as u64;
    let q_in = quarantined.len() as u64;
    let mut rows = clean;
    rows.extend(quarantined);
    let mut out = sanitize_rows(rows, cfg, oracle);
    out.report.readmitted = out.report.records_out.saturating_sub(clean_in).min(q_in);
    out
}

/// Reading ordered for the min-heap reorder buffer (deterministic
/// tie-breaking so emission order never depends on heap internals).
#[derive(Debug, Clone, Copy)]
struct OrdReading(RawReading);

impl PartialEq for OrdReading {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for OrdReading {}
impl Ord for OrdReading {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .0
            .t
            .total_cmp(&self.0.t)
            .then_with(|| other.0.object.cmp(&self.0.object))
            .then_with(|| other.0.device.0.cmp(&self.0.device.0))
    }
}
impl PartialOrd for OrdReading {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Streaming gate over raw readings: a bounded reorder buffer plus the
/// per-reading taxonomy checks.
///
/// Readings are buffered until the watermark (largest timestamp seen)
/// passes them by `allowed_lateness`, then emitted in timestamp order.
/// A reading arriving behind the emission frontier is out-of-order beyond
/// repair-by-reordering: [`Policy::Repair`] clamps its timestamp to the
/// frontier, [`Policy::Reject`] drops it, [`Policy::Quarantine`] stores
/// it. Call [`ReadingSanitizer::flush`] at end of stream.
#[derive(Debug)]
pub struct ReadingSanitizer {
    cfg: SanitizeConfig,
    known_devices: Option<Vec<bool>>,
    buffer: BinaryHeap<OrdReading>,
    watermark: Timestamp,
    /// Timestamp of the last emitted reading (the emission frontier).
    frontier: Timestamp,
    /// Last emitted `(device, t)` per object, for duplicate detection.
    last_emitted: HashMap<ObjectId, (DeviceId, Timestamp)>,
    quarantined: Vec<(RawReading, AnomalyKind)>,
    report: SanitizeReport,
}

impl ReadingSanitizer {
    /// Creates a gate with the given config (lateness bound, policies).
    pub fn new(cfg: SanitizeConfig) -> ReadingSanitizer {
        ReadingSanitizer {
            cfg,
            known_devices: None,
            buffer: BinaryHeap::new(),
            watermark: f64::NEG_INFINITY,
            frontier: f64::NEG_INFINITY,
            last_emitted: HashMap::new(),
            quarantined: Vec::new(),
            report: SanitizeReport::default(),
        }
    }

    /// Restricts accepted devices to the given set (enables
    /// [`AnomalyKind::UnknownDevice`] detection).
    pub fn with_known_devices(mut self, devices: impl IntoIterator<Item = DeviceId>) -> Self {
        let mut known = Vec::new();
        for d in devices {
            let i = d.0 as usize;
            if i >= known.len() {
                known.resize(i + 1, false);
            }
            known[i] = true;
        }
        self.known_devices = Some(known);
        self
    }

    /// Offers one reading; clean readings ready for downstream are
    /// appended to `out` in timestamp order.
    pub fn push(&mut self, r: RawReading, out: &mut Vec<RawReading>) {
        self.report.records_in += 1;
        if !r.t.is_finite() {
            match self.cfg.policy(AnomalyKind::NonFiniteTimestamp) {
                Policy::Quarantine => {
                    self.report.count(AnomalyKind::NonFiniteTimestamp, Action::Quarantined);
                    self.quarantined.push((r, AnomalyKind::NonFiniteTimestamp));
                }
                _ => self.report.count(AnomalyKind::NonFiniteTimestamp, Action::Rejected),
            }
            return;
        }
        if let Some(known) = &self.known_devices {
            if !known.get(r.device.0 as usize).copied().unwrap_or(false) {
                match self.cfg.policy(AnomalyKind::UnknownDevice) {
                    Policy::Quarantine => {
                        self.report.count(AnomalyKind::UnknownDevice, Action::Quarantined);
                        self.quarantined.push((r, AnomalyKind::UnknownDevice));
                    }
                    _ => self.report.count(AnomalyKind::UnknownDevice, Action::Rejected),
                }
                return;
            }
        }
        if r.t < self.frontier {
            // Arrived beyond the reorder horizon.
            match self.cfg.policy(AnomalyKind::OutOfOrder) {
                Policy::Repair => {
                    let repaired = RawReading { t: self.frontier, ..r };
                    self.report.count(AnomalyKind::OutOfOrder, Action::Repaired);
                    self.emit(repaired, out);
                }
                Policy::Reject => self.report.count(AnomalyKind::OutOfOrder, Action::Rejected),
                Policy::Quarantine => {
                    self.report.count(AnomalyKind::OutOfOrder, Action::Quarantined);
                    self.quarantined.push((r, AnomalyKind::OutOfOrder));
                }
            }
            return;
        }
        self.buffer.push(OrdReading(r));
        if r.t > self.watermark {
            self.watermark = r.t;
        }
        self.drain_ready(out);
    }

    /// Offers a batch of readings, returning the clean ordered output.
    pub fn push_all(&mut self, readings: impl IntoIterator<Item = RawReading>) -> Vec<RawReading> {
        let mut out = Vec::new();
        for r in readings {
            self.push(r, &mut out);
        }
        out
    }

    /// Emits everything still buffered (end of stream), in order.
    pub fn flush(&mut self) -> Vec<RawReading> {
        let mut out = Vec::new();
        while let Some(OrdReading(r)) = self.buffer.pop() {
            self.emit(r, &mut out);
        }
        out
    }

    /// Detection and disposition counts so far.
    pub fn report(&self) -> &SanitizeReport {
        &self.report
    }

    /// Readings removed under [`Policy::Quarantine`].
    pub fn quarantined(&self) -> &[(RawReading, AnomalyKind)] {
        &self.quarantined
    }

    /// Readings currently held in the reorder buffer.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn drain_ready(&mut self, out: &mut Vec<RawReading>) {
        let horizon = self.watermark - self.cfg.allowed_lateness;
        while let Some(&OrdReading(head)) = self.buffer.peek() {
            if head.t > horizon {
                break;
            }
            self.buffer.pop();
            self.emit(head, out);
        }
    }

    fn emit(&mut self, r: RawReading, out: &mut Vec<RawReading>) {
        if let Some(&(device, t)) = self.last_emitted.get(&r.object) {
            if device == r.device && t == r.t {
                match self.cfg.policy(AnomalyKind::Duplicate) {
                    Policy::Quarantine => {
                        self.report.count(AnomalyKind::Duplicate, Action::Quarantined);
                        self.quarantined.push((r, AnomalyKind::Duplicate));
                    }
                    Policy::Repair => self.report.count(AnomalyKind::Duplicate, Action::Repaired),
                    Policy::Reject => self.report.count(AnomalyKind::Duplicate, Action::Rejected),
                }
                return;
            }
        }
        self.last_emitted.insert(r.object, (r.device, r.t));
        self.frontier = self.frontier.max(r.t);
        self.report.records_out += 1;
        out.push(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ott::ObjectTrackingTable;

    fn row(o: u32, d: u32, ts: f64, te: f64) -> OttRow {
        OttRow { object: ObjectId(o), device: DeviceId(d), ts, te }
    }

    fn reading(o: u32, d: u32, t: f64) -> RawReading {
        RawReading { object: ObjectId(o), device: DeviceId(d), t }
    }

    /// Two devices 100 m apart, one co-located pair, ids 0..3.
    struct TestOracle;
    impl DeviceOracle for TestOracle {
        fn is_known(&self, device: DeviceId) -> bool {
            device.0 < 3
        }
        fn min_travel_distance(&self, a: DeviceId, b: DeviceId) -> Option<f64> {
            if !self.is_known(a) || !self.is_known(b) {
                return None;
            }
            // Devices 0 and 1 are adjacent; device 2 is 100 m away.
            Some(if a == b || a.0 + b.0 == 1 { 0.0 } else { 100.0 })
        }
    }

    #[test]
    fn clean_rows_pass_untouched() {
        let rows = vec![row(1, 0, 0.0, 5.0), row(1, 1, 6.0, 8.0), row(2, 0, 1.0, 2.0)];
        let out = sanitize_rows(rows.clone(), &SanitizeConfig::repair_all(), Some(&TestOracle));
        assert!(out.report.is_clean(), "{}", out.report.render());
        assert_eq!(out.report.records_in, 3);
        assert_eq!(out.report.records_out, 3);
        assert!(out.repaired_objects.is_empty());
        let mut sorted = rows;
        sorted.sort_by(|a, b| a.object.cmp(&b.object).then(a.ts.total_cmp(&b.ts)));
        assert_eq!(out.rows, sorted);
    }

    /// [`TestOracle`] during an outage of device 2: readings from it look
    /// like an unknown device.
    struct OutageOracle;
    impl DeviceOracle for OutageOracle {
        fn is_known(&self, device: DeviceId) -> bool {
            device.0 < 2
        }
        fn min_travel_distance(&self, a: DeviceId, b: DeviceId) -> Option<f64> {
            TestOracle.min_travel_distance(a, b)
        }
    }

    #[test]
    fn device_outage_rows_round_trip_through_readmit() {
        let rows = vec![
            row(1, 0, 0.0, 5.0),
            row(1, 2, 6.0, 8.0),
            row(2, 2, 1.0, 2.0),
            row(2, 0, 3.0, 4.0),
        ];
        let cfg = SanitizeConfig::quarantine_all();

        // During the outage device 2's rows are quarantined, not lost.
        let first = sanitize_rows(rows.clone(), &cfg, Some(&OutageOracle));
        assert_eq!(first.report.quarantined(AnomalyKind::UnknownDevice), 2);
        assert_eq!(first.rows.len(), 2);
        assert_eq!(first.quarantined.len(), 2);
        assert_eq!(first.report.readmitted, 0);

        // The device comes back: replaying the quarantine restores the
        // exact table a from-scratch pass over healthy data produces.
        let q: Vec<OttRow> = first.quarantined.iter().map(|&(r, _)| r).collect();
        let second = readmit_rows(first.rows, q, &cfg, Some(&TestOracle));
        assert_eq!(second.report.readmitted, 2);
        assert!(second.report.is_clean(), "{}", second.report.render());
        assert!(second.quarantined.is_empty());
        let scratch = sanitize_rows(rows, &cfg, Some(&TestOracle));
        assert_eq!(second.rows, scratch.rows);
        assert!(second.report.render().contains("2 readmitted"));
    }

    #[test]
    fn readmit_keeps_still_bad_rows_out() {
        let clean = vec![row(1, 0, 0.0, 5.0)];
        // One row is admissible now; the other is broken beyond any oracle
        // change and must stay out.
        let quarantined = vec![row(1, 1, 6.0, 8.0), row(2, 0, f64::NAN, 3.0)];
        let cfg = SanitizeConfig::quarantine_all();
        let out = readmit_rows(clean, quarantined, &cfg, Some(&TestOracle));
        assert_eq!(out.report.readmitted, 1);
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].1, AnomalyKind::NonFiniteTimestamp);
    }

    #[test]
    fn anomaly_kind_names_round_trip() {
        for kind in AnomalyKind::ALL {
            assert_eq!(AnomalyKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(AnomalyKind::from_name("bogus"), None);
    }

    #[test]
    fn merged_reports_accumulate_readmissions() {
        let mut a = SanitizeReport { readmitted: 2, ..SanitizeReport::default() };
        let b = SanitizeReport { readmitted: 3, ..SanitizeReport::default() };
        a.merge(&b);
        assert_eq!(a.readmitted, 5);
    }

    #[test]
    fn non_finite_rows_are_dropped_even_under_repair() {
        let rows = vec![row(1, 0, 0.0, 5.0), row(1, 0, f64::NAN, 6.0), row(1, 0, 7.0, f64::NAN)];
        let out = sanitize_rows(rows, &SanitizeConfig::repair_all(), None);
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.report.detected(AnomalyKind::NonFiniteTimestamp), 2);
        assert_eq!(out.report.rejected(AnomalyKind::NonFiniteTimestamp), 2);
        ObjectTrackingTable::from_rows(out.rows).unwrap();
    }

    #[test]
    fn reversed_endpoints_are_swapped_under_repair() {
        let out = sanitize_rows(vec![row(1, 0, 5.0, 2.0)], &SanitizeConfig::repair_all(), None);
        assert_eq!(out.rows, vec![row(1, 0, 2.0, 5.0)]);
        assert_eq!(out.report.repaired(AnomalyKind::OutOfOrder), 1);
        assert_eq!(out.repaired_objects, vec![ObjectId(1)]);
    }

    #[test]
    fn duplicates_keep_one_copy() {
        let rows = vec![row(1, 0, 0.0, 5.0), row(1, 0, 0.0, 5.0), row(1, 0, 0.0, 5.0)];
        let out = sanitize_rows(rows, &SanitizeConfig::repair_all(), None);
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.report.repaired(AnomalyKind::Duplicate), 2);
    }

    #[test]
    fn overlap_is_clamped_and_contained_rows_dropped() {
        let rows = vec![
            row(1, 0, 0.0, 10.0),
            row(1, 1, 5.0, 15.0), // overlaps → clamped to [10, 15]
            row(1, 0, 11.0, 12.0), // swallowed by the clamped row? starts
                                  // at 11 < 15 and ends 12 ≤ 15 → dropped
        ];
        let out = sanitize_rows(rows, &SanitizeConfig::repair_all(), None);
        assert_eq!(out.rows, vec![row(1, 0, 0.0, 10.0), row(1, 1, 10.0, 15.0)]);
        assert_eq!(out.report.repaired(AnomalyKind::OverlappingRun), 2);
        ObjectTrackingTable::from_rows(out.rows).unwrap();
    }

    #[test]
    fn overlap_reject_drops_the_later_row() {
        let rows = vec![row(1, 0, 0.0, 10.0), row(1, 1, 5.0, 15.0)];
        let cfg =
            SanitizeConfig::repair_all().with_policy(AnomalyKind::OverlappingRun, Policy::Reject);
        let out = sanitize_rows(rows, &cfg, None);
        assert_eq!(out.rows, vec![row(1, 0, 0.0, 10.0)]);
        assert_eq!(out.report.rejected(AnomalyKind::OverlappingRun), 1);
    }

    #[test]
    fn quarantine_stores_the_offender() {
        let rows = vec![row(1, 0, 0.0, 10.0), row(1, 1, 5.0, 15.0)];
        let cfg = SanitizeConfig::quarantine_all();
        let out = sanitize_rows(rows, &cfg, None);
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].1, AnomalyKind::OverlappingRun);
    }

    #[test]
    fn unknown_devices_are_dropped() {
        let rows = vec![row(1, 0, 0.0, 5.0), row(1, 9, 6.0, 7.0)];
        let out = sanitize_rows(rows, &SanitizeConfig::repair_all(), Some(&TestOracle));
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.report.detected(AnomalyKind::UnknownDevice), 1);
    }

    #[test]
    fn infeasible_transition_splits_the_chain() {
        // Device 0 → device 2 is 100 m; with vmax 1.0 and a 1 s gap the
        // transition is a teleport. The tail continues as a new object.
        let rows = vec![row(1, 0, 0.0, 10.0), row(1, 2, 11.0, 20.0), row(1, 2, 21.0, 30.0)];
        let cfg = SanitizeConfig::repair_all().with_vmax(1.0);
        let out = sanitize_rows(rows, &cfg, Some(&TestOracle));
        assert_eq!(out.report.repaired(AnomalyKind::InfeasibleTransition), 1);
        assert_eq!(out.rows.len(), 3);
        assert_eq!(out.rows[0].object, ObjectId(1));
        // The split tail gets a fresh synthetic id (> max original).
        assert_eq!(out.rows[1].object, ObjectId(2));
        assert_eq!(out.rows[2].object, ObjectId(2));
        assert!(out.repaired_objects.contains(&ObjectId(1)));
        assert!(out.repaired_objects.contains(&ObjectId(2)));
        // Device 2 → device 2 within the tail is feasible: no second split.
        ObjectTrackingTable::from_rows(out.rows).unwrap();
    }

    #[test]
    fn feasible_transitions_are_not_flagged() {
        // 100 m at vmax 1.0 with a 200 s gap is fine.
        let rows = vec![row(1, 0, 0.0, 10.0), row(1, 2, 210.0, 220.0)];
        let cfg = SanitizeConfig::repair_all().with_vmax(1.0);
        let out = sanitize_rows(rows, &cfg, Some(&TestOracle));
        assert!(out.report.is_clean());
    }

    #[test]
    fn infeasible_reject_drops_the_teleported_row() {
        let rows = vec![row(1, 0, 0.0, 10.0), row(1, 2, 11.0, 20.0)];
        let cfg = SanitizeConfig::reject_all().with_vmax(1.0);
        let out = sanitize_rows(rows, &cfg, Some(&TestOracle));
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.report.rejected(AnomalyKind::InfeasibleTransition), 1);
    }

    #[test]
    fn report_renders_and_merges() {
        let rows = vec![row(1, 0, 0.0, 10.0), row(1, 0, 0.0, 10.0), row(1, 1, 5.0, 15.0)];
        let out = sanitize_rows(rows, &SanitizeConfig::repair_all(), None);
        let line = out.report.render();
        assert!(line.contains("3 in"), "{line}");
        assert!(line.contains("duplicate: 1"), "{line}");
        assert!(line.contains("overlapping_run: 1"), "{line}");
        let mut merged = SanitizeReport::default();
        merged.merge(&out.report);
        merged.merge(&out.report);
        assert_eq!(merged.total_detected(), 2 * out.report.total_detected());
        assert_eq!(merged.records_in, 6);
    }

    #[test]
    fn sanitized_output_always_builds_a_table() {
        // A pathological mix: every anomaly kind at once.
        let rows = vec![
            row(1, 0, 0.0, 5.0),
            row(1, 0, 0.0, 5.0),           // duplicate
            row(1, 1, 3.0, 8.0),           // overlap
            row(1, 2, 8.5, 9.0),           // teleport (100 m in 0.5 s)
            row(2, 9, 0.0, 1.0),           // unknown device
            row(2, 0, 5.0, 2.0),           // reversed
            row(3, 0, f64::INFINITY, 1.0), // non-finite
        ];
        let cfg = SanitizeConfig::repair_all().with_vmax(1.0);
        let out = sanitize_rows(rows, &cfg, Some(&TestOracle));
        assert!(out.report.total_detected() >= 5, "{}", out.report.render());
        ObjectTrackingTable::from_rows(out.rows).unwrap();
    }

    #[test]
    fn reorder_buffer_restores_order_within_lateness() {
        let mut gate = ReadingSanitizer::new(SanitizeConfig::repair_all().with_lateness(5.0));
        let shuffled =
            vec![reading(1, 0, 2.0), reading(1, 0, 0.0), reading(1, 0, 1.0), reading(1, 0, 3.0)];
        let mut out = gate.push_all(shuffled);
        out.extend(gate.flush());
        let times: Vec<f64> = out.iter().map(|r| r.t).collect();
        assert_eq!(times, vec![0.0, 1.0, 2.0, 3.0]);
        assert!(gate.report().is_clean());
    }

    #[test]
    fn late_reading_beyond_horizon_is_counted() {
        let mut gate = ReadingSanitizer::new(SanitizeConfig::reject_all().with_lateness(1.0));
        let mut out = gate.push_all(vec![
            reading(1, 0, 0.0),
            reading(1, 0, 10.0), // watermark 10, horizon 9 → t=0 emitted
            reading(1, 0, 2.0),  // behind the frontier? frontier is 0 →
            // 2 > 0, buffered fine
            reading(1, 0, 20.0), // horizon 19 → 2 and 10 emitted
            reading(1, 0, 5.0),  // behind frontier 10 → out of order
        ]);
        out.extend(gate.flush());
        assert_eq!(gate.report().detected(AnomalyKind::OutOfOrder), 1);
        assert_eq!(gate.report().rejected(AnomalyKind::OutOfOrder), 1);
        let times: Vec<f64> = out.iter().map(|r| r.t).collect();
        assert_eq!(times, vec![0.0, 2.0, 10.0, 20.0]);
    }

    #[test]
    fn late_reading_repair_clamps_to_frontier() {
        let mut gate = ReadingSanitizer::new(SanitizeConfig::repair_all().with_lateness(0.0));
        let mut out = Vec::new();
        gate.push(reading(1, 0, 10.0), &mut out);
        gate.push(reading(1, 1, 4.0), &mut out); // clamped to t=10
        out.extend(gate.flush());
        assert_eq!(gate.report().repaired(AnomalyKind::OutOfOrder), 1);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].t, 10.0);
    }

    #[test]
    fn gate_drops_duplicates_and_non_finite() {
        let mut gate = ReadingSanitizer::new(SanitizeConfig::repair_all());
        let mut out = gate.push_all(vec![
            reading(1, 0, 1.0),
            reading(1, 0, 1.0), // duplicate
            reading(1, 0, f64::NAN),
            reading(1, 0, 2.0),
        ]);
        out.extend(gate.flush());
        assert_eq!(out.len(), 2);
        assert_eq!(gate.report().detected(AnomalyKind::Duplicate), 1);
        assert_eq!(gate.report().detected(AnomalyKind::NonFiniteTimestamp), 1);
    }

    #[test]
    fn gate_filters_unknown_devices() {
        let mut gate = ReadingSanitizer::new(SanitizeConfig::repair_all())
            .with_known_devices([DeviceId(0), DeviceId(1)]);
        let mut out = gate.push_all(vec![reading(1, 0, 1.0), reading(1, 7, 2.0)]);
        out.extend(gate.flush());
        assert_eq!(out.len(), 1);
        assert_eq!(gate.report().detected(AnomalyKind::UnknownDevice), 1);
    }

    #[test]
    fn gate_is_deterministic_on_ties() {
        let batch = vec![reading(2, 1, 1.0), reading(1, 0, 1.0), reading(1, 1, 0.5)];
        let run = |batch: Vec<RawReading>| {
            let mut gate = ReadingSanitizer::new(SanitizeConfig::repair_all().with_lateness(2.0));
            let mut out = gate.push_all(batch);
            out.extend(gate.flush());
            out
        };
        assert_eq!(run(batch.clone()), run(batch));
    }
}
