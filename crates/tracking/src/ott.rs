//! The Object Tracking Table (OTT) and object state resolution.

use crate::Timestamp;
use inflow_indoor::DeviceId;
use std::collections::HashMap;

/// Identifier of a tracked moving object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Identifier of a tracking record within an [`ObjectTrackingTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u32);

impl RecordId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rd{}", self.0)
    }
}

/// An OTT row before record ids are assigned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OttRow {
    pub object: ObjectId,
    pub device: DeviceId,
    pub ts: Timestamp,
    pub te: Timestamp,
}

/// A merged tracking record `⟨ID, objectID, deviceID, t_s, t_e⟩`
/// (paper Table 2): the object was continuously seen by `device` from
/// `ts` to `te`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingRecord {
    pub id: RecordId,
    pub object: ObjectId,
    pub device: DeviceId,
    pub ts: Timestamp,
    pub te: Timestamp,
}

/// Errors raised when assembling an [`ObjectTrackingTable`].
#[derive(Debug, Clone, PartialEq)]
pub enum OttError {
    /// A row had `te < ts` or a non-finite timestamp.
    InvalidInterval { object: ObjectId, ts: Timestamp, te: Timestamp },
    /// Two records of the same object overlap in time.
    OverlappingRecords { object: ObjectId, first_end: Timestamp, second_start: Timestamp },
}

impl std::fmt::Display for OttError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OttError::InvalidInterval { object, ts, te } => {
                write!(f, "record for {object} has invalid interval [{ts}, {te}]")
            }
            OttError::OverlappingRecords { object, first_end, second_start } => write!(
                f,
                "records for {object} overlap: previous ends at {first_end}, next starts at {second_start}"
            ),
        }
    }
}

impl std::error::Error for OttError {}

/// The historical Object Tracking Table: all merged tracking records,
/// with per-object chains ordered by time.
#[derive(Debug, Default)]
pub struct ObjectTrackingTable {
    records: Vec<TrackingRecord>,
    /// Per object: record ids in chronological order.
    by_object: HashMap<ObjectId, Vec<RecordId>>,
    /// `chain_pos[record] = (index within its object's chain)`.
    chain_pos: Vec<u32>,
}

impl ObjectTrackingTable {
    /// Builds the table from unordered rows, assigning record ids in
    /// `(object, ts)` order. Rejects invalid intervals and per-object
    /// overlaps.
    ///
    /// Note on overlapping detection ranges: the paper assumes
    /// non-overlapping ranges (Remark, §3.3), under which an object is seen
    /// by at most one device at a time, making per-object records disjoint
    /// in time. This builder enforces that invariant.
    pub fn from_rows(mut rows: Vec<OttRow>) -> Result<ObjectTrackingTable, OttError> {
        for row in &rows {
            if !(row.ts.is_finite() && row.te.is_finite()) || row.te < row.ts {
                return Err(OttError::InvalidInterval {
                    object: row.object,
                    ts: row.ts,
                    te: row.te,
                });
            }
        }
        rows.sort_by(|a, b| a.object.cmp(&b.object).then_with(|| a.ts.total_cmp(&b.ts)));
        let mut records: Vec<TrackingRecord> = Vec::with_capacity(rows.len());
        let mut by_object: HashMap<ObjectId, Vec<RecordId>> = HashMap::new();
        let mut chain_pos = Vec::with_capacity(rows.len());
        for row in rows {
            let id = RecordId(records.len() as u32);
            let chain = by_object.entry(row.object).or_default();
            if let Some(&prev) = chain.last() {
                let prev_te = records[prev.index()].te;
                if row.ts < prev_te {
                    return Err(OttError::OverlappingRecords {
                        object: row.object,
                        first_end: prev_te,
                        second_start: row.ts,
                    });
                }
            }
            chain_pos.push(chain.len() as u32);
            chain.push(id);
            records.push(TrackingRecord {
                id,
                object: row.object,
                device: row.device,
                ts: row.ts,
                te: row.te,
            });
        }
        Ok(ObjectTrackingTable { records, by_object, chain_pos })
    }

    /// Number of tracking records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, indexed by [`RecordId`].
    pub fn records(&self) -> &[TrackingRecord] {
        &self.records
    }

    /// A record by id.
    pub fn record(&self, id: RecordId) -> &TrackingRecord {
        &self.records[id.index()]
    }

    /// The distinct tracked objects (arbitrary order).
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.by_object.keys().copied()
    }

    /// Number of distinct objects.
    pub fn object_count(&self) -> usize {
        self.by_object.len()
    }

    /// The chronologically ordered record chain of `object`.
    pub fn object_records(&self, object: ObjectId) -> &[RecordId] {
        self.by_object.get(&object).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The position of `id` within its object's chronologically ordered
    /// record chain.
    pub fn chain_position(&self, id: RecordId) -> usize {
        self.chain_pos[id.index()] as usize
    }

    /// The record immediately before `id` in its object's chain
    /// (the paper's `rd_pre` relative to a covered record).
    pub fn predecessor(&self, id: RecordId) -> Option<RecordId> {
        let pos = self.chain_pos[id.index()] as usize;
        if pos == 0 {
            None
        } else {
            let chain = &self.by_object[&self.records[id.index()].object];
            Some(chain[pos - 1])
        }
    }

    /// The record immediately after `id` in its object's chain.
    pub fn successor(&self, id: RecordId) -> Option<RecordId> {
        let chain = &self.by_object[&self.records[id.index()].object];
        let pos = self.chain_pos[id.index()] as usize;
        chain.get(pos + 1).copied()
    }

    /// The tracking state of `object` at time `t` (paper §3.1.1):
    /// active when a record covers `t`, inactive between two records, and
    /// `None` outside the object's tracked lifetime.
    pub fn state_at(&self, object: ObjectId, t: Timestamp) -> Option<ObjectState> {
        let chain = self.object_records(object);
        if chain.is_empty() {
            return None;
        }
        // Binary search for the first record with ts > t.
        let idx = chain.partition_point(|&rid| self.records[rid.index()].ts <= t);
        if idx == 0 {
            // Before the first detection: not yet tracked.
            return None;
        }
        let cur = chain[idx - 1];
        let rec = &self.records[cur.index()];
        if t <= rec.te {
            return Some(ObjectState::Active { cov: cur, pre: self.predecessor(cur) });
        }
        // t falls after rec; inactive if a successor exists.
        chain.get(idx).map(|&suc| ObjectState::Inactive { pre: cur, suc })
    }
}

/// The tracking state of an object at a time point (paper §3.1.1,
/// Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectState {
    /// A record `cov` covers `t`; `pre` is its predecessor (absent for the
    /// object's first record).
    Active { cov: RecordId, pre: Option<RecordId> },
    /// No record covers `t`: the object is between records `pre` and `suc`
    /// with `pre.t_e < t < suc.t_s`.
    Inactive { pre: RecordId, suc: RecordId },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(i: u32) -> DeviceId {
        DeviceId(i)
    }

    fn row(o: u32, d: u32, ts: f64, te: f64) -> OttRow {
        OttRow { object: ObjectId(o), device: dev(d), ts, te }
    }

    /// Re-creation of the paper's Table 2 / Figure 1 example: object `o1`
    /// seen by dev1, dev2, dev3 in turn.
    fn table2_ott() -> ObjectTrackingTable {
        ObjectTrackingTable::from_rows(vec![
            row(1, 1, 1.0, 2.0),  // rd1
            row(1, 2, 3.0, 4.0),  // rd2
            row(1, 3, 5.0, 6.0),  // rd3
            row(2, 1, 7.0, 8.0),  // rd4 (other object)
            row(2, 4, 9.0, 10.0), // rd5
        ])
        .unwrap()
    }

    #[test]
    fn records_are_ordered_per_object() {
        let ott = table2_ott();
        assert_eq!(ott.len(), 5);
        assert_eq!(ott.object_count(), 2);
        let chain = ott.object_records(ObjectId(1));
        assert_eq!(chain.len(), 3);
        let times: Vec<f64> = chain.iter().map(|&r| ott.record(r).ts).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn predecessor_and_successor_navigation() {
        let ott = table2_ott();
        let chain = ott.object_records(ObjectId(1)).to_vec();
        assert_eq!(ott.predecessor(chain[0]), None);
        assert_eq!(ott.predecessor(chain[1]), Some(chain[0]));
        assert_eq!(ott.successor(chain[1]), Some(chain[2]));
        assert_eq!(ott.successor(chain[2]), None);
    }

    #[test]
    fn active_state_when_covered() {
        // Figure 1: the object is in an active state at t = 5 (covered by
        // rd3, predecessor rd2).
        let ott = table2_ott();
        let chain = ott.object_records(ObjectId(1)).to_vec();
        match ott.state_at(ObjectId(1), 5.5) {
            Some(ObjectState::Active { cov, pre }) => {
                assert_eq!(cov, chain[2]);
                assert_eq!(pre, Some(chain[1]));
            }
            other => panic!("expected active, got {other:?}"),
        }
        // Boundary instants count as active.
        assert!(matches!(ott.state_at(ObjectId(1), 1.0), Some(ObjectState::Active { .. })));
        assert!(matches!(ott.state_at(ObjectId(1), 2.0), Some(ObjectState::Active { .. })));
    }

    #[test]
    fn inactive_state_between_records() {
        // Figure 1: inactive between rd2 (ends t4) and rd3 (starts t5).
        let ott = table2_ott();
        let chain = ott.object_records(ObjectId(1)).to_vec();
        match ott.state_at(ObjectId(1), 4.5) {
            Some(ObjectState::Inactive { pre, suc }) => {
                assert_eq!(pre, chain[1]);
                assert_eq!(suc, chain[2]);
            }
            other => panic!("expected inactive, got {other:?}"),
        }
    }

    #[test]
    fn outside_lifetime_is_none() {
        let ott = table2_ott();
        assert_eq!(ott.state_at(ObjectId(1), 0.5), None); // before first
        assert_eq!(ott.state_at(ObjectId(1), 6.5), None); // after last
        assert_eq!(ott.state_at(ObjectId(9), 3.0), None); // unknown object
    }

    #[test]
    fn active_for_first_record_has_no_predecessor() {
        let ott = table2_ott();
        match ott.state_at(ObjectId(1), 1.5) {
            Some(ObjectState::Active { pre, .. }) => assert_eq!(pre, None),
            other => panic!("expected active, got {other:?}"),
        }
    }

    #[test]
    fn invalid_interval_rejected() {
        let err = ObjectTrackingTable::from_rows(vec![row(1, 1, 5.0, 4.0)]).unwrap_err();
        assert!(matches!(err, OttError::InvalidInterval { .. }));
        let err = ObjectTrackingTable::from_rows(vec![OttRow {
            object: ObjectId(1),
            device: dev(1),
            ts: f64::NAN,
            te: 1.0,
        }])
        .unwrap_err();
        assert!(matches!(err, OttError::InvalidInterval { .. }));
    }

    #[test]
    fn overlapping_records_rejected() {
        let err = ObjectTrackingTable::from_rows(vec![row(1, 1, 1.0, 3.0), row(1, 2, 2.0, 4.0)])
            .unwrap_err();
        assert!(matches!(err, OttError::OverlappingRecords { .. }));
    }

    #[test]
    fn touching_records_allowed() {
        // te == next ts is legal (instantaneous hand-over between readers).
        let ott =
            ObjectTrackingTable::from_rows(vec![row(1, 1, 1.0, 3.0), row(1, 2, 3.0, 4.0)]).unwrap();
        assert_eq!(ott.len(), 2);
        // At the instant of hand-over the object is active (the later
        // record covers it deterministically).
        assert!(matches!(ott.state_at(ObjectId(1), 3.0), Some(ObjectState::Active { .. })));
    }

    #[test]
    fn rows_out_of_order_are_sorted() {
        let ott =
            ObjectTrackingTable::from_rows(vec![row(1, 2, 3.0, 4.0), row(1, 1, 1.0, 2.0)]).unwrap();
        let chain = ott.object_records(ObjectId(1));
        assert_eq!(ott.record(chain[0]).device, dev(1));
        assert_eq!(ott.record(chain[1]).device, dev(2));
    }

    #[test]
    fn zero_length_record_is_valid() {
        // A single raw reading yields ts == te.
        let ott = ObjectTrackingTable::from_rows(vec![row(1, 1, 2.0, 2.0)]).unwrap();
        assert!(matches!(ott.state_at(ObjectId(1), 2.0), Some(ObjectState::Active { .. })));
    }
}
