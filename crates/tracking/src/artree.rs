//! The AR-tree: an augmented temporal index over the OTT (paper §4.1).
//!
//! Every tracking record `rd_c` is indexed by a leaf entry
//! `(t1, t2, Ptr_p, Ptr_c)` where `(t1, t2] = (rd_p.t_e, rd_c.t_e]` is the
//! *augmented tracking time interval* (`rd_p` being the object's previous
//! record) and the two pointers reference the predecessor and current
//! records. For an object's first record the interval is the closed
//! `[rd_c.t_s, rd_c.t_e]` — before its first detection an object is not
//! part of the tracked population.
//!
//! A point query at `t` returns, per object, the unique leaf entry whose
//! interval covers `t`; comparing `t` with the current record's `[t_s,
//! t_e]` then resolves the active/inactive state and the
//! `rd_pre` / `rd_cov` / `rd_suc` records exactly as §4.1 describes. A
//! range query returns all entries overlapping the query interval, from
//! which the interval algorithms assemble per-object record chains
//! (Table 3).

use crate::ott::{ObjectId, ObjectState, ObjectTrackingTable, RecordId};
use crate::Timestamp;

/// Fan-out of the static AR-tree nodes.
const FANOUT: usize = 32;

/// A leaf entry of the AR-tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArTreeEntry {
    /// Start of the augmented interval (`rd_pre.t_e`, or `rd_cov.t_s` for
    /// an object's first record).
    pub t1: Timestamp,
    /// End of the augmented interval (`rd_cov.t_e`).
    pub t2: Timestamp,
    /// Whether `t1` itself belongs to the interval (true only for an
    /// object's first record).
    pub closed_start: bool,
    /// The predecessor record (`Ptr_p`); `None` for the first record.
    pub pred: Option<RecordId>,
    /// The current record (`Ptr_c`).
    pub cur: RecordId,
    /// The tracked object, denormalized for convenient grouping.
    pub object: ObjectId,
}

impl ArTreeEntry {
    /// Whether the augmented interval covers time `t`.
    pub fn covers(&self, t: Timestamp) -> bool {
        let lower_ok = if self.closed_start { t >= self.t1 } else { t > self.t1 };
        lower_ok && t <= self.t2
    }

    /// Whether the augmented interval overlaps `[qs, qe]`.
    pub fn overlaps(&self, qs: Timestamp, qe: Timestamp) -> bool {
        let lower_ok = if self.closed_start { self.t1 <= qe } else { self.t1 < qe };
        lower_ok && self.t2 >= qs
    }
}

#[derive(Debug, Clone, Copy)]
struct ArNode {
    tmin: Timestamp,
    tmax: Timestamp,
    /// Child index range: into `entries` for leaves, into `nodes` for
    /// internal nodes.
    first: u32,
    count: u32,
    leaf: bool,
}

/// A structural defect found while reloading a flat-serialized tree
/// ([`ArTree::from_flat_bytes`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatTreeError {
    /// What invariant the blob violated.
    pub reason: String,
}

impl std::fmt::Display for FlatTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid flat AR-tree: {}", self.reason)
    }
}

impl std::error::Error for FlatTreeError {}

/// The static AR-tree over an [`ObjectTrackingTable`].
#[derive(Debug)]
pub struct ArTree {
    entries: Vec<ArTreeEntry>,
    nodes: Vec<ArNode>,
    root: usize,
}

impl ArTree {
    /// Builds the AR-tree for all records of `ott`.
    pub fn build(ott: &ObjectTrackingTable) -> ArTree {
        let mut entries: Vec<ArTreeEntry> = Vec::with_capacity(ott.len());
        for obj in ott.objects() {
            for &rid in ott.object_records(obj) {
                let rec = ott.record(rid);
                let pred = ott.predecessor(rid);
                let (t1, closed_start) = match pred {
                    Some(p) => (ott.record(p).te, false),
                    None => (rec.ts, true),
                };
                entries.push(ArTreeEntry {
                    t1,
                    t2: rec.te,
                    closed_start,
                    pred,
                    cur: rid,
                    object: obj,
                });
            }
        }
        // Total order (t1, object, record): object iteration above is
        // hash-ordered, and a deterministic entry array is what makes two
        // builds over equal OTTs byte-identical when serialized.
        entries.sort_by(|a, b| {
            a.t1.total_cmp(&b.t1)
                .then_with(|| a.object.cmp(&b.object))
                .then_with(|| a.cur.index().cmp(&b.cur.index()))
        });

        let mut nodes: Vec<ArNode> = Vec::new();
        if entries.is_empty() {
            nodes.push(ArNode { tmin: 0.0, tmax: -1.0, first: 0, count: 0, leaf: true });
            return ArTree { entries, nodes, root: 0 };
        }
        // Leaf level.
        let mut level_start = 0usize;
        for (i, chunk) in entries.chunks(FANOUT).enumerate() {
            let tmin = chunk.iter().map(|e| e.t1).fold(f64::INFINITY, f64::min);
            let tmax = chunk.iter().map(|e| e.t2).fold(f64::NEG_INFINITY, f64::max);
            nodes.push(ArNode {
                tmin,
                tmax,
                first: (i * FANOUT) as u32,
                count: chunk.len() as u32,
                leaf: true,
            });
        }
        // Internal levels.
        let mut level_len = nodes.len();
        while level_len > 1 {
            let next_start = nodes.len();
            let mut i = level_start;
            while i < level_start + level_len {
                let end = (i + FANOUT).min(level_start + level_len);
                let tmin = nodes[i..end].iter().map(|n| n.tmin).fold(f64::INFINITY, f64::min);
                let tmax = nodes[i..end].iter().map(|n| n.tmax).fold(f64::NEG_INFINITY, f64::max);
                nodes.push(ArNode {
                    tmin,
                    tmax,
                    first: i as u32,
                    count: (end - i) as u32,
                    leaf: false,
                });
                i = end;
            }
            level_start = next_start;
            level_len = nodes.len() - next_start;
        }
        let root = nodes.len() - 1;
        ArTree { entries, nodes, root }
    }

    /// Number of indexed entries (= OTT records).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All leaf entries in `t1` order.
    pub fn entries(&self) -> &[ArTreeEntry] {
        &self.entries
    }

    /// All leaf entries whose augmented interval covers `t` — at most one
    /// per object (Algorithm 1, line 3).
    pub fn point_query(&self, t: Timestamp) -> Vec<&ArTreeEntry> {
        let mut out = Vec::new();
        if self.entries.is_empty() {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            let node = self.nodes[idx];
            if t < node.tmin || t > node.tmax {
                // Closed-start entries make the lower bound inclusive, so
                // `t == tmin` must still be explored (handled by `<`).
                continue;
            }
            if node.leaf {
                for e in &self.entries[node.first as usize..(node.first + node.count) as usize] {
                    if e.covers(t) {
                        out.push(e);
                    }
                }
            } else {
                stack.extend(node.first as usize..(node.first + node.count) as usize);
            }
        }
        out
    }

    /// All leaf entries whose augmented interval overlaps `[qs, qe]`
    /// (Algorithm 4, line 3).
    pub fn range_query(&self, qs: Timestamp, qe: Timestamp) -> Vec<&ArTreeEntry> {
        let mut out = Vec::new();
        if self.entries.is_empty() || qe < qs {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            let node = self.nodes[idx];
            if node.tmin > qe || node.tmax < qs {
                continue;
            }
            if node.leaf {
                for e in &self.entries[node.first as usize..(node.first + node.count) as usize] {
                    if e.overlaps(qs, qe) {
                        out.push(e);
                    }
                }
            } else {
                stack.extend(node.first as usize..(node.first + node.count) as usize);
            }
        }
        out
    }

    /// Serializes the tree into a flat, position-independent byte layout:
    /// a fixed header (`ott_len`, entry count, node count, root index)
    /// followed by the entry array and the node array, both fixed-width
    /// little-endian records. Reloading ([`ArTree::from_flat_bytes`]) is a
    /// single bounds-check pass — no sort, no node construction — which
    /// is what makes snapshot reload cheap compared to a §4.1 rebuild.
    ///
    /// `ott_len` is the record count of the [`ObjectTrackingTable`] this
    /// tree indexes; it is stored so that a reloaded tree can be validated
    /// against the table it is paired with.
    pub fn to_flat_bytes(&self, ott_len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.entries.len() * 29 + self.nodes.len() * 25);
        out.extend_from_slice(&(ott_len as u32).to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.root as u32).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.t1.to_le_bytes());
            out.extend_from_slice(&e.t2.to_le_bytes());
            out.push(e.closed_start as u8);
            out.extend_from_slice(&e.pred.map_or(u32::MAX, |p| p.0).to_le_bytes());
            out.extend_from_slice(&e.cur.0.to_le_bytes());
            out.extend_from_slice(&e.object.0.to_le_bytes());
        }
        for n in &self.nodes {
            out.extend_from_slice(&n.tmin.to_le_bytes());
            out.extend_from_slice(&n.tmax.to_le_bytes());
            out.extend_from_slice(&n.first.to_le_bytes());
            out.extend_from_slice(&n.count.to_le_bytes());
            out.push(n.leaf as u8);
        }
        out
    }

    /// Reloads a tree serialized by [`ArTree::to_flat_bytes`], returning
    /// it together with the stored `ott_len`. Every structural invariant
    /// the query paths rely on is re-validated — index ranges, finite and
    /// ordered interval endpoints, child ranges that terminate — so a
    /// corrupted or truncated blob yields a typed error, never a panic or
    /// a silently wrong tree.
    pub fn from_flat_bytes(bytes: &[u8]) -> Result<(ArTree, usize), FlatTreeError> {
        let fail = |reason: &str| Err(FlatTreeError { reason: reason.to_string() });
        if bytes.len() < 16 {
            return fail("blob shorter than header");
        }
        let word = |i: usize| {
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[i * 4..i * 4 + 4]);
            u32::from_le_bytes(b)
        };
        let (ott_len, entry_count, node_count, root) =
            (word(0) as usize, word(1) as usize, word(2) as usize, word(3) as usize);
        let expect = 16usize
            .checked_add(
                entry_count
                    .checked_mul(29)
                    .ok_or_else(|| FlatTreeError { reason: "entry count overflows".into() })?,
            )
            .and_then(|n| n.checked_add(node_count.checked_mul(25)?))
            .ok_or_else(|| FlatTreeError { reason: "size overflows".into() })?;
        if bytes.len() != expect {
            return fail("blob length does not match header counts");
        }
        if node_count == 0 || root != node_count - 1 {
            return fail("root must be the last node");
        }
        if entry_count == 0 && node_count != 1 {
            return fail("empty tree must have exactly the sentinel node");
        }

        let f64_at = |p: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[p..p + 8]);
            f64::from_le_bytes(b)
        };
        let u32_at = |p: usize| {
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[p..p + 4]);
            u32::from_le_bytes(b)
        };
        let mut entries = Vec::with_capacity(entry_count);
        let mut p = 16;
        let mut prev_t1 = f64::NEG_INFINITY;
        for _ in 0..entry_count {
            let (t1, t2) = (f64_at(p), f64_at(p + 8));
            let closed_start = match bytes[p + 16] {
                0 => false,
                1 => true,
                _ => return fail("bad closed_start flag"),
            };
            let pred_raw = u32_at(p + 17);
            let cur = u32_at(p + 21);
            let object = u32_at(p + 25);
            p += 29;
            if !(t1.is_finite() && t2.is_finite()) || t2 < t1 {
                return fail("entry interval not finite and ordered");
            }
            if t1 < prev_t1 {
                return fail("entries not sorted by t1");
            }
            prev_t1 = t1;
            if cur as usize >= ott_len || (pred_raw != u32::MAX && pred_raw as usize >= ott_len) {
                return fail("entry record pointer out of range");
            }
            entries.push(ArTreeEntry {
                t1,
                t2,
                closed_start,
                pred: (pred_raw != u32::MAX).then_some(RecordId(pred_raw)),
                cur: RecordId(cur),
                object: ObjectId(object),
            });
        }
        let mut nodes = Vec::with_capacity(node_count);
        for idx in 0..node_count {
            let (tmin, tmax) = (f64_at(p), f64_at(p + 8));
            let (first, count) = (u32_at(p + 16), u32_at(p + 20));
            let leaf = match bytes[p + 24] {
                0 => false,
                1 => true,
                _ => return fail("bad leaf flag"),
            };
            p += 25;
            if tmin.is_nan() || tmax.is_nan() {
                return fail("node bounds are NaN");
            }
            let end = (first as usize).checked_add(count as usize);
            let in_range = match (leaf, end) {
                (true, Some(end)) => end <= entry_count,
                // Children of an internal node live strictly before it in
                // the array (bottom-up construction), which also
                // guarantees traversal terminates.
                (false, Some(end)) => count > 0 && end <= idx,
                (_, None) => false,
            };
            if !in_range {
                return fail("node child range out of bounds");
            }
            nodes.push(ArNode { tmin, tmax, first, count, leaf });
        }
        Ok((ArTree { entries, nodes, root }, ott_len))
    }

    /// Resolves the object state encoded by a leaf entry at time `t`
    /// (§4.1): active when the current record covers `t`, inactive when
    /// `t` falls in the gap after the predecessor.
    pub fn resolve_state(
        ott: &ObjectTrackingTable,
        entry: &ArTreeEntry,
        t: Timestamp,
    ) -> Option<ObjectState> {
        let cur = ott.record(entry.cur);
        if t >= cur.ts && t <= cur.te {
            return Some(ObjectState::Active { cov: entry.cur, pre: entry.pred });
        }
        let pre = entry.pred?;
        let pre_rec = ott.record(pre);
        if t > pre_rec.te && t < cur.ts {
            return Some(ObjectState::Inactive { pre, suc: entry.cur });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ott::OttRow;
    use inflow_indoor::DeviceId;

    fn row(o: u32, d: u32, ts: f64, te: f64) -> OttRow {
        OttRow { object: ObjectId(o), device: DeviceId(d), ts, te }
    }

    fn sample_ott() -> ObjectTrackingTable {
        ObjectTrackingTable::from_rows(vec![
            row(1, 1, 1.0, 2.0),
            row(1, 2, 3.0, 4.0),
            row(1, 3, 5.0, 6.0),
            row(2, 1, 7.0, 8.0),
            row(2, 4, 9.0, 10.0),
            row(3, 2, 0.5, 9.5),
        ])
        .unwrap()
    }

    #[test]
    fn point_query_matches_state_machine() {
        let ott = sample_ott();
        let tree = ArTree::build(&ott);
        assert_eq!(tree.len(), 6);
        for t in [0.0, 0.5, 1.0, 1.5, 2.5, 3.0, 4.5, 5.5, 6.0, 6.5, 8.5, 9.75, 10.5] {
            let hits = tree.point_query(t);
            // At most one entry per object.
            let mut objs: Vec<ObjectId> = hits.iter().map(|e| e.object).collect();
            objs.sort_unstable();
            objs.dedup();
            assert_eq!(objs.len(), hits.len(), "duplicate object at t={t}");
            for obj in [1, 2, 3].map(ObjectId) {
                let via_tree = hits
                    .iter()
                    .find(|e| e.object == obj)
                    .and_then(|e| ArTree::resolve_state(&ott, e, t));
                let via_ott = ott.state_at(obj, t);
                assert_eq!(via_tree, via_ott, "object {obj} at t={t}");
            }
        }
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let ott = sample_ott();
        let tree = ArTree::build(&ott);
        for (qs, qe) in [(0.0, 20.0), (2.5, 4.5), (6.5, 6.9), (9.0, 9.0), (11.0, 12.0)] {
            let mut got: Vec<(ObjectId, RecordId)> =
                tree.range_query(qs, qe).iter().map(|e| (e.object, e.cur)).collect();
            got.sort_unstable();
            let mut want: Vec<(ObjectId, RecordId)> = tree
                .entries()
                .iter()
                .filter(|e| e.overlaps(qs, qe))
                .map(|e| (e.object, e.cur))
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "range [{qs}, {qe}]");
        }
    }

    #[test]
    fn first_record_has_closed_start() {
        let ott = sample_ott();
        let tree = ArTree::build(&ott);
        // Object 3's only record starts at 0.5; a point query at exactly
        // 0.5 must find it.
        let hits = tree.point_query(0.5);
        assert!(hits.iter().any(|e| e.object == ObjectId(3) && e.closed_start));
    }

    #[test]
    fn augmented_intervals_partition_lifetime() {
        let ott = sample_ott();
        let tree = ArTree::build(&ott);
        // Object 1 lives on [1, 6]; every t in that span is covered by
        // exactly one of its entries.
        let mut t = 1.0;
        while t <= 6.0 {
            let covering: Vec<_> =
                tree.entries().iter().filter(|e| e.object == ObjectId(1) && e.covers(t)).collect();
            assert_eq!(covering.len(), 1, "t={t}");
            t += 0.25;
        }
    }

    #[test]
    fn empty_tree_queries() {
        let ott = ObjectTrackingTable::from_rows(Vec::new()).unwrap();
        let tree = ArTree::build(&ott);
        assert!(tree.is_empty());
        assert!(tree.point_query(1.0).is_empty());
        assert!(tree.range_query(0.0, 10.0).is_empty());
    }

    #[test]
    fn flat_round_trip_preserves_queries() {
        let ott = sample_ott();
        let tree = ArTree::build(&ott);
        let bytes = tree.to_flat_bytes(ott.len());
        let (reloaded, ott_len) = ArTree::from_flat_bytes(&bytes).expect("clean blob");
        assert_eq!(ott_len, ott.len());
        assert_eq!(reloaded.entries(), tree.entries());
        for t in [0.0, 0.5, 1.0, 2.5, 5.5, 9.75, 10.5] {
            let a: Vec<_> = tree.point_query(t).into_iter().map(|e| (e.object, e.cur)).collect();
            let b: Vec<_> =
                reloaded.point_query(t).into_iter().map(|e| (e.object, e.cur)).collect();
            assert_eq!(a, b, "point query at t={t}");
        }
        for (qs, qe) in [(0.0, 20.0), (2.5, 4.5), (11.0, 12.0)] {
            assert_eq!(
                tree.range_query(qs, qe).len(),
                reloaded.range_query(qs, qe).len(),
                "range [{qs}, {qe}]"
            );
        }
    }

    #[test]
    fn flat_round_trip_empty_tree() {
        let ott = ObjectTrackingTable::from_rows(Vec::new()).unwrap();
        let tree = ArTree::build(&ott);
        let bytes = tree.to_flat_bytes(0);
        let (reloaded, ott_len) = ArTree::from_flat_bytes(&bytes).expect("clean empty blob");
        assert_eq!(ott_len, 0);
        assert!(reloaded.is_empty());
        assert!(reloaded.point_query(1.0).is_empty());
    }

    #[test]
    fn flat_decode_rejects_truncation_at_every_byte() {
        let ott = sample_ott();
        let bytes = ArTree::build(&ott).to_flat_bytes(ott.len());
        for cut in 0..bytes.len() {
            assert!(
                ArTree::from_flat_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes accepted",
                bytes.len()
            );
        }
    }

    #[test]
    fn flat_decode_never_panics_on_byte_flips() {
        // The blob is not checksummed at this layer (the store's frame CRC
        // covers it); the decoder's own contract is: typed error or a tree
        // whose indices are all in bounds — never a panic, never an
        // out-of-range pointer.
        let ott = sample_ott();
        let bytes = ArTree::build(&ott).to_flat_bytes(ott.len());
        for i in 0..bytes.len() {
            for bit in [0, 3, 7] {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                if let Ok((tree, ott_len)) = ArTree::from_flat_bytes(&bad) {
                    for e in tree.entries() {
                        assert!(e.cur.index() < ott_len);
                        if let Some(p) = e.pred {
                            assert!(p.index() < ott_len);
                        }
                    }
                    // Queries stay in bounds whatever the flip did.
                    tree.point_query(5.0);
                    tree.range_query(0.0, 10.0);
                }
            }
        }
    }

    #[test]
    fn large_randomized_equivalence() {
        // Build a larger OTT with a deterministic xorshift generator and
        // check point queries against the state machine.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::new();
        for o in 0..50u32 {
            let mut t = next() * 10.0;
            for _ in 0..20 {
                let dur = 0.1 + next() * 2.0;
                let dev = (next() * 10.0) as u32;
                rows.push(row(o, dev, t, t + dur));
                t += dur + 0.05 + next() * 3.0;
            }
        }
        let ott = ObjectTrackingTable::from_rows(rows).unwrap();
        let tree = ArTree::build(&ott);
        for i in 0..200 {
            let t = i as f64 * 0.5;
            let hits = tree.point_query(t);
            for obj in (0..50).map(ObjectId) {
                let via_tree = hits
                    .iter()
                    .find(|e| e.object == obj)
                    .and_then(|e| ArTree::resolve_state(&ott, e, t));
                assert_eq!(via_tree, ott.state_at(obj, t), "object {obj} t={t}");
            }
        }
    }
}
