//! The AR-tree: an augmented temporal index over the OTT (paper §4.1).
//!
//! Every tracking record `rd_c` is indexed by a leaf entry
//! `(t1, t2, Ptr_p, Ptr_c)` where `(t1, t2] = (rd_p.t_e, rd_c.t_e]` is the
//! *augmented tracking time interval* (`rd_p` being the object's previous
//! record) and the two pointers reference the predecessor and current
//! records. For an object's first record the interval is the closed
//! `[rd_c.t_s, rd_c.t_e]` — before its first detection an object is not
//! part of the tracked population.
//!
//! A point query at `t` returns, per object, the unique leaf entry whose
//! interval covers `t`; comparing `t` with the current record's `[t_s,
//! t_e]` then resolves the active/inactive state and the
//! `rd_pre` / `rd_cov` / `rd_suc` records exactly as §4.1 describes. A
//! range query returns all entries overlapping the query interval, from
//! which the interval algorithms assemble per-object record chains
//! (Table 3).

use crate::ott::{ObjectId, ObjectState, ObjectTrackingTable, RecordId};
use crate::Timestamp;

/// Fan-out of the static AR-tree nodes.
const FANOUT: usize = 32;

/// A leaf entry of the AR-tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArTreeEntry {
    /// Start of the augmented interval (`rd_pre.t_e`, or `rd_cov.t_s` for
    /// an object's first record).
    pub t1: Timestamp,
    /// End of the augmented interval (`rd_cov.t_e`).
    pub t2: Timestamp,
    /// Whether `t1` itself belongs to the interval (true only for an
    /// object's first record).
    pub closed_start: bool,
    /// The predecessor record (`Ptr_p`); `None` for the first record.
    pub pred: Option<RecordId>,
    /// The current record (`Ptr_c`).
    pub cur: RecordId,
    /// The tracked object, denormalized for convenient grouping.
    pub object: ObjectId,
}

impl ArTreeEntry {
    /// Whether the augmented interval covers time `t`.
    pub fn covers(&self, t: Timestamp) -> bool {
        let lower_ok = if self.closed_start { t >= self.t1 } else { t > self.t1 };
        lower_ok && t <= self.t2
    }

    /// Whether the augmented interval overlaps `[qs, qe]`.
    pub fn overlaps(&self, qs: Timestamp, qe: Timestamp) -> bool {
        let lower_ok = if self.closed_start { self.t1 <= qe } else { self.t1 < qe };
        lower_ok && self.t2 >= qs
    }
}

#[derive(Debug, Clone, Copy)]
struct ArNode {
    tmin: Timestamp,
    tmax: Timestamp,
    /// Child index range: into `entries` for leaves, into `nodes` for
    /// internal nodes.
    first: u32,
    count: u32,
    leaf: bool,
}

/// The static AR-tree over an [`ObjectTrackingTable`].
#[derive(Debug)]
pub struct ArTree {
    entries: Vec<ArTreeEntry>,
    nodes: Vec<ArNode>,
    root: usize,
}

impl ArTree {
    /// Builds the AR-tree for all records of `ott`.
    pub fn build(ott: &ObjectTrackingTable) -> ArTree {
        let mut entries: Vec<ArTreeEntry> = Vec::with_capacity(ott.len());
        for obj in ott.objects() {
            for &rid in ott.object_records(obj) {
                let rec = ott.record(rid);
                let pred = ott.predecessor(rid);
                let (t1, closed_start) = match pred {
                    Some(p) => (ott.record(p).te, false),
                    None => (rec.ts, true),
                };
                entries.push(ArTreeEntry {
                    t1,
                    t2: rec.te,
                    closed_start,
                    pred,
                    cur: rid,
                    object: obj,
                });
            }
        }
        entries.sort_by(|a, b| a.t1.partial_cmp(&b.t1).expect("finite timestamps"));

        let mut nodes: Vec<ArNode> = Vec::new();
        if entries.is_empty() {
            nodes.push(ArNode { tmin: 0.0, tmax: -1.0, first: 0, count: 0, leaf: true });
            return ArTree { entries, nodes, root: 0 };
        }
        // Leaf level.
        let mut level_start = 0usize;
        for (i, chunk) in entries.chunks(FANOUT).enumerate() {
            let tmin = chunk.iter().map(|e| e.t1).fold(f64::INFINITY, f64::min);
            let tmax = chunk.iter().map(|e| e.t2).fold(f64::NEG_INFINITY, f64::max);
            nodes.push(ArNode {
                tmin,
                tmax,
                first: (i * FANOUT) as u32,
                count: chunk.len() as u32,
                leaf: true,
            });
        }
        // Internal levels.
        let mut level_len = nodes.len();
        while level_len > 1 {
            let next_start = nodes.len();
            let mut i = level_start;
            while i < level_start + level_len {
                let end = (i + FANOUT).min(level_start + level_len);
                let tmin = nodes[i..end].iter().map(|n| n.tmin).fold(f64::INFINITY, f64::min);
                let tmax = nodes[i..end].iter().map(|n| n.tmax).fold(f64::NEG_INFINITY, f64::max);
                nodes.push(ArNode {
                    tmin,
                    tmax,
                    first: i as u32,
                    count: (end - i) as u32,
                    leaf: false,
                });
                i = end;
            }
            level_start = next_start;
            level_len = nodes.len() - next_start;
        }
        let root = nodes.len() - 1;
        ArTree { entries, nodes, root }
    }

    /// Number of indexed entries (= OTT records).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All leaf entries in `t1` order.
    pub fn entries(&self) -> &[ArTreeEntry] {
        &self.entries
    }

    /// All leaf entries whose augmented interval covers `t` — at most one
    /// per object (Algorithm 1, line 3).
    pub fn point_query(&self, t: Timestamp) -> Vec<&ArTreeEntry> {
        let mut out = Vec::new();
        if self.entries.is_empty() {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            let node = self.nodes[idx];
            if t < node.tmin || t > node.tmax {
                // Closed-start entries make the lower bound inclusive, so
                // `t == tmin` must still be explored (handled by `<`).
                continue;
            }
            if node.leaf {
                for e in &self.entries[node.first as usize..(node.first + node.count) as usize] {
                    if e.covers(t) {
                        out.push(e);
                    }
                }
            } else {
                stack.extend(node.first as usize..(node.first + node.count) as usize);
            }
        }
        out
    }

    /// All leaf entries whose augmented interval overlaps `[qs, qe]`
    /// (Algorithm 4, line 3).
    pub fn range_query(&self, qs: Timestamp, qe: Timestamp) -> Vec<&ArTreeEntry> {
        let mut out = Vec::new();
        if self.entries.is_empty() || qe < qs {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            let node = self.nodes[idx];
            if node.tmin > qe || node.tmax < qs {
                continue;
            }
            if node.leaf {
                for e in &self.entries[node.first as usize..(node.first + node.count) as usize] {
                    if e.overlaps(qs, qe) {
                        out.push(e);
                    }
                }
            } else {
                stack.extend(node.first as usize..(node.first + node.count) as usize);
            }
        }
        out
    }

    /// Resolves the object state encoded by a leaf entry at time `t`
    /// (§4.1): active when the current record covers `t`, inactive when
    /// `t` falls in the gap after the predecessor.
    pub fn resolve_state(
        ott: &ObjectTrackingTable,
        entry: &ArTreeEntry,
        t: Timestamp,
    ) -> Option<ObjectState> {
        let cur = ott.record(entry.cur);
        if t >= cur.ts && t <= cur.te {
            return Some(ObjectState::Active { cov: entry.cur, pre: entry.pred });
        }
        let pre = entry.pred?;
        let pre_rec = ott.record(pre);
        if t > pre_rec.te && t < cur.ts {
            return Some(ObjectState::Inactive { pre, suc: entry.cur });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ott::OttRow;
    use inflow_indoor::DeviceId;

    fn row(o: u32, d: u32, ts: f64, te: f64) -> OttRow {
        OttRow { object: ObjectId(o), device: DeviceId(d), ts, te }
    }

    fn sample_ott() -> ObjectTrackingTable {
        ObjectTrackingTable::from_rows(vec![
            row(1, 1, 1.0, 2.0),
            row(1, 2, 3.0, 4.0),
            row(1, 3, 5.0, 6.0),
            row(2, 1, 7.0, 8.0),
            row(2, 4, 9.0, 10.0),
            row(3, 2, 0.5, 9.5),
        ])
        .unwrap()
    }

    #[test]
    fn point_query_matches_state_machine() {
        let ott = sample_ott();
        let tree = ArTree::build(&ott);
        assert_eq!(tree.len(), 6);
        for t in [0.0, 0.5, 1.0, 1.5, 2.5, 3.0, 4.5, 5.5, 6.0, 6.5, 8.5, 9.75, 10.5] {
            let hits = tree.point_query(t);
            // At most one entry per object.
            let mut objs: Vec<ObjectId> = hits.iter().map(|e| e.object).collect();
            objs.sort_unstable();
            objs.dedup();
            assert_eq!(objs.len(), hits.len(), "duplicate object at t={t}");
            for obj in [1, 2, 3].map(ObjectId) {
                let via_tree = hits
                    .iter()
                    .find(|e| e.object == obj)
                    .and_then(|e| ArTree::resolve_state(&ott, e, t));
                let via_ott = ott.state_at(obj, t);
                assert_eq!(via_tree, via_ott, "object {obj} at t={t}");
            }
        }
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let ott = sample_ott();
        let tree = ArTree::build(&ott);
        for (qs, qe) in [(0.0, 20.0), (2.5, 4.5), (6.5, 6.9), (9.0, 9.0), (11.0, 12.0)] {
            let mut got: Vec<(ObjectId, RecordId)> =
                tree.range_query(qs, qe).iter().map(|e| (e.object, e.cur)).collect();
            got.sort_unstable();
            let mut want: Vec<(ObjectId, RecordId)> = tree
                .entries()
                .iter()
                .filter(|e| e.overlaps(qs, qe))
                .map(|e| (e.object, e.cur))
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "range [{qs}, {qe}]");
        }
    }

    #[test]
    fn first_record_has_closed_start() {
        let ott = sample_ott();
        let tree = ArTree::build(&ott);
        // Object 3's only record starts at 0.5; a point query at exactly
        // 0.5 must find it.
        let hits = tree.point_query(0.5);
        assert!(hits.iter().any(|e| e.object == ObjectId(3) && e.closed_start));
    }

    #[test]
    fn augmented_intervals_partition_lifetime() {
        let ott = sample_ott();
        let tree = ArTree::build(&ott);
        // Object 1 lives on [1, 6]; every t in that span is covered by
        // exactly one of its entries.
        let mut t = 1.0;
        while t <= 6.0 {
            let covering: Vec<_> =
                tree.entries().iter().filter(|e| e.object == ObjectId(1) && e.covers(t)).collect();
            assert_eq!(covering.len(), 1, "t={t}");
            t += 0.25;
        }
    }

    #[test]
    fn empty_tree_queries() {
        let ott = ObjectTrackingTable::from_rows(Vec::new()).unwrap();
        let tree = ArTree::build(&ott);
        assert!(tree.is_empty());
        assert!(tree.point_query(1.0).is_empty());
        assert!(tree.range_query(0.0, 10.0).is_empty());
    }

    #[test]
    fn large_randomized_equivalence() {
        // Build a larger OTT with a deterministic xorshift generator and
        // check point queries against the state machine.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::new();
        for o in 0..50u32 {
            let mut t = next() * 10.0;
            for _ in 0..20 {
                let dur = 0.1 + next() * 2.0;
                let dev = (next() * 10.0) as u32;
                rows.push(row(o, dev, t, t + dur));
                t += dur + 0.05 + next() * 3.0;
            }
        }
        let ott = ObjectTrackingTable::from_rows(rows).unwrap();
        let tree = ArTree::build(&ott);
        for i in 0..200 {
            let t = i as f64 * 0.5;
            let hits = tree.point_query(t);
            for obj in (0..50).map(ObjectId) {
                let via_tree = hits
                    .iter()
                    .find(|e| e.object == obj)
                    .and_then(|e| ArTree::resolve_state(&ott, e, t));
                assert_eq!(via_tree, ott.state_at(obj, t), "object {obj} t={t}");
            }
        }
    }
}
