//! CSV interchange for tracking data.
//!
//! Real deployments exchange symbolic tracking data as flat files; this
//! module reads and writes the two natural formats:
//!
//! * **raw readings** — `object,device,t` (one positioning report per
//!   line), to be merged with [`crate::merge_raw_readings`];
//! * **OTT rows** — `object,device,ts,te` (merged tracking records), to be
//!   loaded with [`ObjectTrackingTable::from_rows`].
//!
//! Both formats have a mandatory header line, `#`-comment support, and
//! precise line-numbered errors. Round-tripping is lossless (and tested).

use crate::ott::{ObjectId, ObjectTrackingTable, OttRow};
use crate::reading::RawReading;
use crate::sanitize::AnomalyKind;
use inflow_indoor::DeviceId;
use std::io::{BufRead, Write};

/// Errors raised while parsing tracking CSV files.
#[derive(Debug)]
pub enum CsvError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The header line was missing or unexpected.
    BadHeader { expected: &'static str, found: String },
    /// A data line could not be parsed.
    BadLine { line: usize, reason: String },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::BadHeader { expected, found } => {
                write!(f, "expected header '{expected}', found '{found}'")
            }
            CsvError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

const OTT_HEADER: &str = "object,device,ts,te";
const READING_HEADER: &str = "object,device,t";
const QUARANTINE_HEADER: &str = "object,device,ts,te,kind";

/// Writes OTT rows (or a whole table's records) as CSV.
pub fn write_ott_csv<'a>(
    out: &mut impl Write,
    rows: impl IntoIterator<Item = &'a OttRow>,
) -> Result<(), CsvError> {
    writeln!(out, "{OTT_HEADER}")?;
    for r in rows {
        writeln!(out, "{},{},{},{}", r.object.0, r.device.0, r.ts, r.te)?;
    }
    Ok(())
}

/// Writes an [`ObjectTrackingTable`]'s records as CSV.
pub fn write_table_csv(out: &mut impl Write, ott: &ObjectTrackingTable) -> Result<(), CsvError> {
    writeln!(out, "{OTT_HEADER}")?;
    for r in ott.records() {
        writeln!(out, "{},{},{},{}", r.object.0, r.device.0, r.ts, r.te)?;
    }
    Ok(())
}

/// Reads OTT rows from CSV.
pub fn read_ott_csv(input: &mut impl BufRead) -> Result<Vec<OttRow>, CsvError> {
    let mut rows = Vec::new();
    let mut lines = content_lines(input)?;
    let Some((_, header)) = lines.next() else {
        return Err(CsvError::BadHeader { expected: OTT_HEADER, found: String::new() });
    };
    if header.trim() != OTT_HEADER {
        return Err(CsvError::BadHeader { expected: OTT_HEADER, found: header });
    }
    for (line_no, line) in lines {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(CsvError::BadLine {
                line: line_no,
                reason: format!("expected 4 fields, found {}", fields.len()),
            });
        }
        rows.push(OttRow {
            object: ObjectId(parse(fields[0], "object", line_no)?),
            device: DeviceId(parse(fields[1], "device", line_no)?),
            ts: parse_finite(fields[2], "ts", line_no)?,
            te: parse_finite(fields[3], "te", line_no)?,
        });
    }
    Ok(rows)
}

/// Writes quarantined rows with their diagnosis as CSV
/// (`object,device,ts,te,kind`), the format `inflow readmit` consumes.
pub fn write_quarantine_csv<'a>(
    out: &mut impl Write,
    entries: impl IntoIterator<Item = &'a (OttRow, AnomalyKind)>,
) -> Result<(), CsvError> {
    writeln!(out, "{QUARANTINE_HEADER}")?;
    for (r, kind) in entries {
        writeln!(out, "{},{},{},{},{}", r.object.0, r.device.0, r.ts, r.te, kind.name())?;
    }
    Ok(())
}

/// Reads quarantined rows back. Unlike [`read_ott_csv`] this accepts
/// non-finite timestamps: rows land in quarantine precisely because they
/// violate validation, and the round trip must not lose them.
pub fn read_quarantine_csv(
    input: &mut impl BufRead,
) -> Result<Vec<(OttRow, AnomalyKind)>, CsvError> {
    let mut entries = Vec::new();
    let mut lines = content_lines(input)?;
    let Some((_, header)) = lines.next() else {
        return Err(CsvError::BadHeader { expected: QUARANTINE_HEADER, found: String::new() });
    };
    if header.trim() != QUARANTINE_HEADER {
        return Err(CsvError::BadHeader { expected: QUARANTINE_HEADER, found: header });
    }
    for (line_no, line) in lines {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 5 {
            return Err(CsvError::BadLine {
                line: line_no,
                reason: format!("expected 5 fields, found {}", fields.len()),
            });
        }
        let kind = AnomalyKind::from_name(fields[4]).ok_or_else(|| CsvError::BadLine {
            line: line_no,
            reason: format!("unknown anomaly kind '{}'", fields[4]),
        })?;
        entries.push((
            OttRow {
                object: ObjectId(parse(fields[0], "object", line_no)?),
                device: DeviceId(parse(fields[1], "device", line_no)?),
                ts: parse(fields[2], "ts", line_no)?,
                te: parse(fields[3], "te", line_no)?,
            },
            kind,
        ));
    }
    Ok(entries)
}

/// Writes raw readings as CSV.
pub fn write_readings_csv<'a>(
    out: &mut impl Write,
    readings: impl IntoIterator<Item = &'a RawReading>,
) -> Result<(), CsvError> {
    writeln!(out, "{READING_HEADER}")?;
    for r in readings {
        writeln!(out, "{},{},{}", r.object.0, r.device.0, r.t)?;
    }
    Ok(())
}

/// Reads raw readings from CSV.
pub fn read_readings_csv(input: &mut impl BufRead) -> Result<Vec<RawReading>, CsvError> {
    let mut readings = Vec::new();
    let mut lines = content_lines(input)?;
    let Some((_, header)) = lines.next() else {
        return Err(CsvError::BadHeader { expected: READING_HEADER, found: String::new() });
    };
    if header.trim() != READING_HEADER {
        return Err(CsvError::BadHeader { expected: READING_HEADER, found: header });
    }
    for (line_no, line) in lines {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 3 {
            return Err(CsvError::BadLine {
                line: line_no,
                reason: format!("expected 3 fields, found {}", fields.len()),
            });
        }
        readings.push(RawReading {
            object: ObjectId(parse(fields[0], "object", line_no)?),
            device: DeviceId(parse(fields[1], "device", line_no)?),
            t: parse_finite(fields[2], "t", line_no)?,
        });
    }
    Ok(readings)
}

/// Non-empty, non-comment lines with their 1-based line numbers.
pub(crate) fn content_lines(
    input: &mut impl BufRead,
) -> Result<impl Iterator<Item = (usize, String)>, CsvError> {
    let mut out = Vec::new();
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        buf.clear();
        if input.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = buf.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push((line_no, trimmed.to_string()));
    }
    Ok(out.into_iter())
}

pub(crate) fn parse<T: std::str::FromStr>(
    s: &str,
    field: &str,
    line: usize,
) -> Result<T, CsvError> {
    s.parse()
        .map_err(|_| CsvError::BadLine { line, reason: format!("cannot parse {field} from '{s}'") })
}

/// Parses an `f64` field, additionally rejecting NaN and infinities —
/// `"NaN".parse::<f64>()` succeeds, but no timestamp field may hold one.
pub(crate) fn parse_finite(s: &str, field: &str, line: usize) -> Result<f64, CsvError> {
    let v: f64 = parse(s, field, line)?;
    if !v.is_finite() {
        return Err(CsvError::BadLine { line, reason: format!("non-finite {field} value '{s}'") });
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn row(o: u32, d: u32, ts: f64, te: f64) -> OttRow {
        OttRow { object: ObjectId(o), device: DeviceId(d), ts, te }
    }

    #[test]
    fn ott_round_trip() {
        let rows = vec![row(1, 2, 0.0, 5.5), row(1, 3, 8.25, 9.0), row(2, 2, 1.0, 1.0)];
        let mut buf = Vec::new();
        write_ott_csv(&mut buf, &rows).unwrap();
        let parsed = read_ott_csv(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed, rows);
    }

    #[test]
    fn table_round_trip() {
        let rows = vec![row(1, 2, 0.0, 5.5), row(1, 3, 8.25, 9.0)];
        let ott = ObjectTrackingTable::from_rows(rows).unwrap();
        let mut buf = Vec::new();
        write_table_csv(&mut buf, &ott).unwrap();
        let parsed = read_ott_csv(&mut BufReader::new(buf.as_slice())).unwrap();
        let ott2 = ObjectTrackingTable::from_rows(parsed).unwrap();
        assert_eq!(ott.records(), ott2.records());
    }

    #[test]
    fn readings_round_trip() {
        let readings = vec![
            RawReading { object: ObjectId(7), device: DeviceId(1), t: 0.5 },
            RawReading { object: ObjectId(7), device: DeviceId(1), t: 1.5 },
        ];
        let mut buf = Vec::new();
        write_readings_csv(&mut buf, &readings).unwrap();
        let parsed = read_readings_csv(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed, readings);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# exported by inflow\n\nobject,device,ts,te\n# a comment\n1,2,0,5\n";
        let rows = read_ott_csv(&mut BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(rows, vec![row(1, 2, 0.0, 5.0)]);
    }

    #[test]
    fn bad_header_rejected() {
        let text = "obj,dev,start,end\n1,2,0,5\n";
        let err = read_ott_csv(&mut BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, CsvError::BadHeader { .. }), "{err}");
    }

    #[test]
    fn bad_line_reports_line_number() {
        let text = "object,device,ts,te\n1,2,0,5\n1,2,oops,5\n";
        let err = read_ott_csv(&mut BufReader::new(text.as_bytes())).unwrap_err();
        match err {
            CsvError::BadLine { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains("ts"));
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn wrong_field_count_rejected() {
        let text = "object,device,ts,te\n1,2,0\n";
        let err = read_ott_csv(&mut BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, CsvError::BadLine { line: 2, .. }));
    }

    #[test]
    fn empty_file_is_bad_header() {
        let err = read_ott_csv(&mut BufReader::new("".as_bytes())).unwrap_err();
        assert!(matches!(err, CsvError::BadHeader { .. }));
    }

    #[test]
    fn non_finite_ott_timestamps_rejected() {
        for bad in ["NaN", "inf", "-inf", "infinity"] {
            let text = format!("object,device,ts,te\n1,2,{bad},5\n");
            let err = read_ott_csv(&mut BufReader::new(text.as_bytes())).unwrap_err();
            match err {
                CsvError::BadLine { line, reason } => {
                    assert_eq!(line, 2);
                    assert!(reason.contains("non-finite"), "{bad}: {reason}");
                }
                other => panic!("expected BadLine for '{bad}', got {other:?}"),
            }
            let text = format!("object,device,ts,te\n1,2,0,{bad}\n");
            assert!(read_ott_csv(&mut BufReader::new(text.as_bytes())).is_err());
        }
    }

    #[test]
    fn quarantine_round_trip_keeps_broken_rows() {
        let entries = vec![
            (row(1, 9, 0.0, 5.0), AnomalyKind::UnknownDevice),
            (row(2, 0, f64::NAN, 3.0), AnomalyKind::NonFiniteTimestamp),
        ];
        let mut buf = Vec::new();
        write_quarantine_csv(&mut buf, &entries).unwrap();
        let parsed = read_quarantine_csv(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], entries[0]);
        assert_eq!(parsed[1].1, AnomalyKind::NonFiniteTimestamp);
        assert_eq!(parsed[1].0.object, ObjectId(2));
        // NaN never compares equal; check it survived explicitly.
        assert!(parsed[1].0.ts.is_nan());
        assert_eq!(parsed[1].0.te, 3.0);
    }

    #[test]
    fn quarantine_rejects_unknown_kind() {
        let text = "object,device,ts,te,kind\n1,2,0,5,cosmic_ray\n";
        let err = read_quarantine_csv(&mut BufReader::new(text.as_bytes())).unwrap_err();
        match err {
            CsvError::BadLine { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("cosmic_ray"));
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_reading_timestamps_rejected() {
        let text = "object,device,t\n1,2,NaN\n";
        let err = read_readings_csv(&mut BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, CsvError::BadLine { line: 2, .. }), "{err}");
    }
}
