//! Snapshot files: a point-in-time image of the tracker state, the OTT
//! it implies, and a flat-serialized AR-tree over that OTT.
//!
//! Layout:
//!
//! ```text
//! "IFSNP001" | META (wal_seq: u64) | CONFIG | CLOSED_ROW* | OPEN_RUN*
//!            | PENDING* | ARTREE | END (row counts)
//! ```
//!
//! `wal_seq` is the absolute number of WAL readings the snapshot
//! reflects; recovery replays WAL readings `wal_seq..` on top of it. The
//! `ARTREE` frame carries the flat layout of
//! [`ArTree::to_flat_bytes`] — entry array plus node array — so reload
//! is a validation pass ([`ArTree::from_flat_bytes`]) instead of a full
//! §4.1 rebuild. The `END` commit marker carries the row counts; a file
//! without a matching marker is torn by definition and rejected whole —
//! unlike the WAL there is no partial credit for a snapshot.

use super::frame::{self, tag, Cursor, FrameReader};
use super::StoreError;
use crate::artree::ArTree;
use crate::ott::ObjectTrackingTable;
use crate::stream::{OnlineTracker, TrackerAssembler};

/// Magic prefix of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"IFSNP001";

/// A fully decoded, validated snapshot.
#[derive(Debug)]
pub struct SnapshotState {
    /// WAL readings reflected by this snapshot.
    pub wal_seq: u64,
    /// The tracker state at the snapshot point.
    pub tracker: OnlineTracker,
    /// The OTT implied by the tracker state (closed rows plus open runs
    /// closed as-of-now) — what the AR-tree's record pointers index.
    pub ott: ObjectTrackingTable,
    /// The AR-tree reloaded from its flat serialization.
    pub artree: ArTree,
}

/// Serializes a snapshot of `tracker` taken after `wal_seq` readings.
pub fn encode(tracker: &OnlineTracker, wal_seq: u64) -> Result<Vec<u8>, StoreError> {
    let ott = tracker
        .snapshot()
        .map_err(|e| StoreError::InvalidState { reason: format!("snapshot OTT: {e}") })?;
    let artree = ArTree::build(&ott);
    let mut buf = Vec::new();
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    frame::write_frame(&mut buf, tag::META, &wal_seq.to_le_bytes());
    tracker.write_state_frames(&mut buf);
    frame::write_frame(&mut buf, tag::ARTREE, &artree.to_flat_bytes(ott.len()));
    let (closed, open, pending) = tracker.state_counts();
    frame::write_frame(&mut buf, tag::END, &frame::encode_counts(closed, open, pending));
    Ok(buf)
}

/// Decodes and validates a snapshot buffer. Strict: every frame must be
/// present, in order, checksum-clean; the `END` counts must match the
/// decoded state; the AR-tree must pass its structural validation and
/// cover exactly the snapshot's OTT. Any deviation is a typed error.
pub fn decode(bytes: &[u8]) -> Result<SnapshotState, StoreError> {
    if !bytes.starts_with(SNAPSHOT_MAGIC) {
        return Err(StoreError::BadMagic { what: "snapshot" });
    }
    let mut reader = FrameReader::new(bytes, SNAPSHOT_MAGIC.len());

    let meta = reader.next().ok_or(StoreError::Decode {
        offset: SNAPSHOT_MAGIC.len(),
        reason: "missing meta frame".into(),
    })??;
    if meta.tag != tag::META {
        return Err(StoreError::Decode {
            offset: meta.offset,
            reason: format!("expected meta frame, found tag {}", meta.tag),
        });
    }
    let mut c = Cursor::new(&meta);
    let wal_seq = c.u64("wal sequence")?;
    c.done()?;

    let mut asm = TrackerAssembler::new();
    let mut artree_bytes: Option<&[u8]> = None;
    let mut committed = false;
    for item in reader.by_ref() {
        let f = item?;
        if committed {
            return Err(StoreError::Decode {
                offset: f.offset,
                reason: "frame after END marker".into(),
            });
        }
        if artree_bytes.is_none() && asm.apply(&f)? {
            continue;
        }
        match f.tag {
            tag::ARTREE if artree_bytes.is_none() => artree_bytes = Some(f.payload),
            tag::END => {
                let expected = frame::decode_counts(&f)?;
                if expected != asm.counts() {
                    return Err(StoreError::Decode {
                        offset: f.offset,
                        reason: format!(
                            "END counts {expected:?} do not match decoded state {:?}",
                            asm.counts()
                        ),
                    });
                }
                committed = true;
            }
            other => {
                return Err(StoreError::Decode {
                    offset: f.offset,
                    reason: format!("unexpected frame tag {other}"),
                });
            }
        }
    }
    let offset = reader.offset();
    if !committed {
        return Err(StoreError::MissingCommit { offset });
    }
    let Some(artree_bytes) = artree_bytes else {
        return Err(StoreError::Decode { offset, reason: "missing AR-tree frame".into() });
    };
    let tracker = asm.finish(offset)?;
    let ott = tracker
        .snapshot()
        .map_err(|e| StoreError::Decode { offset, reason: format!("inconsistent OTT: {e}") })?;
    let (artree, ott_len) = ArTree::from_flat_bytes(artree_bytes)
        .map_err(|e| StoreError::Decode { offset, reason: e.to_string() })?;
    if ott_len != ott.len() || artree.len() != ott.len() {
        return Err(StoreError::Decode {
            offset,
            reason: format!(
                "AR-tree covers {} records over a {}-record OTT ({} entries)",
                ott_len,
                ott.len(),
                artree.len()
            ),
        });
    }
    Ok(SnapshotState { wal_seq, tracker, ott, artree })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ott::ObjectId;
    use crate::reading::RawReading;
    use inflow_indoor::DeviceId;

    fn busy_tracker() -> OnlineTracker {
        let mut tracker = OnlineTracker::with_reorder(1.5, 2.0);
        for (o, d, t) in [(1, 1, 0.0), (1, 2, 3.0), (2, 1, 4.0), (3, 3, 9.0), (2, 2, 9.5)] {
            tracker.ingest(RawReading { object: ObjectId(o), device: DeviceId(d), t }).unwrap();
        }
        tracker
    }

    #[test]
    fn snapshot_round_trips_tracker_ott_and_artree() {
        let tracker = busy_tracker();
        let expected_ott = tracker.snapshot().unwrap();
        let bytes = encode(&tracker, 5).unwrap();
        let snap = decode(&bytes).unwrap();
        assert_eq!(snap.wal_seq, 5);
        assert_eq!(snap.ott.records(), expected_ott.records());
        let rebuilt = ArTree::build(&snap.ott);
        assert_eq!(snap.artree.entries(), rebuilt.entries());
        // The restored tracker checkpoints byte-identically.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        tracker.checkpoint(&mut a).unwrap();
        snap.tracker.checkpoint(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_tracker_snapshot_round_trips() {
        let tracker = OnlineTracker::new(1.0);
        let bytes = encode(&tracker, 0).unwrap();
        let snap = decode(&bytes).unwrap();
        assert_eq!(snap.wal_seq, 0);
        assert!(snap.ott.is_empty());
        assert!(snap.artree.is_empty());
    }

    #[test]
    fn truncation_at_every_byte_is_rejected() {
        let bytes = encode(&busy_tracker(), 5).unwrap();
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "prefix {cut}/{} accepted", bytes.len());
        }
    }

    #[test]
    fn bit_flip_anywhere_is_rejected_or_harmless_never_wrong() {
        let tracker = busy_tracker();
        let bytes = encode(&tracker, 5).unwrap();
        let expected_ott = tracker.snapshot().unwrap();
        for i in 0..bytes.len() {
            for bit in [0, 5] {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                // Every flip must yield a typed error: magic flips fail the
                // magic check, and every other byte is covered by a frame
                // CRC, so nothing can decode to a different table.
                match decode(&bad) {
                    Err(_) => {}
                    Ok(snap) => {
                        panic!(
                            "flip at byte {i} bit {bit} decoded; ott match: {}",
                            snap.ott.records() == expected_ott.records()
                        );
                    }
                }
            }
        }
    }
}
