//! Crash-safe compaction: seals cold closed rows into immutable
//! segments and merges small segments into larger ones.
//!
//! Compaction is a pure, deterministic function of the closed-row log
//! and the current manifest:
//!
//! 1. **Seal** — whenever at least `compact_every` (`T`) closed rows sit
//!    past the sealed frontier, cut exactly `T` of them into a new
//!    segment. Only full `T`-row segments are ever sealed (the remainder
//!    stays hot in the WAL tail), so segment boundaries are `T`-aligned
//!    no matter where a crash interrupted a previous attempt — a resumed
//!    run re-seals byte-identical files.
//! 2. **Merge** — whenever `merge_factor` consecutive non-quarantined
//!    segments of equal row count exist, replace them with one segment
//!    covering their union (rows re-read from the in-memory closed log),
//!    scanning left-to-right to a fixed point. Segment sizes therefore
//!    follow powers of `merge_factor` times `T`, and the tier layout is
//!    a deterministic function of the sealed frontier.
//!
//! The crash-safety protocol is write-ahead all the way down: every new
//! segment file is written via [`super::atomic_write`] *before* the
//! single manifest swap that commits the whole pass, and files no longer
//! referenced are removed only *after* the swap. A crash at any I/O
//! operation leaves either the old manifest naming the old files (all
//! still present) or the new manifest naming the new files (all already
//! durable); stray files from the losing side are orphans that recovery
//! and the next pass sweep up. `tests/crash.rs` proves this at every
//! [`super::FailpointFs`] failpoint.

use super::manifest::Manifest;
use super::{frame, manifest::SegmentEntry, segment, Fs, StoreError};
use crate::ott::OttRow;
use std::collections::BTreeSet;
use std::path::Path;

/// What a compaction pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// New segments sealed from the hot tail.
    pub segments_sealed: u64,
    /// Input segments consumed by merges.
    pub segments_merged: u64,
    /// Merge operations performed.
    pub merges: u64,
    /// No-longer-referenced segment files removed after the swap.
    pub files_removed: u64,
}

impl CompactionOutcome {
    /// True when the pass changed the manifest.
    pub fn changed(&self) -> bool {
        self.segments_sealed > 0 || self.merges > 0
    }
}

/// Rows `[base, base + count)` of the closed log, as a typed error when
/// the log is shorter than the manifest claims (never a panic).
fn log_slice(closed: &[OttRow], base: u64, count: u64) -> Result<&[OttRow], StoreError> {
    let (start, end) = (base as usize, (base + count) as usize);
    closed.get(start..end).ok_or_else(|| StoreError::InvalidState {
        reason: format!(
            "closed log holds {} rows but compaction needs [{start}, {end})",
            closed.len()
        ),
    })
}

/// Writes the segment sealing `rows` from `base_row` and returns its
/// manifest entry. The file is durable (atomic write + fsync) before
/// this returns; it becomes *live* only when the caller swaps a
/// manifest referencing it. Also the repair path: re-encoding the same
/// rows reproduces the original bytes, so a repaired entry keeps its
/// CRC.
pub(super) fn write_segment<F: Fs>(
    fs: &F,
    dir: &Path,
    base_row: u64,
    rows: &[OttRow],
) -> Result<SegmentEntry, StoreError> {
    let (meta, bytes) = segment::encode(base_row, rows)?;
    let entry = SegmentEntry {
        base_row,
        row_count: meta.row_count,
        t_min: meta.t_min,
        t_max: meta.t_max,
        file_len: bytes.len() as u64,
        file_crc: frame::crc32(&bytes),
        quarantined: false,
    };
    super::atomic_write(fs, &dir.join(entry.file_name()), &bytes)?;
    Ok(entry)
}

/// Removes every `*.seg` file in `dir` that `manifest` does not
/// reference — the post-swap cleanup, also run by recovery to sweep the
/// losing side of an interrupted pass. Returns the number removed.
pub fn remove_unreferenced<F: Fs>(
    fs: &F,
    dir: &Path,
    manifest: &Manifest,
) -> Result<u64, StoreError> {
    let live: BTreeSet<String> = manifest.entries.iter().map(SegmentEntry::file_name).collect();
    let mut removed = 0;
    for path in fs.list(dir)? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if name.ends_with(segment::SEGMENT_SUFFIX) && !live.contains(name) {
            fs.remove_file(&path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Runs one compaction pass over the store directory: seal, merge, swap
/// the manifest once, then sweep unreferenced files. `closed` is the
/// full closed-row log from row 0; the caller must have made its tail
/// durable (WAL fsync) before sealing from it.
pub fn compact<F: Fs>(
    fs: &F,
    dir: &Path,
    manifest: &mut Manifest,
    closed: &[OttRow],
    compact_every: u64,
    merge_factor: usize,
) -> Result<CompactionOutcome, StoreError> {
    let mut out = CompactionOutcome::default();
    if compact_every == 0 {
        return Err(StoreError::InvalidState { reason: "compact_every must be ≥ 1".into() });
    }
    let mut entries = manifest.entries.clone();

    // 1. Seal full T-row segments from the hot tail.
    let mut frontier = entries.last().map(SegmentEntry::end_row).unwrap_or(0);
    while (closed.len() as u64).saturating_sub(frontier) >= compact_every {
        let rows = log_slice(closed, frontier, compact_every)?;
        entries.push(write_segment(fs, dir, frontier, rows)?);
        frontier += compact_every;
        out.segments_sealed += 1;
    }

    // 2. Merge runs of merge_factor equal-sized, healthy segments.
    if merge_factor >= 2 {
        loop {
            let run = (0..entries.len().saturating_sub(merge_factor - 1)).find(|&i| {
                let Some(window) = entries.get(i..i + merge_factor) else { return false };
                let Some(first) = window.first() else { return false };
                window.iter().all(|e| !e.quarantined && e.row_count == first.row_count)
            });
            let Some(i) = run else { break };
            let Some(window) = entries.get(i..i + merge_factor) else { break };
            let Some(first) = window.first() else { break };
            let (base, count) = (first.base_row, window.iter().map(|e| e.row_count).sum::<u64>());
            let rows = log_slice(closed, base, count)?;
            let merged = write_segment(fs, dir, base, rows)?;
            entries.splice(i..i + merge_factor, [merged]);
            out.segments_merged += merge_factor as u64;
            out.merges += 1;
        }
    }

    // 3. Commit: one atomic manifest swap, then sweep the losers.
    if out.changed() {
        manifest.entries = entries;
        manifest.store(fs, dir)?;
        out.files_removed = remove_unreferenced(fs, dir, manifest)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ott::ObjectId;
    use crate::store::FailpointFs;
    use inflow_indoor::DeviceId;

    fn rows(n: usize) -> Vec<OttRow> {
        (0..n)
            .map(|i| OttRow {
                object: ObjectId((i % 5) as u32),
                device: DeviceId((i % 3) as u32),
                ts: i as f64,
                te: i as f64 + 0.5,
            })
            .collect()
    }

    fn setup() -> (FailpointFs, Manifest) {
        let fs = FailpointFs::new();
        fs.create_dir_all(Path::new("/s")).unwrap();
        (fs, Manifest::default())
    }

    #[test]
    fn seals_only_full_segments() {
        let (fs, mut m) = setup();
        let dir = Path::new("/s");
        let closed = rows(19);
        let out = compact(&fs, dir, &mut m, &closed, 8, 0).unwrap();
        assert_eq!(out.segments_sealed, 2);
        assert_eq!(m.sealed_rows(), 16); // 3 rows stay hot
        for e in &m.entries {
            let bytes = fs.read(&dir.join(e.file_name())).unwrap();
            assert_eq!(bytes.len() as u64, e.file_len);
            assert_eq!(frame::crc32(&bytes), e.file_crc);
            let seg = segment::decode(&bytes).unwrap();
            assert_eq!(seg.rows.as_slice(), log_slice(&closed, e.base_row, e.row_count).unwrap());
        }
    }

    #[test]
    fn merges_to_fixed_point_and_sweeps_old_files() {
        let (fs, mut m) = setup();
        let dir = Path::new("/s");
        let closed = rows(16);
        // Seal four 4-row segments, merging every 4 equal-sized ones.
        let out = compact(&fs, dir, &mut m, &closed, 4, 4).unwrap();
        assert_eq!(out.segments_sealed, 4);
        assert_eq!(out.merges, 1);
        assert_eq!(m.entries.len(), 1);
        assert_eq!(m.entries[0].row_count, 16);
        // Only the merged file survives the sweep.
        let segs: Vec<_> = fs
            .list(dir)
            .unwrap()
            .into_iter()
            .filter(|p| p.to_str().is_some_and(|s| s.ends_with(".seg")))
            .collect();
        assert_eq!(segs, vec![dir.join(segment::file_name(0, 16))]);
        assert_eq!(out.files_removed, 4);
    }

    #[test]
    fn quarantined_segments_are_never_merged() {
        let (fs, mut m) = setup();
        let dir = Path::new("/s");
        let closed = rows(16);
        compact(&fs, dir, &mut m, &closed, 4, 0).unwrap();
        m.entries[1].quarantined = true;
        let out = compact(&fs, dir, &mut m, &closed, 4, 4).unwrap();
        assert_eq!(out.merges, 0);
        assert_eq!(m.entries.len(), 4);
    }

    #[test]
    fn resealing_after_partial_run_is_byte_identical() {
        // Two independent directories, one sealed in two passes, one in
        // a single pass: files and manifests must match byte-for-byte.
        let fs = FailpointFs::new();
        let (a, b) = (Path::new("/a"), Path::new("/b"));
        fs.create_dir_all(a).unwrap();
        fs.create_dir_all(b).unwrap();
        let closed = rows(32);
        let mut ma = Manifest::default();
        compact(&fs, a, &mut ma, &closed[..20], 8, 4).unwrap();
        compact(&fs, a, &mut ma, &closed, 8, 4).unwrap();
        let mut mb = Manifest::default();
        compact(&fs, b, &mut mb, &closed, 8, 4).unwrap();
        assert_eq!(ma, mb);
        for e in &ma.entries {
            assert_eq!(
                fs.read(&a.join(e.file_name())).unwrap(),
                fs.read(&b.join(e.file_name())).unwrap()
            );
        }
    }

    #[test]
    fn short_closed_log_is_a_typed_error() {
        // A merge whose inputs claim more rows than the closed log holds
        // must fail typed, not slice-panic.
        let (fs, mut m) = setup();
        for base in [0u64, 8] {
            m.entries.push(SegmentEntry {
                base_row: base,
                row_count: 8,
                t_min: 0.0,
                t_max: 1.0,
                file_len: 0,
                file_crc: 0,
                quarantined: false,
            });
        }
        let err = compact(&fs, Path::new("/s"), &mut m, &rows(10), 32, 2).unwrap_err();
        assert!(matches!(err, StoreError::InvalidState { .. }));
    }
}
