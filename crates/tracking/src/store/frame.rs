//! Record framing shared by the WAL, snapshot files and binary
//! checkpoints.
//!
//! Every durable record is one **frame**:
//!
//! ```text
//! tag: u8 | len: u32 LE | payload: [u8; len] | crc: u32 LE
//! ```
//!
//! The CRC-32 (ISO-HDLC polynomial, the zlib/PNG one) covers the tag, the
//! length field and the payload, so a torn write, a bit flip or a
//! misaligned read is detected no matter which of the four parts it hits.
//! Readers additionally bound `len` by [`MAX_FRAME_PAYLOAD`] so a
//! corrupted length field cannot trigger a huge allocation or a bogus
//! multi-megabyte skip that happens to land on plausible bytes.
//!
//! Payload encodings are fixed-width little-endian — no varints, no
//! padding — so every record type has exactly one byte representation and
//! byte-for-byte comparisons of re-encoded state are meaningful.

use super::{FrameErrorKind, StoreError};
use crate::ott::{ObjectId, OttRow};
use crate::reading::RawReading;
use std::io::{self, Read};

/// Upper bound on a single frame's payload. Tracker-state rows are tens
/// of bytes; only the AR-tree blob grows with data size.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Frame tags. Stable on-disk values — append only, never renumber.
pub mod tag {
    /// Tracker configuration (`max_gap`, lateness, watermark, …).
    pub const CONFIG: u8 = 1;
    /// A closed OTT row (`object, device, ts, te`).
    pub const CLOSED_ROW: u8 = 2;
    /// An open run (`object, device, ts, te`).
    pub const OPEN_RUN: u8 = 3;
    /// A reading buffered in the reorder heap (`object, device, t`).
    pub const PENDING: u8 = 4;
    /// A raw reading appended to the WAL (`object, device, t`).
    pub const READING: u8 = 5;
    /// Snapshot metadata (`wal_seq`).
    pub const META: u8 = 6;
    /// Serialized flat AR-tree (entry array + node array).
    pub const ARTREE: u8 = 7;
    /// Commit marker: row counts, proving the file was written to the
    /// end. A file without it is torn by definition.
    pub const END: u8 = 8;
    /// One sealed-segment entry in a manifest (`base_row, row_count,
    /// t_min, t_max, file_len, file_crc, flags`).
    pub const SEGMENT: u8 = 9;
}

/// CRC-32 (ISO-HDLC / zlib), table-driven, reflected, init and xorout
/// `0xFFFF_FFFF`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit over a byte slice: the cheap, dependency-free digest
/// used for engine/shard state hashes in the record/replay harness.
/// Not error-detecting like [`crc32`] (frames keep their CRC); this is
/// for *comparing* two deterministic encodings, not validating one.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends one frame (`tag | len | payload | crc`) to `out`.
pub fn write_frame(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    let start = out.len();
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Reads the remainder of a streamed frame whose tag byte was already
/// consumed (`len | payload | crc`), verifying the length bound and the
/// checksum. The streaming twin of [`FrameReader`], shared by the TCP
/// protocol so raw length/CRC parsing stays in this module.
pub fn read_body_from(r: &mut impl Read, tag: u8) -> io::Result<Vec<u8>> {
    let bad = |reason: String| io::Error::new(io::ErrorKind::InvalidData, reason);
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(bad(format!("oversized frame payload ({len} bytes)")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    let mut check = Vec::with_capacity(5 + len);
    check.push(tag);
    check.extend_from_slice(&len_bytes);
    check.extend_from_slice(&payload);
    if crc32(&check) != u32::from_le_bytes(crc_bytes) {
        return Err(bad("frame checksum mismatch".to_string()));
    }
    Ok(payload)
}

/// A decoded frame borrowing its payload from the underlying buffer.
#[derive(Debug, Clone, Copy)]
pub struct Frame<'a> {
    /// Byte offset of the frame within the buffer (error reporting).
    pub offset: usize,
    pub tag: u8,
    pub payload: &'a [u8],
}

impl Frame<'_> {
    /// Byte offset one past this frame (tag + len + payload + crc).
    pub fn end_offset(&self) -> usize {
        self.offset + 5 + self.payload.len() + 4
    }
}

/// Iterator over the frames of a byte buffer. Each item is either a
/// decoded frame or the typed error that stopped the scan; after an error
/// the iterator is exhausted.
pub struct FrameReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    failed: bool,
}

impl<'a> FrameReader<'a> {
    /// Reads frames starting at `pos` within `bytes`.
    pub fn new(bytes: &'a [u8], pos: usize) -> FrameReader<'a> {
        FrameReader { bytes, pos, failed: false }
    }

    /// Current read offset (the start of the next frame — after an `Err`,
    /// the offset of the bad frame; after clean exhaustion, the buffer
    /// length).
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn fail(&mut self, kind: FrameErrorKind) -> Option<Result<Frame<'a>, StoreError>> {
        self.failed = true;
        Some(Err(StoreError::Frame { offset: self.pos, kind }))
    }
}

impl<'a> Iterator for FrameReader<'a> {
    type Item = Result<Frame<'a>, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.pos >= self.bytes.len() {
            return None;
        }
        let rest = &self.bytes[self.pos..];
        if rest.len() < 5 {
            return self.fail(FrameErrorKind::Truncated);
        }
        let len = u32::from_le_bytes(rest[1..5].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return self.fail(FrameErrorKind::Oversized);
        }
        let total = 5 + len + 4;
        if rest.len() < total {
            return self.fail(FrameErrorKind::Truncated);
        }
        let stored = u32::from_le_bytes(rest[5 + len..total].try_into().expect("4 bytes"));
        if crc32(&rest[..5 + len]) != stored {
            return self.fail(FrameErrorKind::Checksum);
        }
        let frame = Frame { offset: self.pos, tag: rest[0], payload: &rest[5..5 + len] };
        self.pos += total;
        Some(Ok(frame))
    }
}

// ---- fixed-width payload codecs ------------------------------------------

/// Little-endian cursor over a payload, with typed, offset-carrying
/// errors instead of panics.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    frame_offset: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(frame: &Frame<'a>) -> Cursor<'a> {
        Cursor { bytes: frame.payload, pos: 0, frame_offset: frame.offset }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.pos + n > self.bytes.len() {
            return Err(self.bad(format!("payload too short for {what}")));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// A decode error at this frame's offset.
    pub fn bad(&self, reason: String) -> StoreError {
        StoreError::Decode { offset: self.frame_offset, reason }
    }

    pub fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    /// A `u32` element count validated against the remaining payload:
    /// `n * elem_width` must fit in the unconsumed bytes (`elem_width`
    /// is the minimum encoded size of one element), so a corrupt length
    /// cannot drive `Vec::with_capacity` or a read loop past the frame.
    pub fn count(&mut self, what: &str, elem_width: usize) -> Result<usize, StoreError> {
        let n = self.u32(what)? as usize;
        match n.checked_mul(elem_width) {
            Some(need) if need <= self.bytes.len() - self.pos => Ok(n),
            _ => Err(self.bad(format!("{what} {n} exceeds remaining payload"))),
        }
    }

    pub fn f64(&mut self, what: &str) -> Result<f64, StoreError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    /// An `f64` that must be finite (timestamps in rows and readings).
    pub fn finite_f64(&mut self, what: &str) -> Result<f64, StoreError> {
        let v = self.f64(what)?;
        if !v.is_finite() {
            return Err(self.bad(format!("non-finite {what}")));
        }
        Ok(v)
    }

    /// The unconsumed remainder of the payload, consuming it — for
    /// delegating a variable-length tail to another decoder.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = self.bytes.get(self.pos..).unwrap_or_default();
        self.pos = self.bytes.len();
        s
    }

    /// True when the payload is fully consumed — lets decoders branch
    /// on an optional trailing section (e.g. version-negotiated protocol
    /// extensions) without raw length arithmetic at the call site.
    pub fn is_empty(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Rejects trailing bytes — a frame must be consumed exactly.
    pub fn done(&self) -> Result<(), StoreError> {
        if self.pos != self.bytes.len() {
            return Err(self.bad(format!("{} trailing payload bytes", self.bytes.len() - self.pos)));
        }
        Ok(())
    }
}

/// Encodes an interval row (`CLOSED_ROW` / `OPEN_RUN`): 24 bytes.
pub fn encode_row(row: &OttRow) -> [u8; 24] {
    let mut b = [0u8; 24];
    b[0..4].copy_from_slice(&row.object.0.to_le_bytes());
    b[4..8].copy_from_slice(&row.device.0.to_le_bytes());
    b[8..16].copy_from_slice(&row.ts.to_le_bytes());
    b[16..24].copy_from_slice(&row.te.to_le_bytes());
    b
}

/// Decodes an interval row, validating finite, ordered endpoints.
pub fn decode_row(frame: &Frame<'_>) -> Result<OttRow, StoreError> {
    let mut c = Cursor::new(frame);
    let row = OttRow {
        object: ObjectId(c.u32("object")?),
        device: inflow_indoor::DeviceId(c.u32("device")?),
        ts: c.finite_f64("ts")?,
        te: c.finite_f64("te")?,
    };
    c.done()?;
    if row.te < row.ts {
        return Err(StoreError::Decode {
            offset: frame.offset,
            reason: format!("reversed interval [{}, {}]", row.ts, row.te),
        });
    }
    Ok(row)
}

/// Encodes an `END` commit marker's row counts: 24 bytes.
pub fn encode_counts(closed: u64, open: u64, pending: u64) -> [u8; 24] {
    let mut b = [0u8; 24];
    b[0..8].copy_from_slice(&closed.to_le_bytes());
    b[8..16].copy_from_slice(&open.to_le_bytes());
    b[16..24].copy_from_slice(&pending.to_le_bytes());
    b
}

/// Decodes an `END` commit marker into `(closed, open, pending)` counts.
pub fn decode_counts(frame: &Frame<'_>) -> Result<(u64, u64, u64), StoreError> {
    let mut c = Cursor::new(frame);
    let counts = (c.u64("closed count")?, c.u64("open count")?, c.u64("pending count")?);
    c.done()?;
    Ok(counts)
}

/// Encodes a raw reading (`READING` / `PENDING`): 16 bytes.
pub fn encode_reading(r: &RawReading) -> [u8; 16] {
    let mut b = [0u8; 16];
    b[0..4].copy_from_slice(&r.object.0.to_le_bytes());
    b[4..8].copy_from_slice(&r.device.0.to_le_bytes());
    b[8..16].copy_from_slice(&r.t.to_le_bytes());
    b
}

/// Decodes a raw reading, validating a finite timestamp.
pub fn decode_reading(frame: &Frame<'_>) -> Result<RawReading, StoreError> {
    let mut c = Cursor::new(frame);
    let r = RawReading {
        object: ObjectId(c.u32("object")?),
        device: inflow_indoor::DeviceId(c.u32("device")?),
        t: c.finite_f64("t")?,
    };
    c.done()?;
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::READING, &[1, 2, 3]);
        write_frame(&mut buf, tag::END, &[]);
        let frames: Vec<_> =
            FrameReader::new(&buf, 0).collect::<Result<Vec<_>, _>>().expect("clean buffer");
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].tag, tag::READING);
        assert_eq!(frames[0].payload, &[1, 2, 3]);
        assert_eq!(frames[1].tag, tag::END);
        assert!(frames[1].payload.is_empty());
    }

    #[test]
    fn every_truncation_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::READING, &[9; 16]);
        for cut in 1..buf.len() {
            let r: Result<Vec<_>, _> = FrameReader::new(&buf[..cut], 0).collect();
            assert!(r.is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::CLOSED_ROW, &[7; 24]);
        for i in 0..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[i] ^= 1 << bit;
                let r: Result<Vec<_>, _> = FrameReader::new(&bad, 0).collect();
                // A flipped length field may also yield Truncated or
                // Oversized; any typed error is acceptable, silence is not.
                assert!(r.is_err(), "flip at byte {i} bit {bit} accepted");
            }
        }
    }

    #[test]
    fn oversized_length_is_bounded() {
        let mut buf = vec![tag::ARTREE];
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let r: Result<Vec<_>, _> = FrameReader::new(&buf, 0).collect();
        assert!(matches!(r, Err(StoreError::Frame { kind: FrameErrorKind::Oversized, .. })));
    }

    #[test]
    fn row_and_reading_codecs_round_trip() {
        let row =
            OttRow { object: ObjectId(7), device: inflow_indoor::DeviceId(3), ts: 1.25, te: 9.5 };
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::CLOSED_ROW, &encode_row(&row));
        let frame = FrameReader::new(&buf, 0).next().unwrap().unwrap();
        assert_eq!(decode_row(&frame).unwrap(), row);

        let r = RawReading { object: ObjectId(1), device: inflow_indoor::DeviceId(2), t: 0.5 };
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::READING, &encode_reading(&r));
        let frame = FrameReader::new(&buf, 0).next().unwrap().unwrap();
        assert_eq!(decode_reading(&frame).unwrap(), r);
    }

    #[test]
    fn non_finite_payload_values_rejected() {
        let row = OttRow {
            object: ObjectId(7),
            device: inflow_indoor::DeviceId(3),
            ts: f64::NAN,
            te: 9.5,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::CLOSED_ROW, &encode_row(&row));
        let frame = FrameReader::new(&buf, 0).next().unwrap().unwrap();
        assert!(matches!(decode_row(&frame), Err(StoreError::Decode { .. })));
    }
}
