//! Deterministic fault injection for the durability layer.
//!
//! The store performs all I/O through the [`Fs`] trait. Production code
//! uses [`StdFs`] (real files, real fsync). Tests use [`FailpointFs`]: an
//! in-memory file system with a *kill switch* — arm it with
//! [`FailpointFs::arm`] and the Nth mutating operation fails, committing
//! only a prefix of the bytes when that operation is a write (a torn
//! write), after which every further operation fails too (the process
//! model is dead). Because operations are counted deterministically, a
//! test can enumerate *every* crash point of a workload: run once clean to
//! learn the operation count, then re-run with `kill_at = 1, 2, …` and
//! assert recovery invariants at each.
//!
//! [`FailpointWriter`] is the same idea for plain `io::Write` sinks
//! (e.g. tracker checkpoints written to a buffer).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// The file-system surface the store needs. Deliberately small: create /
/// append / read / sync / atomic-rename / truncate / list.
pub trait Fs {
    /// Readable and writable file handle.
    type File: Read + Write;

    /// Creates the directory (and parents) if missing.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Self::File>;
    /// Opens a file for appending.
    fn open_append(&self, path: &Path) -> io::Result<Self::File>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Durably flushes a file handle (fsync).
    fn sync(&self, file: &mut Self::File) -> io::Result<()>;
    /// Atomically replaces `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Truncates a file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// The files directly inside `dir` (no recursion), in sorted order.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// The real file system.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdFs;

impl Fs for StdFs {
    type File = std::fs::File;

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn create(&self, path: &Path) -> io::Result<Self::File> {
        std::fs::File::create(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Self::File> {
        std::fs::OpenOptions::new().append(true).open(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn sync(&self, file: &mut Self::File) -> io::Result<()> {
        file.flush()?;
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

#[derive(Debug, Default)]
struct FailpointState {
    files: BTreeMap<PathBuf, Vec<u8>>,
    /// Mutating operations performed since the last [`FailpointFs::arm`].
    ops: u64,
    /// Fail the `kill_at`-th mutating operation (1-based); `None` = never.
    kill_at: Option<u64>,
    /// Set once the failpoint fired: the process model is dead and every
    /// operation (reads included) fails until [`FailpointFs::disarm`].
    killed: bool,
}

impl FailpointState {
    /// Ticks the mutating-operation counter; `Err` when this operation is
    /// the one that kills the process model (or it is already dead).
    fn tick(&mut self) -> io::Result<()> {
        self.check_alive()?;
        self.ops += 1;
        if self.kill_at == Some(self.ops) {
            self.killed = true;
            return Err(killed_err("failpoint: crashed at operation"));
        }
        Ok(())
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.killed {
            return Err(killed_err("failpoint: process killed"));
        }
        Ok(())
    }
}

fn killed_err(msg: &str) -> io::Error {
    io::Error::other(msg.to_string())
}

/// In-memory file system with a deterministic kill switch. Cloning shares
/// the underlying state, so the store and the test observe the same files.
#[derive(Debug, Clone, Default)]
pub struct FailpointFs {
    state: Rc<RefCell<FailpointState>>,
}

impl FailpointFs {
    pub fn new() -> FailpointFs {
        FailpointFs::default()
    }

    /// Arms the kill switch: the `kill_at`-th mutating operation from now
    /// (1-based) fails, and everything after it fails too. Resets the
    /// operation counter.
    pub fn arm(&self, kill_at: u64) {
        let mut s = self.state.borrow_mut();
        s.ops = 0;
        s.kill_at = Some(kill_at);
        s.killed = false;
    }

    /// Disarms the kill switch and revives the process model ("reboot");
    /// surviving bytes are kept as-is. Resets the operation counter.
    pub fn disarm(&self) {
        let mut s = self.state.borrow_mut();
        s.ops = 0;
        s.kill_at = None;
        s.killed = false;
    }

    /// Mutating operations performed since the last arm/disarm.
    pub fn ops(&self) -> u64 {
        self.state.borrow().ops
    }

    /// Whether the armed failpoint has fired.
    pub fn crashed(&self) -> bool {
        self.state.borrow().killed
    }

    /// Raw contents of a file, for tests that corrupt bytes directly.
    pub fn dump(&self, path: &Path) -> Option<Vec<u8>> {
        self.state.borrow().files.get(path).cloned()
    }

    /// Overwrites a file's raw contents (bypasses failpoints).
    pub fn store_raw(&self, path: &Path, bytes: Vec<u8>) {
        self.state.borrow_mut().files.insert(path.to_path_buf(), bytes);
    }
}

/// Handle into a [`FailpointFs`] file. Writes append at the end of the
/// file (both fresh-create and append handles write sequentially); reads
/// advance an independent position.
#[derive(Debug)]
pub struct FailpointFile {
    state: Rc<RefCell<FailpointState>>,
    path: PathBuf,
    read_pos: usize,
}

impl Read for FailpointFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let s = self.state.borrow();
        s.check_alive()?;
        let Some(bytes) = s.files.get(&self.path) else {
            return Err(io::Error::new(io::ErrorKind::NotFound, "file removed"));
        };
        let n = buf.len().min(bytes.len().saturating_sub(self.read_pos));
        buf[..n].copy_from_slice(&bytes[self.read_pos..self.read_pos + n]);
        self.read_pos += n;
        Ok(n)
    }
}

impl Write for FailpointFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut s = self.state.borrow_mut();
        match s.tick() {
            Ok(()) => {
                s.files.entry(self.path.clone()).or_default().extend_from_slice(buf);
                Ok(buf.len())
            }
            Err(e) => {
                // A torn write: the dying process committed only a prefix.
                if s.killed && s.kill_at == Some(s.ops) {
                    let torn = buf.len() / 2;
                    s.files.entry(self.path.clone()).or_default().extend_from_slice(&buf[..torn]);
                }
                Err(e)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.state.borrow().check_alive()
    }
}

impl Fs for FailpointFs {
    type File = FailpointFile;

    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        // Directories are implicit; still honour a fired failpoint.
        self.state.borrow().check_alive()
    }

    fn create(&self, path: &Path) -> io::Result<Self::File> {
        let mut s = self.state.borrow_mut();
        s.tick()?;
        s.files.insert(path.to_path_buf(), Vec::new());
        Ok(FailpointFile { state: Rc::clone(&self.state), path: path.to_path_buf(), read_pos: 0 })
    }

    fn open_append(&self, path: &Path) -> io::Result<Self::File> {
        let s = self.state.borrow();
        s.check_alive()?;
        if !s.files.contains_key(path) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "no such file"));
        }
        Ok(FailpointFile { state: Rc::clone(&self.state), path: path.to_path_buf(), read_pos: 0 })
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let s = self.state.borrow();
        s.check_alive()?;
        s.files
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn sync(&self, _file: &mut Self::File) -> io::Result<()> {
        self.state.borrow_mut().tick()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.state.borrow_mut();
        // Atomic: if the operation dies, it simply did not happen.
        s.tick()?;
        let Some(bytes) = s.files.remove(from) else {
            return Err(io::Error::new(io::ErrorKind::NotFound, "rename source missing"));
        };
        s.files.insert(to.to_path_buf(), bytes);
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut s = self.state.borrow_mut();
        s.tick()?;
        let Some(bytes) = s.files.get_mut(path) else {
            return Err(io::Error::new(io::ErrorKind::NotFound, "no such file"));
        };
        bytes.truncate(len as usize);
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let s = self.state.borrow();
        s.check_alive()?;
        Ok(s.files.keys().filter(|p| p.parent() == Some(dir)).cloned().collect())
    }

    fn exists(&self, path: &Path) -> bool {
        self.state.borrow().files.contains_key(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.borrow_mut();
        s.tick()?;
        if s.files.remove(path).is_none() {
            return Err(io::Error::new(io::ErrorKind::NotFound, "no such file"));
        }
        Ok(())
    }
}

/// An `io::Write` adaptor that fails the `fail_at`-th write call
/// (1-based), committing only half of that write's bytes (a torn write),
/// and every call after it. For checkpoint-to-buffer torn-write tests.
#[derive(Debug)]
pub struct FailpointWriter<W> {
    inner: W,
    writes: u64,
    fail_at: u64,
    dead: bool,
}

impl<W: Write> FailpointWriter<W> {
    pub fn new(inner: W, fail_at: u64) -> FailpointWriter<W> {
        FailpointWriter { inner, writes: 0, fail_at, dead: false }
    }

    /// Write calls observed so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Unwraps the inner writer (what survived the crash).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailpointWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(killed_err("failpoint: writer dead"));
        }
        self.writes += 1;
        if self.writes == self.fail_at {
            self.dead = true;
            self.inner.write_all(&buf[..buf.len() / 2])?;
            return Err(killed_err("failpoint: torn write"));
        }
        self.inner.write_all(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(killed_err("failpoint: writer dead"));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_fs_round_trips_files() {
        let fs = FailpointFs::new();
        let dir = Path::new("/store");
        fs.create_dir_all(dir).unwrap();
        let mut f = fs.create(&dir.join("a.bin")).unwrap();
        f.write_all(b"hello").unwrap();
        fs.sync(&mut f).unwrap();
        drop(f);
        let mut f = fs.open_append(&dir.join("a.bin")).unwrap();
        f.write_all(b" world").unwrap();
        assert_eq!(fs.read(&dir.join("a.bin")).unwrap(), b"hello world");
        assert_eq!(fs.list(dir).unwrap(), vec![dir.join("a.bin")]);
    }

    #[test]
    fn kill_at_nth_op_is_deterministic_and_torn() {
        let run = |kill_at: u64| {
            let fs = FailpointFs::new();
            fs.arm(kill_at);
            let path = Path::new("/f");
            let r = (|| -> io::Result<()> {
                let mut f = fs.create(path)?; // op 1
                f.write_all(&[0xAB; 8])?; // op 2
                f.write_all(&[0xCD; 8])?; // op 3
                fs.sync(&mut f)?; // op 4
                Ok(())
            })();
            (r.is_err(), fs.dump(path).map(|b| b.len()))
        };
        assert_eq!(run(1), (true, None)); // create itself died
        assert_eq!(run(2), (true, Some(4))); // torn first write: half of 8
        assert_eq!(run(3), (true, Some(12))); // 8 + half of 8
        assert_eq!(run(4), (true, Some(16))); // sync died, bytes in place
        assert_eq!(run(5), (false, Some(16))); // clean run
    }

    #[test]
    fn killed_fs_refuses_everything_until_disarm() {
        let fs = FailpointFs::new();
        fs.arm(1);
        assert!(fs.create(Path::new("/x")).is_err());
        assert!(fs.read(Path::new("/x")).is_err());
        assert!(fs.list(Path::new("/")).is_err());
        fs.disarm();
        assert!(fs.create(Path::new("/x")).is_ok());
    }

    #[test]
    fn rename_is_atomic_under_crash() {
        let fs = FailpointFs::new();
        let mut f = fs.create(Path::new("/a.tmp")).unwrap();
        f.write_all(b"payload").unwrap();
        drop(f);
        fs.arm(1);
        assert!(fs.rename(Path::new("/a.tmp"), Path::new("/a")).is_err());
        fs.disarm();
        // The rename did not happen at all: source intact, target absent.
        assert!(fs.exists(Path::new("/a.tmp")));
        assert!(!fs.exists(Path::new("/a")));
    }

    #[test]
    fn failpoint_writer_tears_the_nth_write() {
        let mut w = FailpointWriter::new(Vec::new(), 2);
        w.write_all(&[1; 10]).unwrap();
        assert!(w.write_all(&[2; 10]).is_err());
        assert!(w.write_all(&[3; 10]).is_err());
        let buf = w.into_inner();
        assert_eq!(buf.len(), 15); // 10 + torn half of 10
    }
}
