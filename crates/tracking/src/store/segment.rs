//! Immutable time-partitioned segment files: the frozen tier of the
//! store.
//!
//! A segment seals a fixed, contiguous range of the tracker's closed-row
//! log — rows `[base_row, base_row + row_count)` in closure order — into
//! one self-verifying file:
//!
//! ```text
//! "IFSEG001" | META (base_row: u64, row_count: u64, t_min: f64,
//!            |       t_max: f64)
//!            | CLOSED_ROW*            (one frame per sealed row)
//!            | ARTREE                 (flat AR-tree over exactly these rows)
//!            | END (row counts)
//! ```
//!
//! Segments are written once by compaction ([`super::compact`]) and never
//! modified; every byte is covered by a frame CRC, the whole file by the
//! manifest's file-level CRC, and the embedded AR-tree re-validates
//! structurally on load — so bit rot anywhere surfaces as a typed error,
//! never a silently different answer. Like snapshots (and unlike the
//! WAL) there is no partial credit: a segment that fails any check is
//! rejected whole, and the scrubber quarantines it.

use super::frame::{self, tag, Cursor, FrameReader};
use super::StoreError;
use crate::artree::ArTree;
use crate::ott::{ObjectTrackingTable, OttRow};

/// Magic prefix of a segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"IFSEG001";

/// File-name suffix of segment files (`seg-<base_row>.seg`).
pub const SEGMENT_SUFFIX: &str = ".seg";

/// The canonical file name of the segment sealing `row_count` rows from
/// `base_row`. The count is part of the name so a merge — which reuses
/// the base row of its first input — writes a *new* file and never
/// clobbers one the current manifest still references.
pub fn file_name(base_row: u64, row_count: u64) -> String {
    format!("seg-{base_row:020}-{row_count:010}{SEGMENT_SUFFIX}")
}

/// Header of a sealed segment: which closed-row range it covers and the
/// time span of those rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentMeta {
    /// Index of the first sealed row in the store's closed-row log.
    pub base_row: u64,
    /// Number of rows sealed in this segment (always ≥ 1).
    pub row_count: u64,
    /// Minimum `ts` across the sealed rows.
    pub t_min: f64,
    /// Maximum `te` across the sealed rows.
    pub t_max: f64,
}

/// A fully decoded, validated segment.
#[derive(Debug)]
pub struct SegmentData {
    pub meta: SegmentMeta,
    /// The sealed rows, in closure order (the order they were appended to
    /// the closed-row log).
    pub rows: Vec<OttRow>,
    /// The OTT over exactly the sealed rows.
    pub ott: ObjectTrackingTable,
    /// The AR-tree reloaded from its flat serialization.
    pub artree: ArTree,
}

fn encode_meta(meta: &SegmentMeta) -> Vec<u8> {
    let mut b = Vec::with_capacity(32);
    b.extend_from_slice(&meta.base_row.to_le_bytes());
    b.extend_from_slice(&meta.row_count.to_le_bytes());
    b.extend_from_slice(&meta.t_min.to_le_bytes());
    b.extend_from_slice(&meta.t_max.to_le_bytes());
    b
}

fn decode_meta(f: &frame::Frame<'_>) -> Result<SegmentMeta, StoreError> {
    let mut c = Cursor::new(f);
    let meta = SegmentMeta {
        base_row: c.u64("base row")?,
        row_count: c.u64("row count")?,
        t_min: c.finite_f64("t_min")?,
        t_max: c.finite_f64("t_max")?,
    };
    c.done()?;
    if meta.row_count == 0 {
        return Err(StoreError::Decode { offset: f.offset, reason: "empty segment".into() });
    }
    if meta.t_max < meta.t_min {
        return Err(StoreError::Decode {
            offset: f.offset,
            reason: format!("reversed time span [{}, {}]", meta.t_min, meta.t_max),
        });
    }
    Ok(meta)
}

/// Seals `rows` (the closed-log slice starting at `base_row`) into a
/// segment byte image, returning the header alongside the bytes so the
/// caller can build the manifest entry without recomputing spans. Fails
/// on an empty slice or rows that violate the OTT invariants — a sealed
/// segment must be independently queryable.
pub fn encode(base_row: u64, rows: &[OttRow]) -> Result<(SegmentMeta, Vec<u8>), StoreError> {
    if rows.is_empty() {
        return Err(StoreError::InvalidState { reason: "cannot seal an empty segment".into() });
    }
    let ott = ObjectTrackingTable::from_rows(rows.to_vec())
        .map_err(|e| StoreError::InvalidState { reason: format!("sealing rows: {e}") })?;
    let artree = ArTree::build(&ott);
    let t_min = rows.iter().map(|r| r.ts).fold(f64::INFINITY, f64::min);
    let t_max = rows.iter().map(|r| r.te).fold(f64::NEG_INFINITY, f64::max);
    let meta = SegmentMeta { base_row, row_count: rows.len() as u64, t_min, t_max };
    let mut buf = Vec::new();
    buf.extend_from_slice(SEGMENT_MAGIC);
    frame::write_frame(&mut buf, tag::META, &encode_meta(&meta));
    for row in rows {
        frame::write_frame(&mut buf, tag::CLOSED_ROW, &frame::encode_row(row));
    }
    frame::write_frame(&mut buf, tag::ARTREE, &artree.to_flat_bytes(ott.len()));
    frame::write_frame(&mut buf, tag::END, &frame::encode_counts(rows.len() as u64, 0, 0));
    Ok((meta, buf))
}

/// Decodes and validates a segment buffer. Strict like a snapshot: every
/// frame checksum-clean and in order, the `END` counts matching, the
/// AR-tree structurally valid and covering exactly the sealed rows, the
/// header's row count and time span matching the rows. Any deviation is
/// a typed error — a segment is either whole or rejected.
pub fn decode(bytes: &[u8]) -> Result<SegmentData, StoreError> {
    let (meta, rows, artree_bytes, offset) = walk(bytes)?;
    let ott = ObjectTrackingTable::from_rows(rows.clone())
        .map_err(|e| StoreError::Decode { offset, reason: format!("inconsistent rows: {e}") })?;
    let (artree, ott_len) = ArTree::from_flat_bytes(artree_bytes)
        .map_err(|e| StoreError::Decode { offset, reason: e.to_string() })?;
    if ott_len != ott.len() || artree.len() != ott.len() {
        return Err(StoreError::Decode {
            offset,
            reason: format!(
                "AR-tree covers {} records over a {}-record segment ({} entries)",
                ott_len,
                ott.len(),
                artree.len()
            ),
        });
    }
    Ok(SegmentData { meta, rows, ott, artree })
}

/// Decodes only the header (meta) frame: magic plus the first frame's
/// checksum and fields. The cheap identity check the background scrubber
/// pairs with a whole-file CRC — everything after the header is covered
/// by that CRC, so re-walking every row frame adds cost, not safety.
pub fn decode_header(bytes: &[u8]) -> Result<SegmentMeta, StoreError> {
    if !bytes.starts_with(SEGMENT_MAGIC) {
        return Err(StoreError::BadMagic { what: "segment" });
    }
    let mut reader = FrameReader::new(bytes, SEGMENT_MAGIC.len());
    let head = reader.next().ok_or(StoreError::Decode {
        offset: SEGMENT_MAGIC.len(),
        reason: "missing meta frame".into(),
    })??;
    if head.tag != tag::META {
        return Err(StoreError::Decode {
            offset: head.offset,
            reason: format!("expected meta frame, found tag {}", head.tag),
        });
    }
    decode_meta(&head)
}

/// [`decode`] minus the per-segment OTT materialization: the same strict
/// structural walk and AR-tree validation, returning the sealed rows
/// directly. Sealing already proved the OTT invariants over these exact
/// bytes (the manifest CRC ties them together), so read paths that fold
/// the rows into a larger table — and the scrubber, which discards them
/// — need not rebuild a table per segment.
pub fn decode_rows(bytes: &[u8]) -> Result<(SegmentMeta, Vec<OttRow>), StoreError> {
    let (meta, rows, artree_bytes, offset) = walk(bytes)?;
    let (artree, ott_len) = ArTree::from_flat_bytes(artree_bytes)
        .map_err(|e| StoreError::Decode { offset, reason: e.to_string() })?;
    if ott_len != rows.len() || artree.len() != rows.len() {
        return Err(StoreError::Decode {
            offset,
            reason: format!(
                "AR-tree covers {} records over a {}-row segment ({} entries)",
                ott_len,
                rows.len(),
                artree.len()
            ),
        });
    }
    Ok((meta, rows))
}

/// The shared structural pass: magic, frame-by-frame CRC, ordering, END
/// counts, and header-vs-rows consistency. Returns the decoded header,
/// rows, the raw AR-tree payload and the end offset.
#[allow(clippy::type_complexity)]
fn walk(bytes: &[u8]) -> Result<(SegmentMeta, Vec<OttRow>, &[u8], usize), StoreError> {
    if !bytes.starts_with(SEGMENT_MAGIC) {
        return Err(StoreError::BadMagic { what: "segment" });
    }
    let mut reader = FrameReader::new(bytes, SEGMENT_MAGIC.len());

    let head = reader.next().ok_or(StoreError::Decode {
        offset: SEGMENT_MAGIC.len(),
        reason: "missing meta frame".into(),
    })??;
    if head.tag != tag::META {
        return Err(StoreError::Decode {
            offset: head.offset,
            reason: format!("expected meta frame, found tag {}", head.tag),
        });
    }
    let meta = decode_meta(&head)?;

    let mut rows: Vec<OttRow> = Vec::new();
    let mut artree_bytes: Option<&[u8]> = None;
    let mut committed = false;
    for item in reader.by_ref() {
        let f = item?;
        if committed {
            return Err(StoreError::Decode {
                offset: f.offset,
                reason: "frame after END marker".into(),
            });
        }
        match f.tag {
            tag::CLOSED_ROW if artree_bytes.is_none() => rows.push(frame::decode_row(&f)?),
            tag::ARTREE if artree_bytes.is_none() => artree_bytes = Some(f.payload),
            tag::END if artree_bytes.is_some() => {
                let expected = frame::decode_counts(&f)?;
                if expected != (rows.len() as u64, 0, 0) {
                    return Err(StoreError::Decode {
                        offset: f.offset,
                        reason: format!(
                            "END counts {expected:?} do not match {} decoded rows",
                            rows.len()
                        ),
                    });
                }
                committed = true;
            }
            other => {
                return Err(StoreError::Decode {
                    offset: f.offset,
                    reason: format!("unexpected frame tag {other}"),
                });
            }
        }
    }
    let offset = reader.offset();
    if !committed {
        return Err(StoreError::MissingCommit { offset });
    }
    if rows.len() as u64 != meta.row_count {
        return Err(StoreError::Decode {
            offset,
            reason: format!("header claims {} rows, file holds {}", meta.row_count, rows.len()),
        });
    }
    let t_min = rows.iter().map(|r| r.ts).fold(f64::INFINITY, f64::min);
    let t_max = rows.iter().map(|r| r.te).fold(f64::NEG_INFINITY, f64::max);
    if t_min != meta.t_min || t_max != meta.t_max {
        return Err(StoreError::Decode {
            offset,
            reason: format!(
                "header time span [{}, {}] does not match rows [{t_min}, {t_max}]",
                meta.t_min, meta.t_max
            ),
        });
    }
    let Some(artree_bytes) = artree_bytes else {
        return Err(StoreError::Decode { offset, reason: "missing AR-tree frame".into() });
    };
    Ok((meta, rows, artree_bytes, offset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ott::ObjectId;
    use inflow_indoor::DeviceId;

    fn row(o: u32, d: u32, ts: f64, te: f64) -> OttRow {
        OttRow { object: ObjectId(o), device: DeviceId(d), ts, te }
    }

    fn sample_rows() -> Vec<OttRow> {
        vec![
            row(1, 1, 0.0, 2.0),
            row(2, 1, 1.0, 3.0),
            row(1, 2, 4.0, 6.5),
            row(3, 3, 5.0, 5.0),
            row(2, 2, 7.0, 9.0),
        ]
    }

    #[test]
    fn segment_round_trips_rows_meta_and_artree() {
        let rows = sample_rows();
        let (meta, bytes) = encode(16, &rows).unwrap();
        let seg = decode(&bytes).unwrap();
        assert_eq!(seg.meta, meta);
        assert_eq!(seg.meta.base_row, 16);
        assert_eq!(seg.meta.row_count, 5);
        assert_eq!(seg.meta.t_min, 0.0);
        assert_eq!(seg.meta.t_max, 9.0);
        assert_eq!(seg.rows, rows);
        let rebuilt = ArTree::build(&seg.ott);
        assert_eq!(seg.artree.entries(), rebuilt.entries());
    }

    #[test]
    fn empty_segment_is_rejected_at_encode() {
        assert!(matches!(encode(0, &[]), Err(StoreError::InvalidState { .. })));
    }

    #[test]
    fn truncation_at_every_byte_is_rejected() {
        let (_, bytes) = encode(0, &sample_rows()).unwrap();
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "prefix {cut}/{} accepted", bytes.len());
        }
    }

    #[test]
    fn bit_flip_anywhere_is_rejected_never_wrong() {
        let rows = sample_rows();
        let (_, bytes) = encode(0, &rows).unwrap();
        for i in 0..bytes.len() {
            for bit in [0, 5] {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                match decode(&bad) {
                    Err(_) => {}
                    Ok(seg) => {
                        panic!(
                            "flip at byte {i} bit {bit} decoded; rows match: {}",
                            seg.rows == rows
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mismatched_header_count_is_rejected() {
        // Re-encode with a doctored META frame claiming one more row.
        let rows = sample_rows();
        let meta =
            SegmentMeta { base_row: 0, row_count: rows.len() as u64 + 1, t_min: 0.0, t_max: 9.0 };
        let ott = ObjectTrackingTable::from_rows(rows.clone()).unwrap();
        let artree = ArTree::build(&ott);
        let mut buf = Vec::new();
        buf.extend_from_slice(SEGMENT_MAGIC);
        frame::write_frame(&mut buf, tag::META, &encode_meta(&meta));
        for r in &rows {
            frame::write_frame(&mut buf, tag::CLOSED_ROW, &frame::encode_row(r));
        }
        frame::write_frame(&mut buf, tag::ARTREE, &artree.to_flat_bytes(ott.len()));
        frame::write_frame(&mut buf, tag::END, &frame::encode_counts(rows.len() as u64, 0, 0));
        assert!(matches!(decode(&buf), Err(StoreError::Decode { .. })));
    }

    #[test]
    fn file_names_sort_in_base_row_order_and_differ_by_count() {
        assert!(file_name(0, 8) < file_name(9, 8));
        assert!(file_name(9, 8) < file_name(10, 8));
        assert!(file_name(99, 8) < file_name(1_000_000, 8));
        assert_ne!(file_name(0, 8), file_name(0, 32));
    }
}
