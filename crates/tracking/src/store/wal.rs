//! The write-ahead log: an append-only record of every raw reading.
//!
//! Layout:
//!
//! ```text
//! "IFWAL001" | CONFIG frame | META frame (base_seq: u64) | READING frame*
//! ```
//!
//! `base_seq` is the absolute sequence number of the first reading in
//! this file: the store numbers readings from 0 across the WAL's whole
//! lifetime, and after recovering from a snapshot that is ahead of a
//! damaged WAL the log is rebased so numbering stays monotone. The
//! durable reading count is therefore always `base + readings.len()`.
//!
//! Scanning is tolerant at the tail and strict at the head: a torn or
//! corrupt frame ends the valid prefix (everything after it is
//! discarded by truncation — the standard WAL rule, since nothing after
//! a bad record can be trusted), while a damaged header makes the whole
//! file unusable and recovery falls back to snapshots.

use super::frame::{self, tag, Cursor, FrameReader};
use super::StoreError;
use crate::reading::RawReading;
use crate::stream::OnlineTracker;

/// Magic prefix of a WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"IFWAL001";

/// Result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// A fresh tracker built from the `CONFIG` frame (no readings
    /// applied). Only meaningful for replay-from-scratch when `base == 0`.
    pub tracker_init: OnlineTracker,
    /// Absolute sequence number of the first reading in the file.
    pub base: u64,
    /// The valid readings, in append order.
    pub readings: Vec<RawReading>,
    /// Length of the valid prefix in bytes; the file should be truncated
    /// to this length if `truncated > 0`.
    pub valid_len: usize,
    /// Bytes past the last valid record (0 for a clean file).
    pub truncated: usize,
}

/// Encodes a complete WAL header: magic, `CONFIG`, `META(base_seq)`.
pub fn encode_header(tracker: &OnlineTracker, base_seq: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(WAL_MAGIC);
    frame::write_frame(&mut buf, tag::CONFIG, &tracker.encode_config());
    frame::write_frame(&mut buf, tag::META, &base_seq.to_le_bytes());
    buf
}

/// Encodes one appended reading as a `READING` frame.
pub fn encode_reading_frame(r: &RawReading) -> Vec<u8> {
    let mut buf = Vec::new();
    frame::write_frame(&mut buf, tag::READING, &frame::encode_reading(r));
    buf
}

/// Scans a WAL buffer. Header damage (missing magic, bad `CONFIG` /
/// `META`) is a hard error; damage after the header just ends the valid
/// prefix and is reported via `truncated`.
pub fn scan(bytes: &[u8]) -> Result<WalScan, StoreError> {
    if !bytes.starts_with(WAL_MAGIC) {
        return Err(StoreError::BadMagic { what: "WAL" });
    }
    let mut reader = FrameReader::new(bytes, WAL_MAGIC.len());

    let config = reader.next().ok_or(StoreError::Decode {
        offset: WAL_MAGIC.len(),
        reason: "missing config frame".into(),
    })??;
    if config.tag != tag::CONFIG {
        return Err(StoreError::Decode {
            offset: config.offset,
            reason: format!("expected config frame, found tag {}", config.tag),
        });
    }
    let tracker_init = OnlineTracker::from_config_frame(&config)?;

    let meta = reader.next().ok_or(StoreError::Decode {
        offset: reader.offset(),
        reason: "missing meta frame".into(),
    })??;
    if meta.tag != tag::META {
        return Err(StoreError::Decode {
            offset: meta.offset,
            reason: format!("expected meta frame, found tag {}", meta.tag),
        });
    }
    let mut c = Cursor::new(&meta);
    let base = c.u64("base sequence")?;
    c.done()?;

    let mut readings = Vec::new();
    let mut valid_len = reader.offset();
    for item in reader {
        let Ok(f) = item else { break };
        if f.tag != tag::READING {
            break;
        }
        let Ok(r) = frame::decode_reading(&f) else { break };
        readings.push(r);
        valid_len = f.end_offset();
    }
    let truncated = bytes.len() - valid_len;
    Ok(WalScan { tracker_init, base, readings, valid_len, truncated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ott::ObjectId;
    use inflow_indoor::DeviceId;

    fn reading(o: u32, d: u32, t: f64) -> RawReading {
        RawReading { object: ObjectId(o), device: DeviceId(d), t }
    }

    fn sample_wal() -> Vec<u8> {
        let mut buf = encode_header(&OnlineTracker::new(1.5), 0);
        for i in 0..10 {
            buf.extend_from_slice(&encode_reading_frame(&reading(i % 3, i % 2, i as f64)));
        }
        buf
    }

    #[test]
    fn clean_wal_scans_fully() {
        let buf = sample_wal();
        let scan = scan(&buf).unwrap();
        assert_eq!(scan.base, 0);
        assert_eq!(scan.readings.len(), 10);
        assert_eq!(scan.valid_len, buf.len());
        assert_eq!(scan.truncated, 0);
        assert_eq!(scan.readings[3], reading(0, 1, 3.0));
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_reading() {
        let header_len = encode_header(&OnlineTracker::new(1.5), 0).len();
        let buf = sample_wal();
        for cut in header_len..buf.len() {
            let scan = scan(&buf[..cut]).unwrap();
            assert!(scan.readings.len() <= 10);
            assert_eq!(scan.valid_len + scan.truncated, cut);
            // The valid prefix re-scans identically.
            let again = super::scan(&buf[..scan.valid_len]).unwrap();
            assert_eq!(again.readings.len(), scan.readings.len());
            assert_eq!(again.truncated, 0);
        }
    }

    #[test]
    fn torn_header_is_a_hard_error() {
        let header = encode_header(&OnlineTracker::new(1.5), 0);
        for cut in 0..header.len() {
            assert!(scan(&header[..cut]).is_err(), "header prefix {cut} accepted");
        }
    }

    #[test]
    fn flipped_reading_ends_valid_prefix_without_panic() {
        let buf = sample_wal();
        let header_len = encode_header(&OnlineTracker::new(1.5), 0).len();
        for i in header_len..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x10;
            let scan = scan(&bad).unwrap();
            // Everything before the flipped frame survives; nothing after
            // it is trusted.
            assert!(scan.readings.len() < 10, "flip at byte {i} went unnoticed");
            assert!(scan.truncated > 0);
        }
    }

    #[test]
    fn base_sequence_round_trips() {
        let buf = encode_header(&OnlineTracker::with_reorder(2.0, 0.5), 42);
        let scan = scan(&buf).unwrap();
        assert_eq!(scan.base, 42);
        assert!(scan.readings.is_empty());
    }
}
