//! The segment manifest: the single source of truth for which sealed
//! segments exist, what row range each covers, and each file's expected
//! length and CRC.
//!
//! Layout:
//!
//! ```text
//! "IFMAN001" | META (sealed_rows: u64)
//!            | SEGMENT*  (base_row, row_count, t_min, t_max,
//!            |            file_len, file_crc, flags)
//!            | END (segments, quarantined, 0)
//! ```
//!
//! The manifest is tiny (one 45-byte entry per segment) and replaced as
//! a whole via [`super::atomic_write`]: compaction writes the new
//! segment files first, then swaps the manifest in one rename — the
//! commit point of every tier change. A crash before the swap leaves the
//! old manifest naming the old files (still present); a crash after it
//! leaves the new manifest naming the new files (already durable).
//! Recovery removes whatever the surviving manifest does not reference.
//!
//! Entries must form a contiguous prefix of the closed-row log, starting
//! at row 0 — the sealed frontier is `sealed_rows()` and everything past
//! it lives in the WAL tail. Quarantined entries (flag bit 0) keep their
//! place in the sequence: their row range is known even though their
//! bytes are not trusted, which is exactly what degraded answers need.

use super::frame::{self, tag, Cursor, FrameReader};
use super::{segment, StoreError};
use std::path::Path;

/// Magic prefix of a manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"IFMAN001";

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.bin";

/// One sealed segment as recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentEntry {
    /// Index of the segment's first row in the closed-row log.
    pub base_row: u64,
    /// Number of rows the segment seals (always ≥ 1).
    pub row_count: u64,
    /// Minimum `ts` across the sealed rows.
    pub t_min: f64,
    /// Maximum `te` across the sealed rows.
    pub t_max: f64,
    /// Expected byte length of the segment file.
    pub file_len: u64,
    /// CRC-32 over the entire segment file.
    pub file_crc: u32,
    /// True when the scrubber found the file damaged; its rows are
    /// excluded from answers (and counted as quarantined) until repair.
    pub quarantined: bool,
}

impl SegmentEntry {
    /// The canonical file name of this segment.
    pub fn file_name(&self) -> String {
        segment::file_name(self.base_row, self.row_count)
    }

    /// One row past the segment's range.
    pub fn end_row(&self) -> u64 {
        self.base_row + self.row_count
    }
}

const FLAG_QUARANTINED: u8 = 1;

fn encode_entry(e: &SegmentEntry) -> Vec<u8> {
    let mut b = Vec::with_capacity(45);
    b.extend_from_slice(&e.base_row.to_le_bytes());
    b.extend_from_slice(&e.row_count.to_le_bytes());
    b.extend_from_slice(&e.t_min.to_le_bytes());
    b.extend_from_slice(&e.t_max.to_le_bytes());
    b.extend_from_slice(&e.file_len.to_le_bytes());
    b.extend_from_slice(&e.file_crc.to_le_bytes());
    b.push(if e.quarantined { FLAG_QUARANTINED } else { 0 });
    b
}

fn decode_entry(f: &frame::Frame<'_>) -> Result<SegmentEntry, StoreError> {
    let mut c = Cursor::new(f);
    let base_row = c.u64("base row")?;
    let row_count = c.u64("row count")?;
    let t_min = c.finite_f64("t_min")?;
    let t_max = c.finite_f64("t_max")?;
    let file_len = c.u64("file length")?;
    let file_crc = c.u32("file crc")?;
    let flags = c.u8("flags")?;
    c.done()?;
    if row_count == 0 {
        return Err(c.bad("empty segment entry".into()));
    }
    if t_max < t_min {
        return Err(c.bad(format!("reversed time span [{t_min}, {t_max}]")));
    }
    if flags & !FLAG_QUARANTINED != 0 {
        return Err(c.bad(format!("unknown segment flags {flags:#04x}")));
    }
    Ok(SegmentEntry {
        base_row,
        row_count,
        t_min,
        t_max,
        file_len,
        file_crc,
        quarantined: flags & FLAG_QUARANTINED != 0,
    })
}

/// The decoded, validated manifest: sealed segments in row order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// Segment entries, contiguous from row 0.
    pub entries: Vec<SegmentEntry>,
}

impl Manifest {
    /// One row past the last sealed row (0 when nothing is sealed).
    pub fn sealed_rows(&self) -> u64 {
        self.entries.last().map(SegmentEntry::end_row).unwrap_or(0)
    }

    /// Total rows inside quarantined segments.
    pub fn quarantined_rows(&self) -> u64 {
        self.entries.iter().filter(|e| e.quarantined).map(|e| e.row_count).sum()
    }

    /// Number of quarantined segments.
    pub fn quarantined_segments(&self) -> usize {
        self.entries.iter().filter(|e| e.quarantined).count()
    }

    /// Serializes the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MANIFEST_MAGIC);
        frame::write_frame(&mut buf, tag::META, &self.sealed_rows().to_le_bytes());
        for e in &self.entries {
            frame::write_frame(&mut buf, tag::SEGMENT, &encode_entry(e));
        }
        let quarantined = self.quarantined_segments() as u64;
        frame::write_frame(
            &mut buf,
            tag::END,
            &frame::encode_counts(self.entries.len() as u64, quarantined, 0),
        );
        buf
    }

    /// Decodes and validates a manifest buffer. Strict like a snapshot:
    /// entries must be contiguous from row 0, the META sealed-row count
    /// and END counts must match, and nothing may follow the commit
    /// marker. Any deviation is a typed error — the manifest is either
    /// whole or rejected (and with it, every segment it would name).
    pub fn decode(bytes: &[u8]) -> Result<Manifest, StoreError> {
        if !bytes.starts_with(MANIFEST_MAGIC) {
            return Err(StoreError::BadMagic { what: "manifest" });
        }
        let mut reader = FrameReader::new(bytes, MANIFEST_MAGIC.len());

        let meta = reader.next().ok_or(StoreError::Decode {
            offset: MANIFEST_MAGIC.len(),
            reason: "missing meta frame".into(),
        })??;
        if meta.tag != tag::META {
            return Err(StoreError::Decode {
                offset: meta.offset,
                reason: format!("expected meta frame, found tag {}", meta.tag),
            });
        }
        let mut c = Cursor::new(&meta);
        let sealed_rows = c.u64("sealed rows")?;
        c.done()?;

        let mut entries: Vec<SegmentEntry> = Vec::new();
        let mut committed = false;
        for item in reader.by_ref() {
            let f = item?;
            if committed {
                return Err(StoreError::Decode {
                    offset: f.offset,
                    reason: "frame after END marker".into(),
                });
            }
            match f.tag {
                tag::SEGMENT => {
                    let e = decode_entry(&f)?;
                    let expected_base = entries.last().map(SegmentEntry::end_row).unwrap_or(0);
                    if e.base_row != expected_base {
                        return Err(StoreError::Decode {
                            offset: f.offset,
                            reason: format!(
                                "segment starts at row {} but the sealed prefix ends at {}",
                                e.base_row, expected_base
                            ),
                        });
                    }
                    entries.push(e);
                }
                tag::END => {
                    let expected = frame::decode_counts(&f)?;
                    let quarantined = entries.iter().filter(|e| e.quarantined).count() as u64;
                    if expected != (entries.len() as u64, quarantined, 0) {
                        return Err(StoreError::Decode {
                            offset: f.offset,
                            reason: format!(
                                "END counts {expected:?} do not match {} entries ({quarantined} quarantined)",
                                entries.len()
                            ),
                        });
                    }
                    committed = true;
                }
                other => {
                    return Err(StoreError::Decode {
                        offset: f.offset,
                        reason: format!("unexpected frame tag {other}"),
                    });
                }
            }
        }
        let offset = reader.offset();
        if !committed {
            return Err(StoreError::MissingCommit { offset });
        }
        let manifest = Manifest { entries };
        if manifest.sealed_rows() != sealed_rows {
            return Err(StoreError::Decode {
                offset,
                reason: format!(
                    "header claims {sealed_rows} sealed rows, entries cover {}",
                    manifest.sealed_rows()
                ),
            });
        }
        Ok(manifest)
    }

    /// Loads the manifest from `dir`. `Ok(None)` when no manifest exists
    /// (a pre-segment store); a corrupt manifest is a typed error — the
    /// caller decides whether to fail or serve WAL-only.
    pub fn load<F: super::Fs>(fs: &F, dir: &Path) -> Result<Option<Manifest>, StoreError> {
        let path = dir.join(MANIFEST_FILE);
        if !fs.exists(&path) {
            return Ok(None);
        }
        let bytes = fs.read(&path)?;
        Manifest::decode(&bytes).map(Some)
    }

    /// Atomically replaces the manifest on disk — the commit point of
    /// every segment-tier change.
    pub fn store<F: super::Fs>(&self, fs: &F, dir: &Path) -> Result<(), StoreError> {
        super::atomic_write(fs, &dir.join(MANIFEST_FILE), &self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Fs;

    fn entry(base: u64, count: u64, quarantined: bool) -> SegmentEntry {
        SegmentEntry {
            base_row: base,
            row_count: count,
            t_min: base as f64,
            t_max: (base + count) as f64,
            file_len: 100 + count,
            file_crc: 0xDEAD_0000 | count as u32,
            quarantined,
        }
    }

    fn sample() -> Manifest {
        Manifest { entries: vec![entry(0, 8, false), entry(8, 8, true), entry(16, 4, false)] }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample();
        let bytes = m.encode();
        let back = Manifest::decode(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.sealed_rows(), 20);
        assert_eq!(back.quarantined_rows(), 8);
        assert_eq!(back.quarantined_segments(), 1);
    }

    #[test]
    fn empty_manifest_round_trips() {
        let m = Manifest::default();
        let back = Manifest::decode(&m.encode()).unwrap();
        assert!(back.entries.is_empty());
        assert_eq!(back.sealed_rows(), 0);
    }

    #[test]
    fn truncation_at_every_byte_is_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                Manifest::decode(&bytes[..cut]).is_err(),
                "prefix {cut}/{} accepted",
                bytes.len()
            );
        }
    }

    #[test]
    fn bit_flip_anywhere_is_rejected_never_wrong() {
        let m = sample();
        let bytes = m.encode();
        for i in 0..bytes.len() {
            for bit in [0, 5] {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                match Manifest::decode(&bad) {
                    Err(_) => {}
                    Ok(back) => {
                        panic!("flip at byte {i} bit {bit} decoded; equal: {}", back == m);
                    }
                }
            }
        }
    }

    #[test]
    fn gap_between_entries_is_rejected() {
        let m = Manifest { entries: vec![entry(0, 8, false), entry(10, 8, false)] };
        // encode() trusts its input; decode must not.
        assert!(matches!(Manifest::decode(&m.encode()), Err(StoreError::Decode { .. })));
    }

    #[test]
    fn load_of_missing_manifest_is_none() {
        let fs = super::super::FailpointFs::new();
        assert!(Manifest::load(&fs, Path::new("/store")).unwrap().is_none());
    }

    #[test]
    fn store_then_load_round_trips_through_fs() {
        let fs = super::super::FailpointFs::new();
        let dir = Path::new("/store");
        fs.create_dir_all(dir).unwrap();
        let m = sample();
        m.store(&fs, dir).unwrap();
        assert_eq!(Manifest::load(&fs, dir).unwrap(), Some(m));
    }
}
