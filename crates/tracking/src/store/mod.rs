//! Crash-consistent ingestion store: checksummed WAL + snapshots.
//!
//! The paper's flow queries assume a durable Object Tracking Table and
//! AR-tree; this module provides the durability layer beneath the
//! streaming ingester ([`crate::stream::OnlineTracker`]):
//!
//! * an append-only, CRC-checksummed, length-prefixed binary **WAL**
//!   recording every raw reading ([`wal`]);
//! * periodic **snapshot** files holding the complete tracker state plus
//!   a flat-serialized AR-tree, so cold start is a checksum + bounds
//!   check pass instead of a full index rebuild ([`snapshot`]);
//! * a **recovery** protocol: open the newest valid snapshot, replay the
//!   WAL tail, detect torn or corrupt records via checksums and truncate
//!   to the last valid record, reporting everything in a typed
//!   [`RecoveryReport`];
//! * a deterministic **fault-injection** layer ([`failpoint`]) so tests
//!   can enumerate every crash point of a workload and assert the
//!   recovered store is indistinguishable from an uninterrupted run.
//!
//! All I/O goes through the [`Fs`] trait; production uses [`StdFs`],
//! tests use [`FailpointFs`].

pub mod failpoint;
pub mod frame;
pub mod snapshot;
pub mod wal;

pub use failpoint::{FailpointFs, FailpointWriter, Fs, StdFs};
pub use snapshot::SnapshotState;

use crate::ott::ObjectTrackingTable;
use crate::reading::RawReading;
use crate::stream::{OnlineTracker, StreamError};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.bin";
/// File-name suffix of snapshot files (`snap-<seq>.snap`).
pub const SNAPSHOT_SUFFIX: &str = ".snap";

/// How a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameErrorKind {
    /// The buffer ended inside the frame (torn write).
    Truncated,
    /// The length field exceeds [`frame::MAX_FRAME_PAYLOAD`].
    Oversized,
    /// The CRC-32 over tag, length and payload did not match.
    Checksum,
}

impl std::fmt::Display for FrameErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameErrorKind::Truncated => write!(f, "truncated frame"),
            FrameErrorKind::Oversized => write!(f, "oversized frame length"),
            FrameErrorKind::Checksum => write!(f, "checksum mismatch"),
        }
    }
}

/// Errors raised by the durability layer. Every corruption mode — torn
/// write, bit flip, truncation, inconsistent counts — maps to a typed
/// variant; the store never panics on bad bytes.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// A file did not start with the expected magic.
    BadMagic {
        /// Which file type was expected ("WAL", "snapshot", …).
        what: &'static str,
    },
    /// A frame failed to decode at `offset`.
    Frame { offset: usize, kind: FrameErrorKind },
    /// A frame decoded but its payload was invalid.
    Decode { offset: usize, reason: String },
    /// The file ended without its `END` commit marker.
    MissingCommit { offset: usize },
    /// The store's files are mutually inconsistent.
    InvalidState { reason: String },
    /// Live ingestion rejected a reading (after it was durably logged;
    /// replay reproduces the same rejection).
    Stream(StreamError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O failed: {e}"),
            StoreError::BadMagic { what } => write!(f, "not a {what} file (bad magic)"),
            StoreError::Frame { offset, kind } => write!(f, "{kind} at byte {offset}"),
            StoreError::Decode { offset, reason } => {
                write!(f, "invalid record at byte {offset}: {reason}")
            }
            StoreError::MissingCommit { offset } => {
                write!(f, "missing END commit marker (file ends at byte {offset})")
            }
            StoreError::InvalidState { reason } => write!(f, "inconsistent store: {reason}"),
            StoreError::Stream(e) => write!(f, "ingestion rejected a logged reading: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Writes `bytes` to `path` atomically: write a sibling temp file, fsync
/// it, then rename over the target. An interrupted write never clobbers
/// an existing good file with a half-written one.
pub fn atomic_write<F: Fs>(fs: &F, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    let mut file = fs.create(&tmp)?;
    file.write_all(bytes)?;
    fs.sync(&mut file)?;
    drop(file);
    fs.rename(&tmp, path)?;
    Ok(())
}

/// Tuning knobs for an [`IngestStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Automatically snapshot after this many ingested readings
    /// (`None` = only on explicit [`IngestStore::snapshot`] / close).
    pub snapshot_every: Option<u64>,
    /// Fsync the WAL after every appended reading. Durable but slow;
    /// with `false`, readings since the last sync may be lost in a crash
    /// (recovery still yields a consistent prefix).
    pub sync_each_reading: bool,
    /// Snapshots retained after pruning (at least 1).
    pub keep_snapshots: usize,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions { snapshot_every: None, sync_each_reading: true, keep_snapshots: 3 }
    }
}

/// What recovery found and did. Wire the counts into the obs counter
/// registry at the call site (the tracking crate stays obs-free).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// True when the directory had no usable state and a fresh store was
    /// created.
    pub created: bool,
    /// Sequence of the snapshot recovery restored from, if any.
    pub snapshot_seq: Option<u64>,
    /// Snapshot files that failed validation and were skipped.
    pub snapshots_rejected: u64,
    /// Total durable readings after recovery (absolute sequence). A
    /// resumed producer should continue from this offset.
    pub wal_records: u64,
    /// WAL readings replayed on top of the restored snapshot.
    pub wal_replayed: u64,
    /// Bytes of torn or corrupt WAL tail discarded by truncation.
    pub wal_truncated_bytes: u64,
    /// Replayed readings the tracker rejected (they were rejected
    /// identically during live ingestion).
    pub replay_rejected: u64,
}

impl RecoveryReport {
    /// Human-readable multi-line rendering for CLI output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.created {
            out.push_str("created fresh store\n");
        }
        match self.snapshot_seq {
            Some(seq) => out.push_str(&format!("restored snapshot at seq {seq}\n")),
            None => out.push_str("no snapshot restored\n"),
        }
        out.push_str(&format!(
            "durable readings: {}\nreplayed from WAL: {}\n",
            self.wal_records, self.wal_replayed
        ));
        if self.snapshots_rejected > 0 {
            out.push_str(&format!("snapshots rejected: {}\n", self.snapshots_rejected));
        }
        if self.wal_truncated_bytes > 0 {
            out.push_str(&format!("torn WAL bytes truncated: {}\n", self.wal_truncated_bytes));
        }
        if self.replay_rejected > 0 {
            out.push_str(&format!("replayed readings rejected: {}\n", self.replay_rejected));
        }
        out
    }
}

/// The OTT + AR-tree image loaded from a snapshot during recovery —
/// queryable immediately, without rebuilding the index (valid as of
/// [`SnapshotIndex::wal_seq`]).
#[derive(Debug)]
pub struct SnapshotIndex {
    /// WAL readings the image reflects.
    pub wal_seq: u64,
    /// The snapshot's OTT.
    pub ott: ObjectTrackingTable,
    /// The AR-tree reloaded from its flat serialization.
    pub artree: crate::artree::ArTree,
}

/// A durable wrapper around [`OnlineTracker`]: every ingested reading is
/// appended to the WAL before it is applied, and snapshots bound the
/// replay work a recovery needs.
#[derive(Debug)]
pub struct IngestStore<F: Fs> {
    fs: F,
    dir: PathBuf,
    wal: F::File,
    tracker: OnlineTracker,
    /// Absolute count of durably appended readings.
    seq: u64,
    /// Readings ingested since the last snapshot (drives auto-snapshot).
    since_snapshot: u64,
    opts: StoreOptions,
    loaded: Option<SnapshotIndex>,
}

impl<F: Fs> IngestStore<F> {
    /// Opens (or creates) the store in `dir`, running recovery if any
    /// state exists. `fresh` supplies the tracker configuration when the
    /// directory holds no usable state; otherwise the recovered
    /// configuration wins and `fresh` is dropped.
    pub fn open(
        fs: F,
        dir: &Path,
        fresh: OnlineTracker,
        opts: StoreOptions,
    ) -> Result<(IngestStore<F>, RecoveryReport), StoreError> {
        assert!(opts.keep_snapshots >= 1, "keep_snapshots must be at least 1");
        fs.create_dir_all(dir)?;
        let wal_path = dir.join(WAL_FILE);
        let mut report = RecoveryReport::default();

        // Sweep snapshots newest-first for the first one that validates;
        // clean up temp litter from interrupted atomic writes.
        let mut best: Option<snapshot::SnapshotState> = None;
        for path in Self::files_with_suffix(&fs, dir, ".tmp")? {
            fs.remove_file(&path)?;
        }
        let snaps = Self::files_with_suffix(&fs, dir, SNAPSHOT_SUFFIX)?;
        for path in snaps.iter().rev() {
            match fs.read(path).map_err(StoreError::Io).and_then(|b| snapshot::decode(&b)) {
                Ok(s) => {
                    best = Some(s);
                    break;
                }
                Err(_) => report.snapshots_rejected += 1,
            }
        }

        // Scan the WAL; a damaged header makes the whole file unusable.
        let scan = if fs.exists(&wal_path) {
            let bytes = fs.read(&wal_path)?;
            match wal::scan(&bytes) {
                Ok(scan) => Some(scan),
                Err(_) => {
                    report.wal_truncated_bytes += bytes.len() as u64;
                    None
                }
            }
        } else {
            None
        };

        let mut loaded: Option<SnapshotIndex> = None;
        let (tracker, seq) = match (scan, best) {
            (Some(scan), best) => {
                if scan.truncated > 0 {
                    report.wal_truncated_bytes += scan.truncated as u64;
                    fs.truncate(&wal_path, scan.valid_len as u64)?;
                }
                let durable = scan.base + scan.readings.len() as u64;
                match best {
                    // The usual case: snapshot at or behind the durable
                    // WAL frontier — restore it, replay the tail.
                    Some(snap) if snap.wal_seq >= scan.base && snap.wal_seq <= durable => {
                        report.snapshot_seq = Some(snap.wal_seq);
                        let mut tracker = snap.tracker;
                        let skip = (snap.wal_seq - scan.base) as usize;
                        for &r in scan.readings.get(skip..).unwrap_or_default() {
                            report.wal_replayed += 1;
                            if tracker.ingest(r).is_err() {
                                // Rejected during live ingestion too:
                                // replay converges to the same state.
                                report.replay_rejected += 1;
                            }
                        }
                        loaded = Some(SnapshotIndex {
                            wal_seq: snap.wal_seq,
                            ott: snap.ott,
                            artree: snap.artree,
                        });
                        (tracker, durable)
                    }
                    // The snapshot is ahead of a damaged WAL: its state
                    // is the most durable truth. Restore it and rebase
                    // the WAL so sequence numbering stays monotone.
                    Some(snap) => {
                        report.snapshot_seq = Some(snap.wal_seq);
                        report.wal_truncated_bytes += scan.valid_len as u64;
                        let header = wal::encode_header(&snap.tracker, snap.wal_seq);
                        atomic_write(&fs, &wal_path, &header)?;
                        loaded = Some(SnapshotIndex {
                            wal_seq: snap.wal_seq,
                            ott: snap.ott,
                            artree: snap.artree,
                        });
                        (snap.tracker, snap.wal_seq)
                    }
                    // No usable snapshot: replay the whole WAL from
                    // scratch — only possible for an un-rebased log.
                    None if scan.base == 0 => {
                        let mut tracker = scan.tracker_init;
                        for &r in &scan.readings {
                            report.wal_replayed += 1;
                            if tracker.ingest(r).is_err() {
                                report.replay_rejected += 1;
                            }
                        }
                        (tracker, durable)
                    }
                    None => {
                        return Err(StoreError::InvalidState {
                            reason: format!(
                                "WAL starts at seq {} but no valid snapshot covers it",
                                scan.base
                            ),
                        });
                    }
                }
            }
            // No usable WAL, but a snapshot: restore it and start a
            // rebased WAL from its sequence.
            (None, Some(snap)) => {
                report.snapshot_seq = Some(snap.wal_seq);
                let header = wal::encode_header(&snap.tracker, snap.wal_seq);
                atomic_write(&fs, &wal_path, &header)?;
                loaded = Some(SnapshotIndex {
                    wal_seq: snap.wal_seq,
                    ott: snap.ott,
                    artree: snap.artree,
                });
                (snap.tracker, snap.wal_seq)
            }
            // Nothing usable at all: fresh store.
            (None, None) => {
                report.created = true;
                atomic_write(&fs, &wal_path, &wal::encode_header(&fresh, 0))?;
                (fresh, 0)
            }
        };

        report.wal_records = seq;
        let since_snapshot = seq - report.snapshot_seq.unwrap_or(0);
        let wal = fs.open_append(&wal_path)?;
        Ok((
            IngestStore {
                fs,
                dir: dir.to_path_buf(),
                wal,
                tracker,
                seq,
                since_snapshot,
                opts,
                loaded,
            },
            report,
        ))
    }

    fn files_with_suffix(fs: &F, dir: &Path, suffix: &str) -> Result<Vec<PathBuf>, StoreError> {
        let mut out: Vec<PathBuf> = fs
            .list(dir)?
            .into_iter()
            .filter(|p| p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.ends_with(suffix)))
            .collect();
        out.sort();
        Ok(out)
    }

    /// Durably logs one reading, then applies it to the tracker. The
    /// append happens first: a crash between the two replays the reading
    /// on recovery, converging to the same state. A [`StoreError::Stream`]
    /// rejection leaves the reading in the WAL — replay reproduces the
    /// identical rejection, so the log stays truthful.
    pub fn ingest(&mut self, r: RawReading) -> Result<(), StoreError> {
        self.ingest_with(r, &mut |_| {})
    }

    /// [`IngestStore::ingest`] with the tracker's apply hook exposed:
    /// `on_apply` fires for every reading actually applied to run state
    /// (see [`OnlineTracker::ingest_with`]) — after the WAL append, so
    /// anything observed is already durable.
    pub fn ingest_with(
        &mut self,
        r: RawReading,
        on_apply: &mut dyn FnMut(RawReading),
    ) -> Result<(), StoreError> {
        self.ingest_marked(r, &mut || {}, on_apply)
    }

    /// [`IngestStore::ingest_with`] with the durability boundary also
    /// exposed: `on_durable` fires once, right after the WAL append (and
    /// fsync, when configured) succeeds and before the tracker applies
    /// the reading. The serving layer stamps its per-reading trace
    /// chain here so "wal" and "apply" show up as separate latency
    /// segments.
    pub fn ingest_marked(
        &mut self,
        r: RawReading,
        on_durable: &mut dyn FnMut(),
        on_apply: &mut dyn FnMut(RawReading),
    ) -> Result<(), StoreError> {
        // One write call per frame: a torn write can only tear this frame.
        self.wal.write_all(&wal::encode_reading_frame(&r))?;
        if self.opts.sync_each_reading {
            self.fs.sync(&mut self.wal)?;
        }
        on_durable();
        self.seq += 1;
        self.since_snapshot += 1;
        self.tracker.ingest_with(r, on_apply).map_err(StoreError::Stream)?;
        if let Some(every) = self.opts.snapshot_every {
            if self.since_snapshot >= every {
                self.snapshot()?;
            }
        }
        Ok(())
    }

    /// Writes a snapshot of the current state (fsyncing the WAL first so
    /// the snapshot never claims more than the log can prove), then
    /// prunes old snapshots down to [`StoreOptions::keep_snapshots`].
    pub fn snapshot(&mut self) -> Result<PathBuf, StoreError> {
        self.fs.sync(&mut self.wal)?;
        let bytes = snapshot::encode(&self.tracker, self.seq)?;
        let path = self.dir.join(format!("snap-{:020}{}", self.seq, SNAPSHOT_SUFFIX));
        atomic_write(&self.fs, &path, &bytes)?;
        self.since_snapshot = 0;
        let snaps = Self::files_with_suffix(&self.fs, &self.dir, SNAPSHOT_SUFFIX)?;
        if snaps.len() > self.opts.keep_snapshots {
            for old in snaps.get(..snaps.len() - self.opts.keep_snapshots).unwrap_or_default() {
                self.fs.remove_file(old)?;
            }
        }
        Ok(path)
    }

    /// The live tracker.
    pub fn tracker(&self) -> &OnlineTracker {
        &self.tracker
    }

    /// Total durable readings (absolute sequence).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The OTT + AR-tree image loaded from the recovered snapshot, if
    /// recovery restored one. Queryable without any index rebuild.
    pub fn loaded_snapshot(&self) -> Option<&SnapshotIndex> {
        self.loaded.as_ref()
    }

    /// Snapshots current state and closes the store, returning the final
    /// OTT (reorder buffer drained, every run closed).
    pub fn finish(mut self) -> Result<ObjectTrackingTable, StoreError> {
        self.snapshot()?;
        self.tracker.finish().map_err(StoreError::Stream)
    }

    /// Closes the store without snapshotting (the WAL alone carries the
    /// state), returning the tracker for further use.
    pub fn into_tracker(mut self) -> Result<OnlineTracker, StoreError> {
        self.fs.sync(&mut self.wal)?;
        Ok(self.tracker)
    }
}
