//! Crash-consistent ingestion store: checksummed WAL + snapshots.
//!
//! The paper's flow queries assume a durable Object Tracking Table and
//! AR-tree; this module provides the durability layer beneath the
//! streaming ingester ([`crate::stream::OnlineTracker`]):
//!
//! * an append-only, CRC-checksummed, length-prefixed binary **WAL**
//!   recording every raw reading ([`wal`]);
//! * periodic **snapshot** files holding the complete tracker state plus
//!   a flat-serialized AR-tree, so cold start is a checksum + bounds
//!   check pass instead of a full index rebuild ([`snapshot`]);
//! * a **recovery** protocol: open the newest valid snapshot, replay the
//!   WAL tail, detect torn or corrupt records via checksums and truncate
//!   to the last valid record, reporting everything in a typed
//!   [`RecoveryReport`];
//! * a deterministic **fault-injection** layer ([`failpoint`]) so tests
//!   can enumerate every crash point of a workload and assert the
//!   recovered store is indistinguishable from an uninterrupted run;
//! * a **tiered cold path**: closed rows past the hot tail are sealed
//!   into immutable, self-verifying [`segment`] files described by an
//!   atomically-swapped [`manifest`], built by crash-safe [`compact`]ion
//!   and re-verified on a budget by the [`scrub`]ber, which quarantines
//!   damaged segments instead of dying — answers degrade, with the
//!   damage surfaced through `DataQuality`.
//!
//! All I/O goes through the [`Fs`] trait; production uses [`StdFs`],
//! tests use [`FailpointFs`].

pub mod compact;
pub mod failpoint;
pub mod frame;
pub mod manifest;
pub mod scrub;
pub mod segment;
pub mod snapshot;
pub mod wal;

pub use compact::CompactionOutcome;
pub use failpoint::{FailpointFs, FailpointWriter, Fs, StdFs};
pub use manifest::{Manifest, SegmentEntry};
pub use scrub::{FsckReport, ScrubReport, Scrubber, SegmentFault, SegmentFaultKind};
pub use snapshot::SnapshotState;

use crate::ott::ObjectTrackingTable;
use crate::reading::RawReading;
use crate::stream::{OnlineTracker, StreamError};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.bin";
/// File-name suffix of snapshot files (`snap-<seq>.snap`).
pub const SNAPSHOT_SUFFIX: &str = ".snap";

/// How a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameErrorKind {
    /// The buffer ended inside the frame (torn write).
    Truncated,
    /// The length field exceeds [`frame::MAX_FRAME_PAYLOAD`].
    Oversized,
    /// The CRC-32 over tag, length and payload did not match.
    Checksum,
}

impl std::fmt::Display for FrameErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameErrorKind::Truncated => write!(f, "truncated frame"),
            FrameErrorKind::Oversized => write!(f, "oversized frame length"),
            FrameErrorKind::Checksum => write!(f, "checksum mismatch"),
        }
    }
}

/// Errors raised by the durability layer. Every corruption mode — torn
/// write, bit flip, truncation, inconsistent counts — maps to a typed
/// variant; the store never panics on bad bytes.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// A file did not start with the expected magic.
    BadMagic {
        /// Which file type was expected ("WAL", "snapshot", …).
        what: &'static str,
    },
    /// A frame failed to decode at `offset`.
    Frame { offset: usize, kind: FrameErrorKind },
    /// A frame decoded but its payload was invalid.
    Decode { offset: usize, reason: String },
    /// The file ended without its `END` commit marker.
    MissingCommit { offset: usize },
    /// The store's files are mutually inconsistent.
    InvalidState { reason: String },
    /// Live ingestion rejected a reading (after it was durably logged;
    /// replay reproduces the same rejection).
    Stream(StreamError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O failed: {e}"),
            StoreError::BadMagic { what } => write!(f, "not a {what} file (bad magic)"),
            StoreError::Frame { offset, kind } => write!(f, "{kind} at byte {offset}"),
            StoreError::Decode { offset, reason } => {
                write!(f, "invalid record at byte {offset}: {reason}")
            }
            StoreError::MissingCommit { offset } => {
                write!(f, "missing END commit marker (file ends at byte {offset})")
            }
            StoreError::InvalidState { reason } => write!(f, "inconsistent store: {reason}"),
            StoreError::Stream(e) => write!(f, "ingestion rejected a logged reading: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Writes `bytes` to `path` atomically: write a sibling temp file, fsync
/// it, then rename over the target. An interrupted write never clobbers
/// an existing good file with a half-written one.
pub fn atomic_write<F: Fs>(fs: &F, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    let mut file = fs.create(&tmp)?;
    file.write_all(bytes)?;
    fs.sync(&mut file)?;
    drop(file);
    fs.rename(&tmp, path)?;
    Ok(())
}

/// Tuning knobs for an [`IngestStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Automatically snapshot after this many ingested readings
    /// (`None` = only on explicit [`IngestStore::snapshot`] / close).
    pub snapshot_every: Option<u64>,
    /// Fsync the WAL after every appended reading. Durable but slow;
    /// with `false`, readings since the last sync may be lost in a crash
    /// (recovery still yields a consistent prefix).
    pub sync_each_reading: bool,
    /// Snapshots retained after pruning (at least 1).
    pub keep_snapshots: usize,
    /// Seal an immutable segment whenever this many closed rows sit past
    /// the sealed frontier (`None` = segments only on explicit
    /// [`IngestStore::compact`]). Boundaries are always multiples of
    /// this value, which is what makes crash-resumed compaction
    /// reproduce byte-identical files.
    pub compact_every: Option<u64>,
    /// Merge this many consecutive equal-sized healthy segments into one
    /// (`< 2` disables merging).
    pub merge_factor: usize,
    /// Run a budgeted scrub pass every this many ingested readings
    /// (`None` = only on explicit [`IngestStore::scrub_pass`]).
    pub scrub_every: Option<u64>,
    /// Segments re-verified per scrub pass (at least 1).
    pub scrub_budget: usize,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            snapshot_every: None,
            sync_each_reading: true,
            keep_snapshots: 3,
            compact_every: None,
            merge_factor: 4,
            scrub_every: None,
            scrub_budget: 1,
        }
    }
}

/// What recovery found and did. Wire the counts into the obs counter
/// registry at the call site (the tracking crate stays obs-free).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// True when the directory had no usable state and a fresh store was
    /// created.
    pub created: bool,
    /// Sequence of the snapshot recovery restored from, if any.
    pub snapshot_seq: Option<u64>,
    /// Snapshot files that failed validation and were skipped.
    pub snapshots_rejected: u64,
    /// Total durable readings after recovery (absolute sequence). A
    /// resumed producer should continue from this offset.
    pub wal_records: u64,
    /// WAL readings replayed on top of the restored snapshot.
    pub wal_replayed: u64,
    /// Bytes of torn or corrupt WAL tail discarded by truncation.
    pub wal_truncated_bytes: u64,
    /// Replayed readings the tracker rejected (they were rejected
    /// identically during live ingestion).
    pub replay_rejected: u64,
    /// Sealed segments listed by the recovered manifest.
    pub segments: u64,
    /// Manifest entries dropped because they claimed rows beyond the
    /// recovered closed log (only possible after WAL data loss).
    pub segments_dropped: u64,
    /// True when a manifest file existed but failed validation; the
    /// segment tier was reset (snapshots + WAL still carry all state,
    /// and the next compaction re-seals from row 0).
    pub manifest_rejected: bool,
    /// Segment files swept because no manifest references them (the
    /// losing side of an interrupted compaction).
    pub orphan_segments_removed: u64,
}

impl RecoveryReport {
    /// Human-readable multi-line rendering for CLI output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.created {
            out.push_str("created fresh store\n");
        }
        match self.snapshot_seq {
            Some(seq) => out.push_str(&format!("restored snapshot at seq {seq}\n")),
            None => out.push_str("no snapshot restored\n"),
        }
        out.push_str(&format!(
            "durable readings: {}\nreplayed from WAL: {}\n",
            self.wal_records, self.wal_replayed
        ));
        if self.snapshots_rejected > 0 {
            out.push_str(&format!("snapshots rejected: {}\n", self.snapshots_rejected));
        }
        if self.wal_truncated_bytes > 0 {
            out.push_str(&format!("torn WAL bytes truncated: {}\n", self.wal_truncated_bytes));
        }
        if self.replay_rejected > 0 {
            out.push_str(&format!("replayed readings rejected: {}\n", self.replay_rejected));
        }
        if self.segments > 0 {
            out.push_str(&format!("sealed segments: {}\n", self.segments));
        }
        if self.segments_dropped > 0 {
            out.push_str(&format!(
                "segments dropped (beyond closed log): {}\n",
                self.segments_dropped
            ));
        }
        if self.manifest_rejected {
            out.push_str("manifest rejected: segment tier reset\n");
        }
        if self.orphan_segments_removed > 0 {
            out.push_str(&format!(
                "orphan segment files removed: {}\n",
                self.orphan_segments_removed
            ));
        }
        out
    }
}

/// Counts of tier-maintenance events since the last
/// [`IngestStore::take_tier_events`] — the bridge from the obs-free
/// tracking crate to the serving layer's counters and flight recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierEvents {
    /// Compaction passes that changed the manifest.
    pub compactions: u64,
    /// New segments sealed from the hot tail.
    pub segments_sealed: u64,
    /// Input segments consumed by merges.
    pub segments_merged: u64,
    /// Scrub passes run.
    pub scrub_passes: u64,
    /// Segments re-verified by scrub passes.
    pub segments_scrubbed: u64,
    /// Faults found by scrubbing or history assembly.
    pub scrub_corruptions: u64,
    /// Segments newly quarantined.
    pub segments_quarantined: u64,
}

impl TierEvents {
    /// True when nothing happened.
    pub fn is_empty(&self) -> bool {
        *self == TierEvents::default()
    }
}

/// The OTT + AR-tree image loaded from a snapshot during recovery —
/// queryable immediately, without rebuilding the index (valid as of
/// [`SnapshotIndex::wal_seq`]).
#[derive(Debug)]
pub struct SnapshotIndex {
    /// WAL readings the image reflects.
    pub wal_seq: u64,
    /// The snapshot's OTT.
    pub ott: ObjectTrackingTable,
    /// The AR-tree reloaded from its flat serialization.
    pub artree: crate::artree::ArTree,
}

/// The queryable history assembled from the tiered store: verified
/// segment rows, the hot closed tail, and open runs closed as-of-now.
/// Quarantined segments' rows are *excluded* — the answer degrades, and
/// the exclusion is quantified so callers can feed `DataQuality`.
#[derive(Debug)]
pub struct HistoryView {
    /// The assembled OTT (verified sealed rows + hot tail + open runs).
    pub ott: ObjectTrackingTable,
    /// Sealed frontier of the manifest (rows `0..sealed_rows` live in
    /// segments, healthy or not).
    pub sealed_rows: u64,
    /// Rows served from verified segment files.
    pub segment_rows: u64,
    /// Rows excluded because their segment is quarantined.
    pub quarantined_rows: u64,
    /// Quarantined segments at assembly time.
    pub quarantined_segments: u64,
}

/// A durable wrapper around [`OnlineTracker`]: every ingested reading is
/// appended to the WAL before it is applied, and snapshots bound the
/// replay work a recovery needs.
#[derive(Debug)]
pub struct IngestStore<F: Fs> {
    fs: F,
    dir: PathBuf,
    wal: F::File,
    tracker: OnlineTracker,
    /// Absolute count of durably appended readings.
    seq: u64,
    /// Readings ingested since the last snapshot (drives auto-snapshot).
    since_snapshot: u64,
    /// Readings ingested since the last scrub pass (drives auto-scrub).
    since_scrub: u64,
    opts: StoreOptions,
    loaded: Option<SnapshotIndex>,
    /// The segment-tier manifest (empty for a WAL-only store).
    manifest: Manifest,
    scrubber: Scrubber,
    /// Tier events accumulated since the last drain.
    events: TierEvents,
}

impl<F: Fs> IngestStore<F> {
    /// Opens (or creates) the store in `dir`, running recovery if any
    /// state exists. `fresh` supplies the tracker configuration when the
    /// directory holds no usable state; otherwise the recovered
    /// configuration wins and `fresh` is dropped.
    pub fn open(
        fs: F,
        dir: &Path,
        fresh: OnlineTracker,
        opts: StoreOptions,
    ) -> Result<(IngestStore<F>, RecoveryReport), StoreError> {
        assert!(opts.keep_snapshots >= 1, "keep_snapshots must be at least 1");
        fs.create_dir_all(dir)?;
        let wal_path = dir.join(WAL_FILE);
        let mut report = RecoveryReport::default();

        // Sweep snapshots newest-first for the first one that validates;
        // clean up temp litter from interrupted atomic writes.
        let mut best: Option<snapshot::SnapshotState> = None;
        for path in Self::files_with_suffix(&fs, dir, ".tmp")? {
            fs.remove_file(&path)?;
        }

        // Load the segment manifest. A corrupt manifest resets the
        // segment tier: snapshots + WAL still carry every row, and the
        // next compaction deterministically re-seals from row 0.
        let mut tier = match Manifest::load(&fs, dir) {
            Ok(Some(m)) => m,
            Ok(None) => Manifest::default(),
            Err(_) => {
                report.manifest_rejected = true;
                Manifest::default()
            }
        };
        let snaps = Self::files_with_suffix(&fs, dir, SNAPSHOT_SUFFIX)?;
        for path in snaps.iter().rev() {
            match fs.read(path).map_err(StoreError::Io).and_then(|b| snapshot::decode(&b)) {
                Ok(s) => {
                    best = Some(s);
                    break;
                }
                Err(_) => report.snapshots_rejected += 1,
            }
        }

        // Scan the WAL; a damaged header makes the whole file unusable.
        let scan = if fs.exists(&wal_path) {
            let bytes = fs.read(&wal_path)?;
            match wal::scan(&bytes) {
                Ok(scan) => Some(scan),
                Err(_) => {
                    report.wal_truncated_bytes += bytes.len() as u64;
                    None
                }
            }
        } else {
            None
        };

        let mut loaded: Option<SnapshotIndex> = None;
        let (tracker, seq) = match (scan, best) {
            (Some(scan), best) => {
                if scan.truncated > 0 {
                    report.wal_truncated_bytes += scan.truncated as u64;
                    fs.truncate(&wal_path, scan.valid_len as u64)?;
                }
                let durable = scan.base + scan.readings.len() as u64;
                match best {
                    // The usual case: snapshot at or behind the durable
                    // WAL frontier — restore it, replay the tail.
                    Some(snap) if snap.wal_seq >= scan.base && snap.wal_seq <= durable => {
                        report.snapshot_seq = Some(snap.wal_seq);
                        let mut tracker = snap.tracker;
                        let skip = (snap.wal_seq - scan.base) as usize;
                        for &r in scan.readings.get(skip..).unwrap_or_default() {
                            report.wal_replayed += 1;
                            if tracker.ingest(r).is_err() {
                                // Rejected during live ingestion too:
                                // replay converges to the same state.
                                report.replay_rejected += 1;
                            }
                        }
                        loaded = Some(SnapshotIndex {
                            wal_seq: snap.wal_seq,
                            ott: snap.ott,
                            artree: snap.artree,
                        });
                        (tracker, durable)
                    }
                    // The snapshot is ahead of a damaged WAL: its state
                    // is the most durable truth. Restore it and rebase
                    // the WAL so sequence numbering stays monotone.
                    Some(snap) => {
                        report.snapshot_seq = Some(snap.wal_seq);
                        report.wal_truncated_bytes += scan.valid_len as u64;
                        let header = wal::encode_header(&snap.tracker, snap.wal_seq);
                        atomic_write(&fs, &wal_path, &header)?;
                        loaded = Some(SnapshotIndex {
                            wal_seq: snap.wal_seq,
                            ott: snap.ott,
                            artree: snap.artree,
                        });
                        (snap.tracker, snap.wal_seq)
                    }
                    // No usable snapshot: replay the whole WAL from
                    // scratch — only possible for an un-rebased log.
                    None if scan.base == 0 => {
                        let mut tracker = scan.tracker_init;
                        for &r in &scan.readings {
                            report.wal_replayed += 1;
                            if tracker.ingest(r).is_err() {
                                report.replay_rejected += 1;
                            }
                        }
                        (tracker, durable)
                    }
                    None => {
                        return Err(StoreError::InvalidState {
                            reason: format!(
                                "WAL starts at seq {} but no valid snapshot covers it",
                                scan.base
                            ),
                        });
                    }
                }
            }
            // No usable WAL, but a snapshot: restore it and start a
            // rebased WAL from its sequence.
            (None, Some(snap)) => {
                report.snapshot_seq = Some(snap.wal_seq);
                let header = wal::encode_header(&snap.tracker, snap.wal_seq);
                atomic_write(&fs, &wal_path, &header)?;
                loaded = Some(SnapshotIndex {
                    wal_seq: snap.wal_seq,
                    ott: snap.ott,
                    artree: snap.artree,
                });
                (snap.tracker, snap.wal_seq)
            }
            // Nothing usable at all: fresh store.
            (None, None) => {
                report.created = true;
                atomic_write(&fs, &wal_path, &wal::encode_header(&fresh, 0))?;
                (fresh, 0)
            }
        };

        report.wal_records = seq;

        // Reconcile the segment tier with the recovered closed log: an
        // entry claiming rows the log cannot prove (possible only after
        // WAL data loss) is dropped, and files the surviving manifest
        // does not reference — the losing side of an interrupted
        // compaction — are swept.
        let closed_rows = tracker.closed_rows() as u64;
        if tier.sealed_rows() > closed_rows {
            let keep = tier.entries.iter().take_while(|e| e.end_row() <= closed_rows).count();
            report.segments_dropped = (tier.entries.len() - keep) as u64;
            tier.entries.truncate(keep);
            tier.store(&fs, dir)?;
        } else if report.manifest_rejected {
            tier.store(&fs, dir)?;
        }
        report.segments = tier.entries.len() as u64;
        report.orphan_segments_removed = compact::remove_unreferenced(&fs, dir, &tier)?;

        let since_snapshot = seq - report.snapshot_seq.unwrap_or(0);
        let wal = fs.open_append(&wal_path)?;
        Ok((
            IngestStore {
                fs,
                dir: dir.to_path_buf(),
                wal,
                tracker,
                seq,
                since_snapshot,
                since_scrub: 0,
                opts,
                loaded,
                manifest: tier,
                scrubber: Scrubber::new(),
                events: TierEvents::default(),
            },
            report,
        ))
    }

    fn files_with_suffix(fs: &F, dir: &Path, suffix: &str) -> Result<Vec<PathBuf>, StoreError> {
        let mut out: Vec<PathBuf> = fs
            .list(dir)?
            .into_iter()
            .filter(|p| p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.ends_with(suffix)))
            .collect();
        out.sort();
        Ok(out)
    }

    /// Durably logs one reading, then applies it to the tracker. The
    /// append happens first: a crash between the two replays the reading
    /// on recovery, converging to the same state. A [`StoreError::Stream`]
    /// rejection leaves the reading in the WAL — replay reproduces the
    /// identical rejection, so the log stays truthful.
    pub fn ingest(&mut self, r: RawReading) -> Result<(), StoreError> {
        self.ingest_with(r, &mut |_| {})
    }

    /// [`IngestStore::ingest`] with the tracker's apply hook exposed:
    /// `on_apply` fires for every reading actually applied to run state
    /// (see [`OnlineTracker::ingest_with`]) — after the WAL append, so
    /// anything observed is already durable.
    pub fn ingest_with(
        &mut self,
        r: RawReading,
        on_apply: &mut dyn FnMut(RawReading),
    ) -> Result<(), StoreError> {
        self.ingest_marked(r, &mut || {}, on_apply)
    }

    /// [`IngestStore::ingest_with`] with the durability boundary also
    /// exposed: `on_durable` fires once, right after the WAL append (and
    /// fsync, when configured) succeeds and before the tracker applies
    /// the reading. The serving layer stamps its per-reading trace
    /// chain here so "wal" and "apply" show up as separate latency
    /// segments.
    pub fn ingest_marked(
        &mut self,
        r: RawReading,
        on_durable: &mut dyn FnMut(),
        on_apply: &mut dyn FnMut(RawReading),
    ) -> Result<(), StoreError> {
        // One write call per frame: a torn write can only tear this frame.
        self.wal.write_all(&wal::encode_reading_frame(&r))?;
        if self.opts.sync_each_reading {
            self.fs.sync(&mut self.wal)?;
        }
        on_durable();
        self.seq += 1;
        self.since_snapshot += 1;
        self.tracker.ingest_with(r, on_apply).map_err(StoreError::Stream)?;
        if let Some(every) = self.opts.snapshot_every {
            if self.since_snapshot >= every {
                self.snapshot()?;
            }
        }
        if let Some(every) = self.opts.compact_every {
            let unsealed =
                (self.tracker.closed_rows() as u64).saturating_sub(self.manifest.sealed_rows());
            if unsealed >= every {
                self.compact()?;
            }
        }
        if let Some(every) = self.opts.scrub_every {
            self.since_scrub += 1;
            if self.since_scrub >= every {
                self.scrub_pass()?;
            }
        }
        Ok(())
    }

    /// Writes a snapshot of the current state (fsyncing the WAL first so
    /// the snapshot never claims more than the log can prove), then
    /// prunes old snapshots down to [`StoreOptions::keep_snapshots`].
    pub fn snapshot(&mut self) -> Result<PathBuf, StoreError> {
        self.fs.sync(&mut self.wal)?;
        let bytes = snapshot::encode(&self.tracker, self.seq)?;
        let path = self.dir.join(format!("snap-{:020}{}", self.seq, SNAPSHOT_SUFFIX));
        atomic_write(&self.fs, &path, &bytes)?;
        self.since_snapshot = 0;
        let snaps = Self::files_with_suffix(&self.fs, &self.dir, SNAPSHOT_SUFFIX)?;
        if snaps.len() > self.opts.keep_snapshots {
            for old in snaps.get(..snaps.len() - self.opts.keep_snapshots).unwrap_or_default() {
                self.fs.remove_file(old)?;
            }
        }
        Ok(path)
    }

    /// Runs one compaction pass: seal full segments from the hot tail
    /// ([`StoreOptions::compact_every`] rows each), merge small ones,
    /// swap the manifest, and — when anything changed — trim the WAL
    /// back to the oldest *retained* snapshot so the hot tail stays
    /// bounded without sacrificing multi-snapshot redundancy. Compaction
    /// does not snapshot: the manifest swap is its commit point, and the
    /// regular snapshot clock already bounds replay — a second snapshot
    /// here would double that work for nothing.
    pub fn compact(&mut self) -> Result<CompactionOutcome, StoreError> {
        let Some(every) = self.opts.compact_every else {
            return Ok(CompactionOutcome::default());
        };
        // Sealed rows must be derivable from durable bytes: fsync the
        // WAL before cutting segments from state it implies.
        self.fs.sync(&mut self.wal)?;
        let outcome = compact::compact(
            &self.fs,
            &self.dir,
            &mut self.manifest,
            self.tracker.closed(),
            every,
            self.opts.merge_factor,
        )?;
        if outcome.changed() {
            self.events.compactions += 1;
            self.events.segments_sealed += outcome.segments_sealed;
            self.events.segments_merged += outcome.segments_merged;
            self.rebase_wal()?;
        }
        Ok(outcome)
    }

    /// Rewrites the WAL to start at the oldest retained snapshot's
    /// sequence, dropping readings every retained snapshot already
    /// reflects. Recovery from any retained snapshot keeps working:
    /// each one's `wal_seq` is ≥ the new base.
    fn rebase_wal(&mut self) -> Result<(), StoreError> {
        let wal_path = self.dir.join(WAL_FILE);
        let bytes = self.fs.read(&wal_path)?;
        let scan = wal::scan(&bytes)?;
        let oldest =
            Self::files_with_suffix(&self.fs, &self.dir, SNAPSHOT_SUFFIX)?.first().and_then(|p| {
                p.file_name()?
                    .to_str()?
                    .strip_prefix("snap-")?
                    .strip_suffix(SNAPSHOT_SUFFIX)?
                    .parse::<u64>()
                    .ok()
            });
        let Some(base) = oldest else { return Ok(()) };
        if base <= scan.base {
            return Ok(());
        }
        let mut buf = wal::encode_header(&self.tracker, base);
        for r in scan.readings.get((base - scan.base) as usize..).unwrap_or_default() {
            buf.extend_from_slice(&wal::encode_reading_frame(r));
        }
        atomic_write(&self.fs, &wal_path, &buf)?;
        // The old handle points at the replaced file; reopen.
        self.wal = self.fs.open_append(&wal_path)?;
        Ok(())
    }

    /// Runs one budgeted scrub pass ([`StoreOptions::scrub_budget`]
    /// segments), quarantining any that fail re-verification.
    pub fn scrub_pass(&mut self) -> Result<ScrubReport, StoreError> {
        self.since_scrub = 0;
        let report = self.scrubber.pass(
            &self.fs,
            &self.dir,
            &mut self.manifest,
            self.opts.scrub_budget.max(1),
        )?;
        self.events.scrub_passes += 1;
        self.events.segments_scrubbed += report.segments_checked;
        self.events.scrub_corruptions += report.faults.len() as u64;
        self.events.segments_quarantined += report.quarantined_new;
        Ok(report)
    }

    /// Re-seals every quarantined segment whose rows the recovered
    /// closed log still covers (byte-identical to the original, since
    /// sealing is deterministic), returning `(repaired, unrepairable)`.
    /// A segment beyond the closed log — possible only after WAL data
    /// loss — stays quarantined.
    pub fn repair_segments(&mut self) -> Result<(u64, u64), StoreError> {
        let closed_len = self.tracker.closed_rows() as u64;
        let (mut repaired, mut unrepairable) = (0u64, 0u64);
        for i in 0..self.manifest.entries.len() {
            let Some(e) = self.manifest.entries.get(i).copied() else { break };
            if !e.quarantined {
                continue;
            }
            if e.end_row() > closed_len {
                unrepairable += 1;
                continue;
            }
            let rows = self
                .tracker
                .closed()
                .get(e.base_row as usize..e.end_row() as usize)
                .unwrap_or_default();
            let entry = compact::write_segment(&self.fs, &self.dir, e.base_row, rows)?;
            if let Some(slot) = self.manifest.entries.get_mut(i) {
                *slot = entry;
            }
            repaired += 1;
        }
        if repaired > 0 {
            self.manifest.store(&self.fs, &self.dir)?;
        }
        Ok((repaired, unrepairable))
    }

    /// Removes snapshot files that no longer decode (recovery already
    /// ignores them; `fsck` flags them). Returns the number removed.
    pub fn remove_invalid_snapshots(&mut self) -> Result<u64, StoreError> {
        let mut removed = 0;
        for path in Self::files_with_suffix(&self.fs, &self.dir, SNAPSHOT_SUFFIX)? {
            let ok = self.fs.read(&path).map_err(StoreError::Io).and_then(|b| snapshot::decode(&b));
            if ok.is_err() {
                self.fs.remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Assembles the full queryable history from the tiered store:
    /// verified segment rows, the hot closed tail past the sealed
    /// frontier, and open runs closed as-of-now. A segment that fails
    /// verification *at read time* is quarantined on the spot — the
    /// answer degrades (excluded rows are counted), it never panics and
    /// never silently serves damaged rows.
    pub fn assemble_history(&mut self) -> Result<HistoryView, StoreError> {
        let mut rows: Vec<crate::ott::OttRow> = Vec::new();
        let mut segment_rows = 0u64;
        let mut newly_quarantined = 0u64;
        for i in 0..self.manifest.entries.len() {
            let Some(e) = self.manifest.entries.get(i).copied() else { break };
            if e.quarantined {
                continue;
            }
            let healthy = match scrub::verify_entry(&self.fs, &self.dir, &e)? {
                Ok(_) => {
                    let bytes = self.fs.read(&self.dir.join(e.file_name()))?;
                    match segment::decode_rows(&bytes) {
                        Ok((meta, seg_rows)) => {
                            segment_rows += meta.row_count;
                            rows.extend(seg_rows);
                            true
                        }
                        Err(_) => false,
                    }
                }
                Err(_) => false,
            };
            if !healthy {
                if let Some(slot) = self.manifest.entries.get_mut(i) {
                    slot.quarantined = true;
                }
                newly_quarantined += 1;
            }
        }
        if newly_quarantined > 0 {
            self.events.scrub_corruptions += newly_quarantined;
            self.events.segments_quarantined += newly_quarantined;
            self.manifest.store(&self.fs, &self.dir)?;
        }
        let sealed = self.manifest.sealed_rows();
        rows.extend_from_slice(self.tracker.closed().get(sealed as usize..).unwrap_or_default());
        rows.extend(self.tracker.open_run_rows());
        let ott = ObjectTrackingTable::from_rows(rows)
            .map_err(|e| StoreError::InvalidState { reason: format!("assembling history: {e}") })?;
        Ok(HistoryView {
            ott,
            sealed_rows: sealed,
            segment_rows,
            quarantined_rows: self.manifest.quarantined_rows(),
            quarantined_segments: self.manifest.quarantined_segments() as u64,
        })
    }

    /// The segment-tier manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Drains the tier-maintenance event counts accumulated since the
    /// last call (compactions, scrub passes, quarantines).
    pub fn take_tier_events(&mut self) -> TierEvents {
        std::mem::take(&mut self.events)
    }

    /// The live tracker.
    pub fn tracker(&self) -> &OnlineTracker {
        &self.tracker
    }

    /// Total durable readings (absolute sequence).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The OTT + AR-tree image loaded from the recovered snapshot, if
    /// recovery restored one. Queryable without any index rebuild.
    pub fn loaded_snapshot(&self) -> Option<&SnapshotIndex> {
        self.loaded.as_ref()
    }

    /// Snapshots current state and closes the store, returning the final
    /// OTT (reorder buffer drained, every run closed).
    pub fn finish(mut self) -> Result<ObjectTrackingTable, StoreError> {
        self.snapshot()?;
        self.tracker.finish().map_err(StoreError::Stream)
    }

    /// Closes the store without snapshotting (the WAL alone carries the
    /// state), returning the tracker for further use.
    pub fn into_tracker(mut self) -> Result<OnlineTracker, StoreError> {
        self.fs.sync(&mut self.wal)?;
        Ok(self.tracker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ott::ObjectId;
    use crate::reading::RawReading;
    use inflow_indoor::DeviceId;

    /// One object bouncing between two devices: every reading closes the
    /// previous run, so `n` readings leave `n - 1` closed rows.
    fn bouncing_readings(n: usize) -> Vec<RawReading> {
        (0..n)
            .map(|i| RawReading {
                object: ObjectId(1),
                device: DeviceId((i % 2) as u32),
                t: i as f64,
            })
            .collect()
    }

    fn tiered_store() -> IngestStore<FailpointFs> {
        let fs = FailpointFs::new();
        let opts =
            StoreOptions { compact_every: Some(4), merge_factor: 0, ..StoreOptions::default() };
        let (mut store, _) =
            IngestStore::open(fs, Path::new("/s"), OnlineTracker::new(10.0), opts).unwrap();
        for r in bouncing_readings(14) {
            store.ingest(r).unwrap();
        }
        assert!(store.manifest.sealed_rows() >= 8, "workload seals at least two segments");
        store
    }

    #[test]
    fn repair_reseals_quarantined_segments_within_the_log() {
        let mut store = tiered_store();
        let original =
            store.fs.read(&Path::new("/s").join(store.manifest.entries[0].file_name())).unwrap();
        store.manifest.entries[0].quarantined = true;
        let (repaired, unrepairable) = store.repair_segments().unwrap();
        assert_eq!((repaired, unrepairable), (1, 0));
        assert!(!store.manifest.entries[0].quarantined);
        // Sealing is deterministic: the repaired file is byte-identical.
        let repaired_bytes =
            store.fs.read(&Path::new("/s").join(store.manifest.entries[0].file_name())).unwrap();
        assert_eq!(repaired_bytes, original);
    }

    #[test]
    fn repair_leaves_segments_beyond_the_closed_log_quarantined() {
        let mut store = tiered_store();
        // Doctor a quarantined entry claiming rows past the recovered
        // closed log — the shape WAL data loss would leave behind.
        let base = store.manifest.sealed_rows();
        store.manifest.entries.push(manifest::SegmentEntry {
            base_row: base,
            row_count: 1_000,
            t_min: 0.0,
            t_max: 1.0,
            file_len: 0,
            file_crc: 0,
            quarantined: true,
        });
        let (repaired, unrepairable) = store.repair_segments().unwrap();
        assert_eq!((repaired, unrepairable), (0, 1));
        assert!(store.manifest.entries.last().unwrap().quarantined);
    }
}
