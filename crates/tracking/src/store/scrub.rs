//! Background scrubbing: budgeted re-verification of sealed segments,
//! quarantine of damaged ones, and the offline `fsck` sweep.
//!
//! Bit rot does not announce itself — a cold segment can sit corrupt for
//! months until a historical query finally reads it. The [`Scrubber`]
//! walks the manifest round-robin, re-reading up to `budget` segments
//! per pass and checking, in escalating depth: the file exists, its
//! length matches the manifest, its whole-file CRC matches, and its
//! header frame still matches the manifest entry
//! ([`verify_entry_fast`] — the offline `fsck` sweep and the read path
//! additionally decode every frame strictly via [`verify_entry`] /
//! [`segment::decode_rows`]). Any failure **quarantines** the entry
//! (manifest swap) and
//! lands in a typed [`ScrubReport`]; the store keeps serving, with the
//! quarantined rows excluded from answers and surfaced through
//! `DataQuality`. Scrubbing never panics and never mutates segment
//! files — repair is a separate, explicit step
//! ([`super::IngestStore::repair_segments`]).

use super::manifest::{Manifest, SegmentEntry, MANIFEST_FILE};
use super::{frame, segment, snapshot, wal, Fs, StoreError, SNAPSHOT_SUFFIX, WAL_FILE};
use std::path::Path;

/// How a sealed segment failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentFaultKind {
    /// The file named by the manifest does not exist.
    Missing,
    /// The file's length differs from the manifest entry (truncation or
    /// trailing garbage).
    Length,
    /// The whole-file CRC differs from the manifest entry (bit rot).
    Checksum,
    /// The file decodes incorrectly or its header contradicts the
    /// manifest entry.
    Decode,
}

impl std::fmt::Display for SegmentFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentFaultKind::Missing => write!(f, "file missing"),
            SegmentFaultKind::Length => write!(f, "length mismatch"),
            SegmentFaultKind::Checksum => write!(f, "checksum mismatch"),
            SegmentFaultKind::Decode => write!(f, "decode failure"),
        }
    }
}

/// One damaged segment found by a scrub pass or fsck sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentFault {
    /// First row of the damaged segment.
    pub base_row: u64,
    /// Rows the segment was supposed to hold.
    pub row_count: u64,
    pub kind: SegmentFaultKind,
}

/// What one scrub pass found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Segments verified this pass (quarantined ones are skipped).
    pub segments_checked: u64,
    /// Total bytes re-read and CRC-verified.
    pub bytes_verified: u64,
    /// Damage found this pass, in scan order.
    pub faults: Vec<SegmentFault>,
    /// Segments newly quarantined this pass (= `faults.len()`).
    pub quarantined_new: u64,
    /// True when every healthy segment was verified this pass (budget
    /// covered the whole manifest).
    pub complete: bool,
}

impl ScrubReport {
    /// Human-readable multi-line rendering for CLI output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "scrubbed {} segment(s), {} byte(s) verified{}\n",
            self.segments_checked,
            self.bytes_verified,
            if self.complete { " (full pass)" } else { "" }
        );
        for f in &self.faults {
            out.push_str(&format!(
                "  QUARANTINED rows [{}, {}): {}\n",
                f.base_row,
                f.base_row + f.row_count,
                f.kind
            ));
        }
        out
    }
}

/// Verifies one manifest entry against its file, fully: existence,
/// length, whole-file CRC, and a strict structural decode
/// ([`segment::decode_rows`]) matching the manifest header. `Ok(Ok(bytes))`
/// when healthy, `Ok(Err(kind))` when the *segment* is damaged, `Err(_)`
/// only for infrastructure I/O failures (which must not quarantine).
/// This is the depth `fsck` and the read path use.
pub fn verify_entry<F: Fs>(
    fs: &F,
    dir: &Path,
    e: &SegmentEntry,
) -> Result<Result<u64, SegmentFaultKind>, StoreError> {
    let bytes = match read_and_checksum(fs, dir, e)? {
        Ok(b) => b,
        Err(kind) => return Ok(Err(kind)),
    };
    match segment::decode_rows(&bytes) {
        Ok((meta, _)) if meta_matches(&meta, e) => Ok(Ok(bytes.len() as u64)),
        _ => Ok(Err(SegmentFaultKind::Decode)),
    }
}

/// The background scrubber's per-segment check: existence, length,
/// whole-file CRC, and the header frame against the manifest entry. The
/// CRC was computed at seal time over a buffer that had just passed the
/// strict encoder, so a matching checksum proves every row frame is the
/// sealed original — re-decoding them on every rotation buys no extra
/// detection, only latency in the ingest loop. Full structural decode
/// stays in [`verify_entry`] (fsck, read path).
pub fn verify_entry_fast<F: Fs>(
    fs: &F,
    dir: &Path,
    e: &SegmentEntry,
) -> Result<Result<u64, SegmentFaultKind>, StoreError> {
    let bytes = match read_and_checksum(fs, dir, e)? {
        Ok(b) => b,
        Err(kind) => return Ok(Err(kind)),
    };
    match segment::decode_header(&bytes) {
        Ok(meta) if meta_matches(&meta, e) => Ok(Ok(bytes.len() as u64)),
        _ => Ok(Err(SegmentFaultKind::Decode)),
    }
}

fn meta_matches(meta: &segment::SegmentMeta, e: &SegmentEntry) -> bool {
    meta.base_row == e.base_row
        && meta.row_count == e.row_count
        && meta.t_min == e.t_min
        && meta.t_max == e.t_max
}

/// The shared shallow tiers: existence, length, whole-file CRC.
fn read_and_checksum<F: Fs>(
    fs: &F,
    dir: &Path,
    e: &SegmentEntry,
) -> Result<Result<Vec<u8>, SegmentFaultKind>, StoreError> {
    let path = dir.join(e.file_name());
    if !fs.exists(&path) {
        return Ok(Err(SegmentFaultKind::Missing));
    }
    let bytes = match fs.read(&path) {
        Ok(b) => b,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Err(SegmentFaultKind::Missing));
        }
        Err(err) => return Err(err.into()),
    };
    if bytes.len() as u64 != e.file_len {
        return Ok(Err(SegmentFaultKind::Length));
    }
    if frame::crc32(&bytes) != e.file_crc {
        return Ok(Err(SegmentFaultKind::Checksum));
    }
    Ok(Ok(bytes))
}

/// Round-robin segment scrubber. Holds only a cursor; all durable state
/// lives in the manifest, so a restart simply begins a fresh rotation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scrubber {
    cursor: usize,
}

impl Scrubber {
    pub fn new() -> Scrubber {
        Scrubber::default()
    }

    /// Verifies up to `budget` healthy segments, continuing where the
    /// last pass stopped. Faulty segments are quarantined with a single
    /// manifest swap at the end of the pass.
    pub fn pass<F: Fs>(
        &mut self,
        fs: &F,
        dir: &Path,
        manifest: &mut Manifest,
        budget: usize,
    ) -> Result<ScrubReport, StoreError> {
        let mut report = ScrubReport::default();
        let n = manifest.entries.len();
        let healthy = manifest.entries.iter().filter(|e| !e.quarantined).count();
        if n == 0 || healthy == 0 {
            report.complete = true;
            return Ok(report);
        }
        let start = self.cursor % n;
        let mut visited = 0;
        for k in 0..n {
            if report.segments_checked as usize >= budget {
                break;
            }
            visited = k + 1;
            let i = (start + k) % n;
            let Some(e) = manifest.entries.get(i).copied() else { break };
            if e.quarantined {
                continue;
            }
            report.segments_checked += 1;
            match verify_entry_fast(fs, dir, &e)? {
                Ok(bytes) => report.bytes_verified += bytes,
                Err(kind) => {
                    report.faults.push(SegmentFault {
                        base_row: e.base_row,
                        row_count: e.row_count,
                        kind,
                    });
                    if let Some(slot) = manifest.entries.get_mut(i) {
                        slot.quarantined = true;
                    }
                    report.quarantined_new += 1;
                }
            }
        }
        self.cursor = (start + visited) % n;
        report.complete = report.segments_checked as usize >= healthy;
        if report.quarantined_new > 0 {
            manifest.store(fs, dir)?;
        }
        Ok(report)
    }
}

/// Full offline integrity sweep of a store directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// A manifest file exists (a pre-segment store has none — fine).
    pub manifest_present: bool,
    /// The manifest (when present) decoded and validated.
    pub manifest_valid: bool,
    /// Segment entries in the manifest.
    pub segments: u64,
    /// Entries whose file verified end-to-end.
    pub segments_ok: u64,
    /// Entries already quarantined before this sweep.
    pub already_quarantined: u64,
    /// Damage found in previously-healthy segments (not yet quarantined
    /// by this read-only sweep — run a scrub pass or repair to act).
    pub faults: Vec<SegmentFault>,
    /// The WAL scanned cleanly (header intact; a missing WAL is valid).
    pub wal_valid: bool,
    /// Readings in the WAL's valid prefix.
    pub wal_records: u64,
    /// Torn bytes past the WAL's valid prefix.
    pub wal_torn_bytes: u64,
    /// Snapshot files present.
    pub snapshots: u64,
    /// Snapshot files that decoded and validated.
    pub snapshots_ok: u64,
}

impl FsckReport {
    /// True when nothing needs attention: manifest and WAL intact, no
    /// segment damage (found now or previously), every snapshot valid.
    pub fn healthy(&self) -> bool {
        self.manifest_valid
            && self.wal_valid
            && self.faults.is_empty()
            && self.already_quarantined == 0
            && self.wal_torn_bytes == 0
            && self.snapshots == self.snapshots_ok
    }

    /// Human-readable multi-line rendering for CLI output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "manifest: {}\n",
            match (self.manifest_present, self.manifest_valid) {
                (false, _) => "absent (WAL-only store)".to_string(),
                (true, true) => format!("{} segment(s)", self.segments),
                (true, false) => "CORRUPT".to_string(),
            }
        ));
        out.push_str(&format!(
            "segments: {} ok, {} quarantined, {} newly damaged\n",
            self.segments_ok,
            self.already_quarantined,
            self.faults.len()
        ));
        for f in &self.faults {
            out.push_str(&format!(
                "  DAMAGED rows [{}, {}): {}\n",
                f.base_row,
                f.base_row + f.row_count,
                f.kind
            ));
        }
        out.push_str(&format!(
            "wal: {}, {} reading(s){}\n",
            if self.wal_valid { "ok" } else { "CORRUPT" },
            self.wal_records,
            if self.wal_torn_bytes > 0 {
                format!(", {} torn byte(s)", self.wal_torn_bytes)
            } else {
                String::new()
            }
        ));
        out.push_str(&format!("snapshots: {}/{} valid\n", self.snapshots_ok, self.snapshots));
        out.push_str(if self.healthy() { "store is healthy\n" } else { "store needs attention\n" });
        out
    }
}

/// Read-only integrity sweep over every durable artifact in `dir`:
/// manifest, all segments, the WAL, and all snapshots. Detection only —
/// nothing is quarantined, truncated, or repaired.
pub fn fsck<F: Fs>(fs: &F, dir: &Path) -> Result<FsckReport, StoreError> {
    let mut report = FsckReport::default();

    let manifest_path = dir.join(MANIFEST_FILE);
    report.manifest_present = fs.exists(&manifest_path);
    let manifest = if report.manifest_present {
        match fs.read(&manifest_path).map_err(StoreError::Io).and_then(|b| Manifest::decode(&b)) {
            Ok(m) => {
                report.manifest_valid = true;
                m
            }
            Err(_) => Manifest::default(),
        }
    } else {
        report.manifest_valid = true;
        Manifest::default()
    };

    report.segments = manifest.entries.len() as u64;
    for e in &manifest.entries {
        if e.quarantined {
            report.already_quarantined += 1;
            continue;
        }
        match verify_entry(fs, dir, e)? {
            Ok(_) => report.segments_ok += 1,
            Err(kind) => report.faults.push(SegmentFault {
                base_row: e.base_row,
                row_count: e.row_count,
                kind,
            }),
        }
    }

    let wal_path = dir.join(WAL_FILE);
    if fs.exists(&wal_path) {
        match fs.read(&wal_path).map_err(StoreError::Io).and_then(|b| wal::scan(&b)) {
            Ok(scan) => {
                report.wal_valid = true;
                report.wal_records = scan.readings.len() as u64;
                report.wal_torn_bytes = scan.truncated as u64;
            }
            Err(_) => report.wal_valid = false,
        }
    } else {
        report.wal_valid = true;
    }

    for path in fs.list(dir)? {
        let is_snap =
            path.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.ends_with(SNAPSHOT_SUFFIX));
        if !is_snap {
            continue;
        }
        report.snapshots += 1;
        if fs.read(&path).map_err(StoreError::Io).and_then(|b| snapshot::decode(&b)).is_ok() {
            report.snapshots_ok += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ott::{ObjectId, OttRow};
    use crate::store::{compact, FailpointFs};
    use inflow_indoor::DeviceId;

    fn rows(n: usize) -> Vec<OttRow> {
        (0..n)
            .map(|i| OttRow {
                object: ObjectId((i % 5) as u32),
                device: DeviceId((i % 3) as u32),
                ts: i as f64,
                te: i as f64 + 0.5,
            })
            .collect()
    }

    fn sealed_store(n_rows: usize, every: u64) -> (FailpointFs, Manifest) {
        let fs = FailpointFs::new();
        let dir = Path::new("/s");
        fs.create_dir_all(dir).unwrap();
        let mut m = Manifest::default();
        compact::compact(&fs, dir, &mut m, &rows(n_rows), every, 0).unwrap();
        m.store(&fs, dir).unwrap();
        (fs, m)
    }

    #[test]
    fn clean_store_scrubs_clean() {
        let (fs, mut m) = sealed_store(16, 4);
        let mut s = Scrubber::new();
        let report = s.pass(&fs, Path::new("/s"), &mut m, 10).unwrap();
        assert_eq!(report.segments_checked, 4);
        assert!(report.faults.is_empty());
        assert!(report.complete);
        assert!(report.bytes_verified > 0);
    }

    #[test]
    fn budget_splits_rotation_across_passes() {
        let (fs, mut m) = sealed_store(16, 4);
        let dir = Path::new("/s");
        let mut s = Scrubber::new();
        let a = s.pass(&fs, dir, &mut m, 3).unwrap();
        assert_eq!(a.segments_checked, 3);
        assert!(!a.complete);
        let b = s.pass(&fs, dir, &mut m, 3).unwrap();
        // The rotation continues: segment 4 then wraps to 1 and 2.
        assert_eq!(b.segments_checked, 3);
    }

    #[test]
    fn each_fault_kind_is_detected_and_quarantined() {
        type Damage = fn(&FailpointFs, &std::path::Path);
        let dir = Path::new("/s");
        let cases: [(&str, Damage); 4] = [
            ("missing", |fs, p| {
                fs.remove_file(p).unwrap();
            }),
            ("truncated", |fs, p| {
                let mut b = fs.dump(p).unwrap();
                b.truncate(b.len() - 3);
                fs.store_raw(p, b);
            }),
            ("flipped", |fs, p| {
                let mut b = fs.dump(p).unwrap();
                let mid = b.len() / 2;
                b[mid] ^= 0x40;
                fs.store_raw(p, b);
            }),
            ("extended", |fs, p| {
                let mut b = fs.dump(p).unwrap();
                b.push(0);
                fs.store_raw(p, b);
            }),
        ];
        for (name, damage) in cases {
            let (fs, mut m) = sealed_store(16, 4);
            let victim = dir.join(m.entries[1].file_name());
            damage(&fs, &victim);
            let mut s = Scrubber::new();
            let report = s.pass(&fs, dir, &mut m, 10).unwrap();
            assert_eq!(report.quarantined_new, 1, "case {name}");
            assert_eq!(report.faults.len(), 1, "case {name}");
            assert_eq!(report.faults[0].base_row, 4, "case {name}");
            assert!(m.entries[1].quarantined, "case {name}");
            // The quarantine is durable: reload and re-scrub skips it.
            let reloaded = Manifest::load(&fs, dir).unwrap().unwrap();
            assert_eq!(reloaded, m);
            let again = s.pass(&fs, dir, &mut m, 10).unwrap();
            assert_eq!(again.quarantined_new, 0, "case {name}");
            assert_eq!(again.segments_checked, 3, "case {name}");
        }
    }

    #[test]
    fn wrong_header_vs_manifest_is_a_decode_fault() {
        // Swap two same-length segment files: each still decodes, but
        // the header no longer matches its manifest entry.
        let (fs, mut m) = sealed_store(16, 4);
        let dir = Path::new("/s");
        let (p0, p1) = (dir.join(m.entries[0].file_name()), dir.join(m.entries[1].file_name()));
        let (b0, b1) = (fs.dump(&p0).unwrap(), fs.dump(&p1).unwrap());
        if b0.len() == b1.len() {
            fs.store_raw(&p0, b1);
            fs.store_raw(&p1, b0);
            let mut s = Scrubber::new();
            let report = s.pass(&fs, dir, &mut m, 10).unwrap();
            assert!(report.quarantined_new >= 1);
            assert!(report.faults.iter().all(|f| f.kind != SegmentFaultKind::Missing));
        }
    }

    #[test]
    fn fsck_reports_clean_and_damaged_stores() {
        let (fs, m) = sealed_store(16, 4);
        let dir = Path::new("/s");
        let clean = fsck(&fs, dir).unwrap();
        assert!(clean.healthy(), "{}", clean.render());
        assert_eq!(clean.segments_ok, 4);

        let victim = dir.join(m.entries[2].file_name());
        let mut b = fs.dump(&victim).unwrap();
        b[10] ^= 0xFF;
        fs.store_raw(&victim, b);
        let dirty = fsck(&fs, dir).unwrap();
        assert!(!dirty.healthy());
        assert_eq!(dirty.faults.len(), 1);
        assert_eq!(dirty.faults[0].base_row, 8);
        // fsck is read-only: the manifest still lists the entry healthy.
        assert!(!Manifest::load(&fs, dir).unwrap().unwrap().entries[2].quarantined);
    }

    #[test]
    fn fsck_of_empty_dir_is_healthy() {
        let fs = FailpointFs::new();
        let dir = Path::new("/s");
        fs.create_dir_all(dir).unwrap();
        let report = fsck(&fs, dir).unwrap();
        assert!(report.healthy(), "{}", report.render());
        assert!(!report.manifest_present);
    }
}
