//! Symbolic indoor tracking data management.
//!
//! In symbolic indoor tracking (paper §2.1) raw position readings
//! `⟨objectID, deviceID, t⟩` are reported whenever an object is inside a
//! proximity-detection device's range. Consecutive raw readings by the same
//! device are merged into *tracking records*
//! `⟨ID, objectID, deviceID, t_s, t_e⟩` stored in the **Object Tracking
//! Table (OTT)**.
//!
//! This crate implements:
//!
//! * [`RawReading`] and the reading→record merger ([`merge_raw_readings`]);
//! * [`TrackingRecord`] / [`ObjectTrackingTable`] with per-object record
//!   chains and predecessor/successor navigation;
//! * the **AR-tree** ([`ArTree`], §4.1): a temporal index over *augmented
//!   tracking time intervals* `(rd_pre.t_e, rd.t_e]` whose leaf entries
//!   carry pointers to the current and predecessor records, supporting the
//!   point and range queries that drive uncertainty-region derivation;
//! * [`ObjectState`] resolution — the active/inactive state machine of
//!   §3.1.1 (Figure 1).

pub mod artree;
pub mod io;
pub mod ott;
pub mod reading;
pub mod sanitize;
pub mod store;
pub mod stream;

pub use artree::{ArTree, ArTreeEntry, FlatTreeError};
pub use io::{
    read_ott_csv, read_quarantine_csv, read_readings_csv, write_ott_csv, write_quarantine_csv,
    write_readings_csv, write_table_csv, CsvError,
};
pub use ott::{
    ObjectId, ObjectState, ObjectTrackingTable, OttError, OttRow, RecordId, TrackingRecord,
};
pub use reading::{merge_raw_readings, RawReading, ReadingError};
pub use sanitize::{
    readmit_rows, sanitize_rows, AnomalyKind, DeviceOracle, Policy, ReadingSanitizer,
    RowSanitizeOutcome, SanitizeConfig, SanitizeReport,
};
pub use store::{
    atomic_write, CompactionOutcome, FailpointFs, FailpointWriter, FrameErrorKind, Fs, FsckReport,
    HistoryView, IngestStore, Manifest, RecoveryReport, ScrubReport, Scrubber, SegmentEntry,
    SegmentFault, SegmentFaultKind, SnapshotIndex, StdFs, StoreError, StoreOptions, TierEvents,
};
pub use stream::{OnlineTracker, RestoreError, StreamError};

/// Timestamps are seconds (f64) from an arbitrary epoch.
pub type Timestamp = f64;
