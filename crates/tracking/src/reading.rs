//! Raw position readings and the reading→record merger.

use crate::ott::{ObjectId, OttRow};
use crate::Timestamp;
use inflow_indoor::DeviceId;

/// A raw position reading `⟨objectID, deviceID, t⟩` (paper §2.1): the
/// object was seen by the device at time `t`. Positioning works at a
/// configured sampling frequency, so an object in range typically produces
/// many consecutive raw readings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawReading {
    pub object: ObjectId,
    pub device: DeviceId,
    pub t: Timestamp,
}

/// Error constructing a [`RawReading`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadingError {
    /// The timestamp is NaN or infinite.
    NonFiniteTimestamp { object: ObjectId, device: DeviceId },
}

impl std::fmt::Display for ReadingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadingError::NonFiniteTimestamp { object, device } => write!(
                f,
                "non-finite timestamp in reading for object {} at device {}",
                object.0, device.0
            ),
        }
    }
}

impl std::error::Error for ReadingError {}

impl RawReading {
    /// Creates a reading, rejecting NaN/infinite timestamps.
    pub fn new(
        object: ObjectId,
        device: DeviceId,
        t: Timestamp,
    ) -> Result<RawReading, ReadingError> {
        if !t.is_finite() {
            return Err(ReadingError::NonFiniteTimestamp { object, device });
        }
        Ok(RawReading { object, device, t })
    }
}

/// Merges raw readings into OTT rows (paper §2.1): maximal runs of
/// readings of the same object by the same device, where consecutive
/// readings are at most `max_gap` apart, become one
/// `⟨object, device, t_s, t_e⟩` row.
///
/// `max_gap` should be slightly above the sampling period (e.g. 1.5–2×) so
/// an occasional missed sample does not split a run, while a genuine
/// departure and return produces two records.
///
/// Readings may be supplied in any order; they are sorted internally.
pub fn merge_raw_readings(mut readings: Vec<RawReading>, max_gap: f64) -> Vec<OttRow> {
    assert!(max_gap > 0.0, "max_gap must be positive");
    readings.sort_by(|a, b| {
        a.object.cmp(&b.object).then_with(|| a.t.total_cmp(&b.t)).then(a.device.0.cmp(&b.device.0))
    });
    let mut rows: Vec<OttRow> = Vec::new();
    let mut open: Option<OttRow> = None;
    for r in readings {
        match open.as_mut() {
            Some(row)
                if row.object == r.object && row.device == r.device && r.t - row.te <= max_gap =>
            {
                row.te = r.t;
            }
            _ => {
                if let Some(done) = open.take() {
                    rows.push(done);
                }
                open = Some(OttRow { object: r.object, device: r.device, ts: r.t, te: r.t });
            }
        }
    }
    if let Some(done) = open {
        rows.push(done);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(o: u32, d: u32, t: f64) -> RawReading {
        RawReading { object: ObjectId(o), device: DeviceId(d), t }
    }

    #[test]
    fn consecutive_readings_merge() {
        let rows = merge_raw_readings(
            vec![reading(1, 1, 0.0), reading(1, 1, 1.0), reading(1, 1, 2.0)],
            1.5,
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].ts, 0.0);
        assert_eq!(rows[0].te, 2.0);
    }

    #[test]
    fn gap_splits_runs() {
        let rows = merge_raw_readings(
            vec![reading(1, 1, 0.0), reading(1, 1, 1.0), reading(1, 1, 5.0)],
            1.5,
        );
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].ts, rows[0].te), (0.0, 1.0));
        assert_eq!((rows[1].ts, rows[1].te), (5.0, 5.0));
    }

    #[test]
    fn device_change_splits_runs() {
        let rows = merge_raw_readings(
            vec![reading(1, 1, 0.0), reading(1, 2, 1.0), reading(1, 1, 2.0)],
            1.5,
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].device, DeviceId(1));
        assert_eq!(rows[1].device, DeviceId(2));
        assert_eq!(rows[2].device, DeviceId(1));
    }

    #[test]
    fn objects_are_independent() {
        let rows = merge_raw_readings(
            vec![reading(1, 1, 0.0), reading(2, 1, 0.5), reading(1, 1, 1.0), reading(2, 1, 1.5)],
            1.5,
        );
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r.object == ObjectId(1) && r.te == 1.0));
        assert!(rows.iter().any(|r| r.object == ObjectId(2) && r.te == 1.5));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let rows = merge_raw_readings(
            vec![reading(1, 1, 2.0), reading(1, 1, 0.0), reading(1, 1, 1.0)],
            1.5,
        );
        assert_eq!(rows.len(), 1);
        assert_eq!((rows[0].ts, rows[0].te), (0.0, 2.0));
    }

    #[test]
    fn single_reading_yields_point_record() {
        let rows = merge_raw_readings(vec![reading(3, 7, 9.0)], 1.0);
        assert_eq!(rows.len(), 1);
        assert_eq!((rows[0].ts, rows[0].te), (9.0, 9.0));
        assert_eq!(rows[0].device, DeviceId(7));
    }

    #[test]
    fn empty_input() {
        assert!(merge_raw_readings(Vec::new(), 1.0).is_empty());
    }

    #[test]
    fn checked_constructor_rejects_non_finite_timestamps() {
        assert!(RawReading::new(ObjectId(1), DeviceId(2), 3.0).is_ok());
        let err = RawReading::new(ObjectId(1), DeviceId(2), f64::NAN).unwrap_err();
        assert_eq!(
            err,
            ReadingError::NonFiniteTimestamp { object: ObjectId(1), device: DeviceId(2) }
        );
        assert!(err.to_string().contains("non-finite"));
        assert!(RawReading::new(ObjectId(1), DeviceId(2), f64::INFINITY).is_err());
    }
}
