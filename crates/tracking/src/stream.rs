//! Incremental ingestion of raw readings.
//!
//! The batch pipeline ([`crate::merge_raw_readings`] →
//! [`ObjectTrackingTable::from_rows`]) suits historical analysis; a live
//! deployment instead receives readings continuously. [`OnlineTracker`]
//! maintains the per-object *open runs* (a run is a maximal sequence of
//! same-device readings with gaps below the merge threshold), closes runs
//! into OTT rows as soon as they can no longer grow, and periodically
//! snapshots a queryable [`ObjectTrackingTable`].
//!
//! Equivalence with the batch merger is guaranteed (and tested): feeding
//! the same readings in timestamp order produces the same rows. With
//! [`OnlineTracker::with_reorder`], the same holds for *out-of-order*
//! streams as long as no reading is later than the configured lateness
//! bound — a bounded reorder buffer holds readings until the watermark
//! passes them, then applies them in timestamp order.
//!
//! A tracker can also [checkpoint](OnlineTracker::checkpoint) its complete
//! state to a writer and be [restored](OnlineTracker::restore) after a
//! crash; the restored tracker converges to the uninterrupted run (tested).

use crate::io::{content_lines, parse, parse_finite, CsvError};
use crate::ott::{ObjectId, ObjectTrackingTable, OttError, OttRow};
use crate::reading::RawReading;
use crate::store::frame::{self, fnv1a, tag, Cursor, Frame, FrameReader};
use crate::store::StoreError;
use crate::Timestamp;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, BufRead, Write};

/// An in-progress detection run for one object.
#[derive(Debug, Clone, Copy)]
struct OpenRun {
    device: inflow_indoor::DeviceId,
    ts: Timestamp,
    te: Timestamp,
}

/// Min-heap ordering for the reorder buffer (earliest timestamp first,
/// deterministic tie-breaking by object then device).
#[derive(Debug, Clone, Copy)]
struct Pending(RawReading);

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Pending {}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so BinaryHeap (a max-heap) pops the earliest first.
        other
            .0
            .t
            .total_cmp(&self.0.t)
            .then_with(|| other.0.object.cmp(&self.0.object))
            .then_with(|| other.0.device.0.cmp(&self.0.device.0))
    }
}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Incremental raw-reading ingester.
///
/// In the strict mode ([`OnlineTracker::new`]) readings must arrive in
/// non-decreasing timestamp order per object; out-of-order arrivals are
/// rejected with [`StreamError::OutOfOrderReading`]. With
/// [`OnlineTracker::with_reorder`] a bounded reorder buffer absorbs
/// disorder up to an allowed lateness instead: readings are held until the
/// watermark (largest timestamp seen) passes them by the lateness bound,
/// then applied in timestamp order; readings later than the bound are
/// dropped and counted ([`OnlineTracker::late_dropped`]), never an error.
#[derive(Debug, Default)]
pub struct OnlineTracker {
    max_gap: f64,
    /// Allowed lateness of the reorder buffer; `None` = strict mode.
    lateness: Option<f64>,
    open: HashMap<ObjectId, OpenRun>,
    closed: Vec<OttRow>,
    /// Readings buffered for reordering (reorder mode only).
    pending: BinaryHeap<Pending>,
    /// Largest timestamp ingested so far.
    watermark: Timestamp,
    /// Largest timestamp already applied from the reorder buffer; a
    /// reading below this frontier is too late to reorder.
    applied_to: Timestamp,
    /// Readings dropped for exceeding the lateness bound.
    late_dropped: u64,
}

/// Errors raised during streaming ingestion.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A reading arrived with a timestamp earlier than the object's
    /// current open run (strict mode only).
    OutOfOrderReading { object: ObjectId, t: Timestamp, run_end: Timestamp },
    /// Snapshot failed because accumulated rows violate OTT invariants.
    Ott(OttError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::OutOfOrderReading { object, t, run_end } => {
                write!(f, "reading for {object} at t={t} precedes its open run end {run_end}")
            }
            StreamError::Ott(e) => write!(f, "snapshot failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Errors raised while restoring a checkpoint ([`OnlineTracker::restore`]).
#[derive(Debug)]
pub enum RestoreError {
    /// Reading the checkpoint stream failed.
    Io(io::Error),
    /// A legacy text checkpoint (v1 CSV format) was malformed.
    Csv(CsvError),
    /// A binary checkpoint was torn, corrupted or inconsistent.
    Store(StoreError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Io(e) => write!(f, "checkpoint read failed: {e}"),
            RestoreError::Csv(e) => write!(f, "invalid text checkpoint: {e}"),
            RestoreError::Store(e) => write!(f, "invalid binary checkpoint: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestoreError::Io(e) => Some(e),
            RestoreError::Csv(e) => Some(e),
            RestoreError::Store(e) => Some(e),
        }
    }
}

impl From<io::Error> for RestoreError {
    fn from(e: io::Error) -> RestoreError {
        RestoreError::Io(e)
    }
}

impl From<CsvError> for RestoreError {
    fn from(e: CsvError) -> RestoreError {
        RestoreError::Csv(e)
    }
}

impl From<StoreError> for RestoreError {
    fn from(e: StoreError) -> RestoreError {
        RestoreError::Store(e)
    }
}

const CHECKPOINT_HEADER: &str = "# inflow online-tracker checkpoint v1";

/// Magic prefix of a binary checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"IFCKP001";

impl OnlineTracker {
    /// Creates a strict tracker with the given merge gap (same semantics
    /// as [`crate::merge_raw_readings`]): out-of-order readings error.
    pub fn new(max_gap: f64) -> OnlineTracker {
        assert!(max_gap > 0.0, "max_gap must be positive");
        OnlineTracker {
            max_gap,
            watermark: f64::NEG_INFINITY,
            applied_to: f64::NEG_INFINITY,
            ..OnlineTracker::default()
        }
    }

    /// Creates a tracker with a bounded reorder buffer: readings are held
    /// until the watermark passes them by `lateness` seconds, then applied
    /// in timestamp order. A reading later than that is dropped and
    /// counted, never an error.
    pub fn with_reorder(max_gap: f64, lateness: f64) -> OnlineTracker {
        assert!(lateness >= 0.0 && lateness.is_finite(), "lateness must be finite, non-negative");
        let mut t = OnlineTracker::new(max_gap);
        t.lateness = Some(lateness);
        t
    }

    /// Ingests one reading.
    pub fn ingest(&mut self, r: RawReading) -> Result<(), StreamError> {
        self.ingest_with(r, &mut |_| {})
    }

    /// Ingests one reading, invoking `on_apply` for every reading actually
    /// applied to run state. In strict mode that is the reading itself (on
    /// success); in reorder mode a single ingest can drain and apply
    /// several buffered readings — possibly for *other* objects — and a
    /// buffered or dropped reading triggers no callback at all. This is
    /// the delta-emission hook the sharded flow-monitoring service uses to
    /// learn which objects' rows changed.
    pub fn ingest_with(
        &mut self,
        r: RawReading,
        on_apply: &mut dyn FnMut(RawReading),
    ) -> Result<(), StreamError> {
        let Some(lateness) = self.lateness else {
            self.watermark = self.watermark.max(r.t);
            self.apply(r)?;
            on_apply(r);
            return Ok(());
        };
        // A reading behind the lateness horizon may be older than already
        // applied readings: drop it. Everything at or above the horizon is
        // still applied in timestamp order, because drains never advance
        // `applied_to` past the horizon.
        if r.t < self.watermark - lateness {
            self.late_dropped += 1;
            return Ok(());
        }
        self.pending.push(Pending(r));
        self.watermark = self.watermark.max(r.t);
        let horizon = self.watermark - lateness;
        while let Some(&Pending(head)) = self.pending.peek() {
            if head.t > horizon {
                break;
            }
            self.pending.pop();
            self.applied_to = self.applied_to.max(head.t);
            // Drained readings are in timestamp order, so this cannot hit
            // the out-of-order branch; propagating keeps the serving path
            // panic-free either way.
            self.apply(head)?;
            on_apply(head);
        }
        Ok(())
    }

    /// Applies one reading to the run state. In reorder mode readings
    /// reach this in global timestamp order, so the out-of-order branch is
    /// unreachable there.
    fn apply(&mut self, r: RawReading) -> Result<(), StreamError> {
        match self.open.get_mut(&r.object) {
            Some(run)
                if run.device == r.device && r.t >= run.te && r.t - run.te <= self.max_gap =>
            {
                run.te = r.t;
                Ok(())
            }
            Some(run) if r.t < run.te => {
                Err(StreamError::OutOfOrderReading { object: r.object, t: r.t, run_end: run.te })
            }
            Some(run) => {
                // Device change or gap: close the current run.
                self.closed.push(OttRow {
                    object: r.object,
                    device: run.device,
                    ts: run.ts,
                    te: run.te,
                });
                *run = OpenRun { device: r.device, ts: r.t, te: r.t };
                Ok(())
            }
            None => {
                self.open.insert(r.object, OpenRun { device: r.device, ts: r.t, te: r.t });
                Ok(())
            }
        }
    }

    /// Ingests a batch of readings (strict mode: must respect per-object
    /// time order; reorder mode: any order within the lateness bound).
    pub fn ingest_all(
        &mut self,
        readings: impl IntoIterator<Item = RawReading>,
    ) -> Result<(), StreamError> {
        for r in readings {
            self.ingest(r)?;
        }
        Ok(())
    }

    /// Number of rows already closed (excludes open runs).
    pub fn closed_rows(&self) -> usize {
        self.closed.len()
    }

    /// All rows closed so far, in closure order. The slice only grows
    /// between calls (rows are never reordered or removed), so a caller
    /// can mirror it incrementally with a cursor.
    pub fn closed(&self) -> &[OttRow] {
        &self.closed
    }

    /// The object's open run as an as-of-now row (`te` = last applied
    /// reading), or `None` when the object has no open run.
    pub fn open_run_row(&self, object: ObjectId) -> Option<OttRow> {
        self.open.get(&object).map(|run| OttRow {
            object,
            device: run.device,
            ts: run.ts,
            te: run.te,
        })
    }

    /// Number of objects with an open run.
    pub fn open_runs(&self) -> usize {
        self.open.len()
    }

    /// Every open run as an as-of-now row (see [`Self::open_run_row`]) —
    /// the live complement of [`Self::closed`] when assembling a
    /// queryable history from tiered storage.
    pub fn open_run_rows(&self) -> Vec<OttRow> {
        self.open
            .iter()
            .map(|(&object, run)| OttRow { object, device: run.device, ts: run.ts, te: run.te })
            .collect()
    }

    /// Number of readings still held in the reorder buffer.
    pub fn pending_readings(&self) -> usize {
        self.pending.len()
    }

    /// Readings dropped for arriving later than the lateness bound.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// The largest timestamp seen (`NEG_INFINITY` before any reading).
    pub fn watermark(&self) -> Timestamp {
        self.watermark
    }

    /// Closes every open run whose gap to the watermark already exceeds
    /// the merge threshold — they can never be extended again. Returns the
    /// number of runs closed. Call periodically to bound memory.
    ///
    /// In reorder mode the effective watermark for expiry is held back by
    /// the lateness bound, since a buffered reading may still extend a run.
    pub fn expire_stale_runs(&mut self) -> usize {
        let watermark = self.watermark - self.lateness.unwrap_or(0.0);
        let max_gap = self.max_gap;
        let closed = &mut self.closed;
        let before = self.open.len();
        self.open.retain(|&object, run| {
            if watermark - run.te > max_gap {
                closed.push(OttRow { object, device: run.device, ts: run.ts, te: run.te });
                false
            } else {
                true
            }
        });
        before - self.open.len()
    }

    /// Snapshots a queryable OTT from everything *applied* so far: closed
    /// rows plus the still-open runs (closed as-of-now). Readings still in
    /// the reorder buffer are not yet part of the snapshot — they surface
    /// once the watermark passes them. The tracker keeps its state and can
    /// continue ingesting.
    pub fn snapshot(&self) -> Result<ObjectTrackingTable, StreamError> {
        let mut rows = self.closed.clone();
        rows.extend(self.open.iter().map(|(&object, run)| OttRow {
            object,
            device: run.device,
            ts: run.ts,
            te: run.te,
        }));
        ObjectTrackingTable::from_rows(rows).map_err(StreamError::Ott)
    }

    /// Consumes the tracker, draining the reorder buffer and closing all
    /// open runs, and builds the final OTT.
    pub fn finish(mut self) -> Result<ObjectTrackingTable, StreamError> {
        while let Some(Pending(r)) = self.pending.pop() {
            self.applied_to = self.applied_to.max(r.t);
            self.apply(r)?;
        }
        let open = std::mem::take(&mut self.open);
        for (object, run) in open {
            self.closed.push(OttRow { object, device: run.device, ts: run.ts, te: run.te });
        }
        ObjectTrackingTable::from_rows(self.closed).map_err(StreamError::Ott)
    }

    /// Open runs in deterministic serialization order (by object).
    fn sorted_open(&self) -> Vec<(ObjectId, OpenRun)> {
        let mut open: Vec<(ObjectId, OpenRun)> = self.open.iter().map(|(&o, &r)| (o, r)).collect();
        open.sort_by_key(|&(o, _)| o);
        open
    }

    /// Buffered readings in deterministic serialization order (by time,
    /// then object, then device).
    fn sorted_pending(&self) -> Vec<RawReading> {
        let mut pending: Vec<RawReading> = self.pending.iter().map(|p| p.0).collect();
        pending.sort_by(|a, b| {
            a.t.total_cmp(&b.t)
                .then_with(|| a.object.cmp(&b.object))
                .then_with(|| a.device.0.cmp(&b.device.0))
        });
        pending
    }

    /// Encodes the tracker configuration as a `CONFIG` frame payload
    /// (41 bytes, fixed-width LE).
    pub(crate) fn encode_config(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(41);
        b.extend_from_slice(&self.max_gap.to_le_bytes());
        b.push(self.lateness.is_some() as u8);
        b.extend_from_slice(&self.lateness.unwrap_or(0.0).to_le_bytes());
        b.extend_from_slice(&self.watermark.to_le_bytes());
        b.extend_from_slice(&self.applied_to.to_le_bytes());
        b.extend_from_slice(&self.late_dropped.to_le_bytes());
        b
    }

    /// Rebuilds a tracker (no rows or readings yet) from a `CONFIG` frame,
    /// validating every field.
    pub(crate) fn from_config_frame(f: &Frame<'_>) -> Result<OnlineTracker, StoreError> {
        let mut c = Cursor::new(f);
        let max_gap = c.finite_f64("max_gap")?;
        let lateness_flag = c.u8("lateness flag")?;
        let lateness_raw = c.f64("lateness")?;
        let watermark = c.f64("watermark")?;
        let applied_to = c.f64("applied_to")?;
        let late_dropped = c.u64("late_dropped")?;
        c.done()?;
        if max_gap <= 0.0 {
            return Err(c.bad(format!("non-positive max_gap {max_gap}")));
        }
        let lateness = match lateness_flag {
            0 => None,
            1 => {
                if !lateness_raw.is_finite() || lateness_raw < 0.0 {
                    return Err(c.bad(format!("invalid lateness {lateness_raw}")));
                }
                Some(lateness_raw)
            }
            other => return Err(c.bad(format!("invalid lateness flag {other}"))),
        };
        // Watermarks may legitimately be -inf (empty tracker), never NaN.
        if watermark.is_nan() || applied_to.is_nan() {
            return Err(c.bad("NaN watermark".into()));
        }
        let mut tracker = OnlineTracker::new(max_gap);
        tracker.lateness = lateness;
        tracker.watermark = watermark;
        tracker.applied_to = applied_to;
        tracker.late_dropped = late_dropped;
        Ok(tracker)
    }

    /// Appends the tracker's complete state as checksummed frames:
    /// `CONFIG`, closed rows, open runs (sorted by object), buffered
    /// readings (sorted by time). Deterministic: identical state encodes
    /// to identical bytes.
    pub(crate) fn write_state_frames(&self, out: &mut Vec<u8>) {
        frame::write_frame(out, tag::CONFIG, &self.encode_config());
        for row in &self.closed {
            frame::write_frame(out, tag::CLOSED_ROW, &frame::encode_row(row));
        }
        for (object, run) in self.sorted_open() {
            let row = OttRow { object, device: run.device, ts: run.ts, te: run.te };
            frame::write_frame(out, tag::OPEN_RUN, &frame::encode_row(&row));
        }
        for r in self.sorted_pending() {
            frame::write_frame(out, tag::PENDING, &frame::encode_reading(&r));
        }
    }

    /// Row counts for the `END` commit marker: (closed, open, pending).
    pub(crate) fn state_counts(&self) -> (u64, u64, u64) {
        (self.closed.len() as u64, self.open.len() as u64, self.pending.len() as u64)
    }

    /// Serializes the complete tracker state — configuration, closed rows,
    /// open runs, buffered readings — so a crashed ingester can
    /// [`OnlineTracker::restore`] and continue exactly where it stopped.
    ///
    /// The format is binary and self-verifying: the [`CHECKPOINT_MAGIC`]
    /// prefix, CRC-checksummed state frames
    /// ([`crate::store::frame`]), and an `END` commit marker carrying the
    /// row counts. A torn or bit-flipped checkpoint is rejected by
    /// [`OnlineTracker::restore`] with a typed error instead of restoring
    /// silently-partial state.
    pub fn checkpoint(&self, out: &mut impl Write) -> io::Result<()> {
        let mut buf = Vec::new();
        buf.extend_from_slice(CHECKPOINT_MAGIC);
        self.write_state_frames(&mut buf);
        let (closed, open, pending) = self.state_counts();
        frame::write_frame(&mut buf, tag::END, &frame::encode_counts(closed, open, pending));
        out.write_all(&buf)
    }

    /// A 64-bit digest of the tracker's complete state, computed over the
    /// deterministic binary checkpoint encoding (FNV-1a over the exact
    /// bytes [`OnlineTracker::checkpoint`] would write). Two trackers
    /// hash equal iff their config, closed rows, open runs and reorder
    /// buffers are identical — the per-shard comparison point the
    /// record/replay harness checks at every barrier.
    pub fn state_hash(&self) -> u64 {
        let mut buf = Vec::new();
        buf.extend_from_slice(CHECKPOINT_MAGIC);
        self.write_state_frames(&mut buf);
        let (closed, open, pending) = self.state_counts();
        frame::write_frame(&mut buf, tag::END, &frame::encode_counts(closed, open, pending));
        fnv1a(&buf)
    }

    /// Serializes the tracker state in the legacy line-oriented text
    /// format (checkpoint v1). Kept for compatibility fixtures only —
    /// [`OnlineTracker::restore`] still reads it, new checkpoints should
    /// use the checksummed binary [`OnlineTracker::checkpoint`].
    ///
    /// ```text
    /// # inflow online-tracker checkpoint v1
    /// config,<max_gap>,<lateness|strict>,<watermark>,<applied_to>,<late_dropped>
    /// closed,<object>,<device>,<ts>,<te>     (repeated)
    /// open,<object>,<device>,<ts>,<te>       (repeated, sorted by object)
    /// pending,<object>,<device>,<t>          (repeated, sorted by time)
    /// ```
    pub fn checkpoint_csv(&self, out: &mut impl Write) -> Result<(), CsvError> {
        writeln!(out, "{CHECKPOINT_HEADER}")?;
        let lateness = match self.lateness {
            Some(l) => l.to_string(),
            None => "strict".to_string(),
        };
        writeln!(
            out,
            "config,{},{},{},{},{}",
            self.max_gap, lateness, self.watermark, self.applied_to, self.late_dropped
        )?;
        for r in &self.closed {
            writeln!(out, "closed,{},{},{},{}", r.object.0, r.device.0, r.ts, r.te)?;
        }
        for (object, run) in self.sorted_open() {
            writeln!(out, "open,{},{},{},{}", object.0, run.device.0, run.ts, run.te)?;
        }
        for r in self.sorted_pending() {
            writeln!(out, "pending,{},{},{}", r.object.0, r.device.0, r.t)?;
        }
        Ok(())
    }

    /// Rebuilds a tracker from a [`OnlineTracker::checkpoint`] stream.
    /// Ingestion can resume immediately; the resumed tracker produces the
    /// same OTT as one that never crashed (tested).
    ///
    /// Binary checkpoints (the [`CHECKPOINT_MAGIC`] prefix) are verified
    /// frame-by-frame — checksums, counts, commit marker — and any
    /// mutation yields a typed [`RestoreError`]. Streams without the magic
    /// fall back to the legacy v1 text parser.
    pub fn restore(input: &mut impl BufRead) -> Result<OnlineTracker, RestoreError> {
        let mut bytes = Vec::new();
        input.read_to_end(&mut bytes)?;
        if bytes.starts_with(CHECKPOINT_MAGIC) {
            return OnlineTracker::restore_binary(&bytes).map_err(RestoreError::Store);
        }
        OnlineTracker::restore_csv(&bytes).map_err(RestoreError::Csv)
    }

    /// Decodes a binary checkpoint: frames after the magic, closed by a
    /// count-carrying `END` marker.
    fn restore_binary(bytes: &[u8]) -> Result<OnlineTracker, StoreError> {
        let mut asm = TrackerAssembler::new();
        let mut reader = FrameReader::new(bytes, CHECKPOINT_MAGIC.len());
        let mut committed = false;
        for item in reader.by_ref() {
            let f = item?;
            if committed {
                return Err(StoreError::Decode {
                    offset: f.offset,
                    reason: "frame after END marker".into(),
                });
            }
            if asm.apply(&f)? {
                continue;
            }
            if f.tag == tag::END {
                let expected = frame::decode_counts(&f)?;
                if expected != asm.counts() {
                    return Err(StoreError::Decode {
                        offset: f.offset,
                        reason: format!(
                            "END counts {expected:?} do not match decoded state {:?}",
                            asm.counts()
                        ),
                    });
                }
                committed = true;
            } else {
                return Err(StoreError::Decode {
                    offset: f.offset,
                    reason: format!("unexpected frame tag {}", f.tag),
                });
            }
        }
        let offset = reader.offset();
        if !committed {
            return Err(StoreError::MissingCommit { offset });
        }
        asm.finish(offset)
    }

    /// Parses the legacy v1 text checkpoint format (read-only fallback).
    fn restore_csv(bytes: &[u8]) -> Result<OnlineTracker, CsvError> {
        let mut input = bytes;
        let mut lines = content_lines_with_header(&mut input)?;
        let Some((line_no, config)) = lines.next() else {
            return Err(CsvError::BadLine { line: 0, reason: "missing config line".into() });
        };
        let fields: Vec<&str> = config.split(',').map(str::trim).collect();
        if fields.len() != 6 || fields[0] != "config" {
            return Err(CsvError::BadLine {
                line: line_no,
                reason: format!("expected 'config' line with 6 fields, found '{config}'"),
            });
        }
        let max_gap: f64 = parse_finite(fields[1], "max_gap", line_no)?;
        if max_gap <= 0.0 {
            return Err(CsvError::BadLine {
                line: line_no,
                reason: "max_gap must be positive".into(),
            });
        }
        let lateness = match fields[2] {
            "strict" => None,
            s => Some(parse_finite(s, "lateness", line_no)?),
        };
        // watermark / applied_to may legitimately be -inf (empty tracker).
        let watermark: f64 = parse(fields[3], "watermark", line_no)?;
        let applied_to: f64 = parse(fields[4], "applied_to", line_no)?;
        let late_dropped: u64 = parse(fields[5], "late_dropped", line_no)?;
        if watermark.is_nan() || applied_to.is_nan() {
            return Err(CsvError::BadLine { line: line_no, reason: "NaN watermark".into() });
        }
        let mut tracker = OnlineTracker::new(max_gap);
        tracker.lateness = lateness;
        tracker.watermark = watermark;
        tracker.applied_to = applied_to;
        tracker.late_dropped = late_dropped;
        for (line_no, line) in lines {
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            match fields.first().copied() {
                Some("closed") | Some("open") if fields.len() == 5 => {
                    let object = ObjectId(parse(fields[1], "object", line_no)?);
                    let device = inflow_indoor::DeviceId(parse(fields[2], "device", line_no)?);
                    let ts = parse_finite(fields[3], "ts", line_no)?;
                    let te = parse_finite(fields[4], "te", line_no)?;
                    if fields[0] == "closed" {
                        tracker.closed.push(OttRow { object, device, ts, te });
                    } else if tracker.open.insert(object, OpenRun { device, ts, te }).is_some() {
                        return Err(CsvError::BadLine {
                            line: line_no,
                            reason: format!("duplicate open run for object {}", object.0),
                        });
                    }
                }
                Some("pending") if fields.len() == 4 => {
                    let r = RawReading {
                        object: ObjectId(parse(fields[1], "object", line_no)?),
                        device: inflow_indoor::DeviceId(parse(fields[2], "device", line_no)?),
                        t: parse_finite(fields[3], "t", line_no)?,
                    };
                    tracker.pending.push(Pending(r));
                }
                _ => {
                    return Err(CsvError::BadLine {
                        line: line_no,
                        reason: format!("unrecognized checkpoint line '{line}'"),
                    });
                }
            }
        }
        Ok(tracker)
    }
}

/// Content lines after validating the checkpoint header.
fn content_lines_with_header(
    input: &mut impl BufRead,
) -> Result<impl Iterator<Item = (usize, String)>, CsvError> {
    // The header is a `#` comment by CSV rules, so peek at the raw first
    // line before delegating to the shared comment-skipping reader.
    let mut first = String::new();
    input.read_line(&mut first)?;
    if first.trim() != CHECKPOINT_HEADER {
        return Err(CsvError::BadHeader {
            expected: CHECKPOINT_HEADER,
            found: first.trim().into(),
        });
    }
    content_lines(input)
}

/// Incrementally rebuilds an [`OnlineTracker`] from state frames
/// (`CONFIG` / `CLOSED_ROW` / `OPEN_RUN` / `PENDING`), shared by the
/// binary checkpoint reader and the snapshot decoder
/// ([`crate::store::snapshot`]).
pub(crate) struct TrackerAssembler {
    tracker: Option<OnlineTracker>,
    counts: (u64, u64, u64),
}

impl TrackerAssembler {
    pub(crate) fn new() -> TrackerAssembler {
        TrackerAssembler { tracker: None, counts: (0, 0, 0) }
    }

    fn tracker_mut(&mut self, offset: usize) -> Result<&mut OnlineTracker, StoreError> {
        self.tracker
            .as_mut()
            .ok_or(StoreError::Decode { offset, reason: "state frame before config frame".into() })
    }

    /// Applies one frame; `Ok(false)` when the tag is not a tracker state
    /// frame (the caller interprets it).
    pub(crate) fn apply(&mut self, f: &Frame<'_>) -> Result<bool, StoreError> {
        match f.tag {
            tag::CONFIG => {
                if self.tracker.is_some() {
                    return Err(StoreError::Decode {
                        offset: f.offset,
                        reason: "duplicate config frame".into(),
                    });
                }
                self.tracker = Some(OnlineTracker::from_config_frame(f)?);
                Ok(true)
            }
            tag::CLOSED_ROW => {
                let row = frame::decode_row(f)?;
                self.tracker_mut(f.offset)?.closed.push(row);
                self.counts.0 += 1;
                Ok(true)
            }
            tag::OPEN_RUN => {
                let row = frame::decode_row(f)?;
                let tracker = self.tracker_mut(f.offset)?;
                let run = OpenRun { device: row.device, ts: row.ts, te: row.te };
                if tracker.open.insert(row.object, run).is_some() {
                    return Err(StoreError::Decode {
                        offset: f.offset,
                        reason: format!("duplicate open run for object {}", row.object.0),
                    });
                }
                self.counts.1 += 1;
                Ok(true)
            }
            tag::PENDING => {
                let r = frame::decode_reading(f)?;
                self.tracker_mut(f.offset)?.pending.push(Pending(r));
                self.counts.2 += 1;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Decoded (closed, open, pending) counts so far, for validation
    /// against an `END` commit marker.
    pub(crate) fn counts(&self) -> (u64, u64, u64) {
        self.counts
    }

    /// The assembled tracker; errors if no `CONFIG` frame was seen.
    pub(crate) fn finish(self, offset: usize) -> Result<OnlineTracker, StoreError> {
        self.tracker.ok_or(StoreError::Decode { offset, reason: "missing config frame".into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::merge_raw_readings;
    use inflow_indoor::DeviceId;
    use std::io::BufReader;

    fn reading(o: u32, d: u32, t: f64) -> RawReading {
        RawReading { object: ObjectId(o), device: DeviceId(d), t }
    }

    /// Two objects weaving through three devices with gaps, in global
    /// timestamp order.
    fn weave() -> Vec<RawReading> {
        let mut readings = Vec::new();
        for (o, offsets) in [(1u32, 0.0), (2u32, 0.4)] {
            let mut t = offsets;
            for burst in 0..6 {
                let dev = burst % 3;
                for _ in 0..4 {
                    readings.push(reading(o, dev, t));
                    t += 1.0;
                }
                t += 5.0; // gap
            }
        }
        readings.sort_by(|a, b| a.t.total_cmp(&b.t));
        readings
    }

    /// Deterministic local shuffle: reverse non-overlapping windows of
    /// `w` readings, so each reading is displaced by at most `w - 1`
    /// positions (bounded disorder, no RNG dependency).
    fn window_reverse(mut readings: Vec<RawReading>, w: usize) -> Vec<RawReading> {
        for chunk in readings.chunks_mut(w) {
            chunk.reverse();
        }
        readings
    }

    /// The lateness bound that absorbs a `window_reverse(_, w)` shuffle of
    /// time-sorted readings: the largest time span of any window, padded
    /// so float rounding in `watermark - lateness` cannot land the
    /// tightest window exactly on the wrong side of the horizon.
    fn needed_lateness(sorted: &[RawReading], w: usize) -> f64 {
        sorted.chunks(w).map(|c| c.last().unwrap().t - c.first().unwrap().t).fold(0.0, f64::max)
            + 1e-6
    }

    #[test]
    fn streaming_matches_batch_merge() {
        let readings = weave();
        let batch = merge_raw_readings(readings.clone(), 1.5);

        let mut tracker = OnlineTracker::new(1.5);
        tracker.ingest_all(readings).unwrap();
        let ott = tracker.finish().unwrap();

        let batch_ott = ObjectTrackingTable::from_rows(batch).unwrap();
        assert_eq!(ott.len(), batch_ott.len());
        for (a, b) in ott.records().iter().zip(batch_ott.records()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn out_of_order_rejected() {
        let mut tracker = OnlineTracker::new(1.0);
        tracker.ingest(reading(1, 1, 5.0)).unwrap();
        let err = tracker.ingest(reading(1, 1, 4.0)).unwrap_err();
        assert!(matches!(err, StreamError::OutOfOrderReading { .. }));
        // Other objects are unaffected.
        tracker.ingest(reading(2, 1, 1.0)).unwrap();
    }

    #[test]
    fn reorder_buffer_matches_batch_on_shuffled_stream() {
        let readings = weave();
        let batch =
            ObjectTrackingTable::from_rows(merge_raw_readings(readings.clone(), 1.5)).unwrap();
        let lateness = needed_lateness(&readings, 5);
        let shuffled = window_reverse(readings, 5);
        let mut tracker = OnlineTracker::with_reorder(1.5, lateness);
        tracker.ingest_all(shuffled).unwrap();
        assert_eq!(tracker.late_dropped(), 0);
        let ott = tracker.finish().unwrap();
        assert_eq!(ott.records(), batch.records());
    }

    #[test]
    fn reorder_buffer_drops_hopelessly_late_readings() {
        let mut tracker = OnlineTracker::with_reorder(1.5, 1.0);
        tracker.ingest(reading(1, 1, 0.0)).unwrap();
        tracker.ingest(reading(1, 1, 10.0)).unwrap(); // applies t=0
        tracker.ingest(reading(1, 1, 20.0)).unwrap(); // applies t=10
                                                      // t=3 is far behind applied_to=10: dropped, not an error.
        tracker.ingest(reading(1, 1, 3.0)).unwrap();
        assert_eq!(tracker.late_dropped(), 1);
        let ott = tracker.finish().unwrap();
        // Three isolated single-reading runs (gaps exceed max_gap).
        assert_eq!(ott.len(), 3);
    }

    #[test]
    fn reorder_expiry_respects_lateness() {
        let mut tracker = OnlineTracker::with_reorder(1.0, 5.0);
        tracker.ingest(reading(1, 1, 0.0)).unwrap();
        tracker.ingest(reading(2, 2, 5.5)).unwrap();
        // The t=0 reading has been applied (horizon 0.5); object 1's run
        // ends at te=0. A strict watermark of 5.5 would expire it
        // (gap 5.5 > 1.0), but a buffered reading up to 5 s late could
        // still extend the run: the effective watermark is 0.5 and
        // gap 0.5 ≤ 1.0 → retained.
        assert_eq!(tracker.expire_stale_runs(), 0);
        assert_eq!(tracker.open_runs(), 1);
        // Advancing the watermark past the protection window expires it.
        tracker.ingest(reading(2, 2, 6.8)).unwrap();
        assert_eq!(tracker.expire_stale_runs(), 1);
    }

    #[test]
    fn snapshot_includes_open_runs() {
        let mut tracker = OnlineTracker::new(1.0);
        tracker.ingest(reading(1, 1, 0.0)).unwrap();
        tracker.ingest(reading(1, 1, 1.0)).unwrap();
        let ott = tracker.snapshot().unwrap();
        assert_eq!(ott.len(), 1);
        let rec = &ott.records()[0];
        assert_eq!((rec.ts, rec.te), (0.0, 1.0));
        // The tracker continues: the run keeps growing.
        tracker.ingest(reading(1, 1, 2.0)).unwrap();
        let ott = tracker.snapshot().unwrap();
        assert_eq!(ott.records()[0].te, 2.0);
    }

    #[test]
    fn expire_closes_stale_runs_only() {
        let mut tracker = OnlineTracker::new(1.0);
        tracker.ingest(reading(1, 1, 0.0)).unwrap();
        tracker.ingest(reading(2, 2, 9.5)).unwrap();
        // Watermark is 9.5: object 1's run (te=0) is stale, object 2's not.
        assert_eq!(tracker.expire_stale_runs(), 1);
        assert_eq!(tracker.open_runs(), 1);
        assert_eq!(tracker.closed_rows(), 1);
    }

    #[test]
    fn device_handover_closes_previous_run() {
        let mut tracker = OnlineTracker::new(1.0);
        tracker.ingest(reading(1, 1, 0.0)).unwrap();
        tracker.ingest(reading(1, 2, 0.5)).unwrap();
        assert_eq!(tracker.closed_rows(), 1);
        let ott = tracker.finish().unwrap();
        assert_eq!(ott.len(), 2);
        assert_eq!(ott.records()[0].device, DeviceId(1));
        assert_eq!(ott.records()[1].device, DeviceId(2));
    }

    #[test]
    fn empty_tracker_produces_empty_ott() {
        let ott = OnlineTracker::new(1.0).finish().unwrap();
        assert!(ott.is_empty());
    }

    #[test]
    fn checkpoint_restore_round_trips_mid_stream() {
        // Ingest half the (shuffled) stream, checkpoint ("crash"), restore
        // into a fresh tracker, ingest the rest: the final OTT must equal
        // the uninterrupted run's.
        let sorted = weave();
        let lateness = needed_lateness(&sorted, 5);
        let readings = window_reverse(sorted, 5);
        let half = readings.len() / 2;

        let mut uninterrupted = OnlineTracker::with_reorder(1.5, lateness);
        uninterrupted.ingest_all(readings.clone()).unwrap();
        let expected = uninterrupted.finish().unwrap();

        let mut first = OnlineTracker::with_reorder(1.5, lateness);
        first.ingest_all(readings[..half].iter().copied()).unwrap();
        let mut buf = Vec::new();
        first.checkpoint(&mut buf).unwrap();
        drop(first); // the crash

        let mut resumed = OnlineTracker::restore(&mut BufReader::new(buf.as_slice())).unwrap();
        resumed.ingest_all(readings[half..].iter().copied()).unwrap();
        let ott = resumed.finish().unwrap();
        assert_eq!(ott.records(), expected.records());
    }

    #[test]
    fn checkpoint_restores_every_field() {
        let mut tracker = OnlineTracker::with_reorder(1.5, 2.0);
        tracker.ingest(reading(1, 1, 0.0)).unwrap();
        tracker.ingest(reading(1, 2, 3.0)).unwrap(); // drains t=0, buffers t=3
        tracker.ingest(reading(2, 1, 4.0)).unwrap();
        let mut buf = Vec::new();
        tracker.checkpoint(&mut buf).unwrap();

        let restored = OnlineTracker::restore(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(restored.closed_rows(), tracker.closed_rows());
        assert_eq!(restored.open_runs(), tracker.open_runs());
        assert_eq!(restored.pending_readings(), tracker.pending_readings());
        assert_eq!(restored.watermark(), tracker.watermark());
        assert_eq!(restored.late_dropped(), tracker.late_dropped());
        // Checkpointing the restored tracker is byte-identical.
        let mut buf2 = Vec::new();
        restored.checkpoint(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn checkpoint_of_strict_empty_tracker_round_trips() {
        let tracker = OnlineTracker::new(2.5);
        let mut buf = Vec::new();
        tracker.checkpoint(&mut buf).unwrap();
        let restored = OnlineTracker::restore(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(restored.closed_rows(), 0);
        assert_eq!(restored.open_runs(), 0);
        // Strict mode survives: out-of-order still errors.
        let mut restored = restored;
        restored.ingest(reading(1, 1, 5.0)).unwrap();
        assert!(restored.ingest(reading(1, 1, 4.0)).is_err());
    }

    /// A tracker with every kind of state populated: closed rows, open
    /// runs, buffered readings, a dropped-late count.
    fn busy_tracker() -> OnlineTracker {
        let mut tracker = OnlineTracker::with_reorder(1.5, 2.0);
        tracker.ingest(reading(1, 1, 0.0)).unwrap();
        tracker.ingest(reading(1, 2, 3.0)).unwrap(); // drains t=0, buffers t=3
        tracker.ingest(reading(2, 1, 4.0)).unwrap();
        tracker.ingest(reading(3, 3, 9.0)).unwrap();
        tracker.ingest(reading(1, 1, 0.5)).unwrap(); // hopelessly late: dropped
        assert!(tracker.late_dropped() > 0);
        tracker
    }

    #[test]
    fn restore_reads_legacy_csv_checkpoints() {
        let tracker = busy_tracker();
        let mut csv = Vec::new();
        tracker.checkpoint_csv(&mut csv).unwrap();
        let restored = OnlineTracker::restore(&mut BufReader::new(csv.as_slice())).unwrap();
        // Both serialize to the same binary checkpoint bytes.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        tracker.checkpoint(&mut a).unwrap();
        restored.checkpoint(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn torn_checkpoint_rejected_at_every_failpoint() {
        use crate::store::failpoint::FailpointWriter;
        let tracker = busy_tracker();
        // A full checkpoint is one write; re-serialize through a chunking
        // writer so the failpoint can land mid-stream: write in 7-byte
        // slices through the FailpointWriter.
        let mut full = Vec::new();
        tracker.checkpoint(&mut full).unwrap();
        let chunks = full.len().div_ceil(7);
        for fail_at in 1..=chunks as u64 {
            let mut w = FailpointWriter::new(Vec::new(), fail_at);
            for chunk in full.chunks(7) {
                if w.write_all(chunk).is_err() {
                    break; // the crash
                }
            }
            let torn = w.into_inner();
            assert!(torn.len() < full.len(), "failpoint {fail_at} did not tear");
            let r = OnlineTracker::restore(&mut BufReader::new(torn.as_slice()));
            assert!(
                matches!(r, Err(RestoreError::Store(_)) | Err(RestoreError::Csv(_))),
                "torn checkpoint ({} of {} bytes) accepted",
                torn.len(),
                full.len()
            );
        }
    }

    #[test]
    fn truncated_binary_checkpoint_rejected_at_every_byte() {
        let tracker = busy_tracker();
        let mut full = Vec::new();
        tracker.checkpoint(&mut full).unwrap();
        for cut in 0..full.len() {
            let r = OnlineTracker::restore(&mut BufReader::new(&full[..cut]));
            assert!(r.is_err(), "prefix of {cut}/{} bytes accepted", full.len());
        }
    }

    #[test]
    fn bit_flipped_binary_checkpoint_never_restores_silently() {
        let tracker = busy_tracker();
        let mut full = Vec::new();
        tracker.checkpoint(&mut full).unwrap();
        for i in 0..full.len() {
            let mut bad = full.clone();
            bad[i] ^= 1 << (i % 8);
            match OnlineTracker::restore(&mut BufReader::new(bad.as_slice())) {
                // A flip inside the magic demotes the stream to the CSV
                // fallback, which rejects it; a flip anywhere else must
                // trip a checksum or structural check.
                Err(_) => {}
                Ok(_) => panic!("flip at byte {i} restored without error"),
            }
        }
    }

    #[test]
    fn restore_rejects_garbage() {
        let cases: [&str; 4] = [
            "not a checkpoint\n",
            "# inflow online-tracker checkpoint v1\nconfig,1.5\n",
            "# inflow online-tracker checkpoint v1\nconfig,1.5,strict,-inf,-inf,0\nbogus,1\n",
            "# inflow online-tracker checkpoint v1\nconfig,1.5,strict,-inf,-inf,0\nclosed,1,2,NaN,5\n",
        ];
        for text in cases {
            let err = OnlineTracker::restore(&mut BufReader::new(text.as_bytes()));
            assert!(err.is_err(), "accepted: {text}");
        }
    }
}
