//! Incremental ingestion of raw readings.
//!
//! The batch pipeline ([`crate::merge_raw_readings`] →
//! [`ObjectTrackingTable::from_rows`]) suits historical analysis; a live
//! deployment instead receives readings continuously. [`OnlineTracker`]
//! maintains the per-object *open runs* (a run is a maximal sequence of
//! same-device readings with gaps below the merge threshold), closes runs
//! into OTT rows as soon as they can no longer grow, and periodically
//! snapshots a queryable [`ObjectTrackingTable`].
//!
//! Equivalence with the batch merger is guaranteed (and tested): feeding
//! the same readings in timestamp order produces the same rows.

use crate::ott::{ObjectId, ObjectTrackingTable, OttError, OttRow};
use crate::reading::RawReading;
use crate::Timestamp;
use std::collections::HashMap;

/// An in-progress detection run for one object.
#[derive(Debug, Clone, Copy)]
struct OpenRun {
    device: inflow_indoor::DeviceId,
    ts: Timestamp,
    te: Timestamp,
}

/// Incremental raw-reading ingester.
///
/// Readings must arrive in non-decreasing timestamp order per object
/// (out-of-order arrivals are rejected with
/// [`StreamError::OutOfOrderReading`] — upstream buffering is the caller's
/// responsibility, matching how positioning middleware delivers merged
/// streams).
#[derive(Debug, Default)]
pub struct OnlineTracker {
    max_gap: f64,
    open: HashMap<ObjectId, OpenRun>,
    closed: Vec<OttRow>,
    /// Largest timestamp ingested so far.
    watermark: Timestamp,
}

/// Errors raised during streaming ingestion.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A reading arrived with a timestamp earlier than the object's
    /// current open run.
    OutOfOrderReading { object: ObjectId, t: Timestamp, run_end: Timestamp },
    /// Snapshot failed because accumulated rows violate OTT invariants.
    Ott(OttError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::OutOfOrderReading { object, t, run_end } => {
                write!(f, "reading for {object} at t={t} precedes its open run end {run_end}")
            }
            StreamError::Ott(e) => write!(f, "snapshot failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl OnlineTracker {
    /// Creates a tracker with the given merge gap (same semantics as
    /// [`crate::merge_raw_readings`]).
    pub fn new(max_gap: f64) -> OnlineTracker {
        assert!(max_gap > 0.0, "max_gap must be positive");
        OnlineTracker { max_gap, ..OnlineTracker::default() }
    }

    /// Ingests one reading.
    pub fn ingest(&mut self, r: RawReading) -> Result<(), StreamError> {
        self.watermark = self.watermark.max(r.t);
        match self.open.get_mut(&r.object) {
            Some(run)
                if run.device == r.device && r.t >= run.te && r.t - run.te <= self.max_gap =>
            {
                run.te = r.t;
                Ok(())
            }
            Some(run) if r.t < run.te => {
                Err(StreamError::OutOfOrderReading { object: r.object, t: r.t, run_end: run.te })
            }
            Some(run) => {
                // Device change or gap: close the current run.
                self.closed.push(OttRow {
                    object: r.object,
                    device: run.device,
                    ts: run.ts,
                    te: run.te,
                });
                *run = OpenRun { device: r.device, ts: r.t, te: r.t };
                Ok(())
            }
            None => {
                self.open.insert(r.object, OpenRun { device: r.device, ts: r.t, te: r.t });
                Ok(())
            }
        }
    }

    /// Ingests a batch of readings (must respect per-object time order).
    pub fn ingest_all(
        &mut self,
        readings: impl IntoIterator<Item = RawReading>,
    ) -> Result<(), StreamError> {
        for r in readings {
            self.ingest(r)?;
        }
        Ok(())
    }

    /// Number of rows already closed (excludes open runs).
    pub fn closed_rows(&self) -> usize {
        self.closed.len()
    }

    /// Number of objects with an open run.
    pub fn open_runs(&self) -> usize {
        self.open.len()
    }

    /// The largest timestamp seen.
    pub fn watermark(&self) -> Timestamp {
        self.watermark
    }

    /// Closes every open run whose gap to the watermark already exceeds
    /// the merge threshold — they can never be extended again. Returns the
    /// number of runs closed. Call periodically to bound memory.
    pub fn expire_stale_runs(&mut self) -> usize {
        let watermark = self.watermark;
        let max_gap = self.max_gap;
        let closed = &mut self.closed;
        let before = self.open.len();
        self.open.retain(|&object, run| {
            if watermark - run.te > max_gap {
                closed.push(OttRow { object, device: run.device, ts: run.ts, te: run.te });
                false
            } else {
                true
            }
        });
        before - self.open.len()
    }

    /// Snapshots a queryable OTT from everything ingested so far,
    /// *including* the still-open runs (closed as-of-now). The tracker
    /// keeps its state and can continue ingesting.
    pub fn snapshot(&self) -> Result<ObjectTrackingTable, StreamError> {
        let mut rows = self.closed.clone();
        rows.extend(self.open.iter().map(|(&object, run)| OttRow {
            object,
            device: run.device,
            ts: run.ts,
            te: run.te,
        }));
        ObjectTrackingTable::from_rows(rows).map_err(StreamError::Ott)
    }

    /// Consumes the tracker, closing all open runs, and builds the final
    /// OTT.
    pub fn finish(mut self) -> Result<ObjectTrackingTable, StreamError> {
        let open = std::mem::take(&mut self.open);
        for (object, run) in open {
            self.closed.push(OttRow { object, device: run.device, ts: run.ts, te: run.te });
        }
        ObjectTrackingTable::from_rows(self.closed).map_err(StreamError::Ott)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::merge_raw_readings;
    use inflow_indoor::DeviceId;

    fn reading(o: u32, d: u32, t: f64) -> RawReading {
        RawReading { object: ObjectId(o), device: DeviceId(d), t }
    }

    #[test]
    fn streaming_matches_batch_merge() {
        let mut readings = Vec::new();
        // Two objects weaving through three devices with gaps.
        for (o, offsets) in [(1u32, 0.0), (2u32, 0.4)] {
            let mut t = offsets;
            for burst in 0..6 {
                let dev = burst % 3;
                for _ in 0..4 {
                    readings.push(reading(o, dev, t));
                    t += 1.0;
                }
                t += 5.0; // gap
            }
        }
        readings.sort_by(|a, b| a.t.partial_cmp(&b.t).unwrap());

        let batch = merge_raw_readings(readings.clone(), 1.5);

        let mut tracker = OnlineTracker::new(1.5);
        tracker.ingest_all(readings).unwrap();
        let ott = tracker.finish().unwrap();

        let batch_ott = ObjectTrackingTable::from_rows(batch).unwrap();
        assert_eq!(ott.len(), batch_ott.len());
        for (a, b) in ott.records().iter().zip(batch_ott.records()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn out_of_order_rejected() {
        let mut tracker = OnlineTracker::new(1.0);
        tracker.ingest(reading(1, 1, 5.0)).unwrap();
        let err = tracker.ingest(reading(1, 1, 4.0)).unwrap_err();
        assert!(matches!(err, StreamError::OutOfOrderReading { .. }));
        // Other objects are unaffected.
        tracker.ingest(reading(2, 1, 1.0)).unwrap();
    }

    #[test]
    fn snapshot_includes_open_runs() {
        let mut tracker = OnlineTracker::new(1.0);
        tracker.ingest(reading(1, 1, 0.0)).unwrap();
        tracker.ingest(reading(1, 1, 1.0)).unwrap();
        let ott = tracker.snapshot().unwrap();
        assert_eq!(ott.len(), 1);
        let rec = &ott.records()[0];
        assert_eq!((rec.ts, rec.te), (0.0, 1.0));
        // The tracker continues: the run keeps growing.
        tracker.ingest(reading(1, 1, 2.0)).unwrap();
        let ott = tracker.snapshot().unwrap();
        assert_eq!(ott.records()[0].te, 2.0);
    }

    #[test]
    fn expire_closes_stale_runs_only() {
        let mut tracker = OnlineTracker::new(1.0);
        tracker.ingest(reading(1, 1, 0.0)).unwrap();
        tracker.ingest(reading(2, 2, 9.5)).unwrap();
        // Watermark is 9.5: object 1's run (te=0) is stale, object 2's not.
        assert_eq!(tracker.expire_stale_runs(), 1);
        assert_eq!(tracker.open_runs(), 1);
        assert_eq!(tracker.closed_rows(), 1);
    }

    #[test]
    fn device_handover_closes_previous_run() {
        let mut tracker = OnlineTracker::new(1.0);
        tracker.ingest(reading(1, 1, 0.0)).unwrap();
        tracker.ingest(reading(1, 2, 0.5)).unwrap();
        assert_eq!(tracker.closed_rows(), 1);
        let ott = tracker.finish().unwrap();
        assert_eq!(ott.len(), 2);
        assert_eq!(ott.records()[0].device, DeviceId(1));
        assert_eq!(ott.records()[1].device, DeviceId(2));
    }

    #[test]
    fn empty_tracker_produces_empty_ott() {
        let ott = OnlineTracker::new(1.0).finish().unwrap();
        assert!(ott.is_empty());
    }
}
