//! Chaos suite: the seeded corruption grid (clean → severe) is applied to
//! a synthetic workload, routed through the repair-all sanitization gate,
//! and every one of the paper's four algorithms must answer without
//! panicking, with finite non-negative flows, and with the join algorithms
//! agreeing with the iterative baselines on the sanitized data.

use inflow::core::{FlowAnalytics, IntervalQuery, QueryResult, SnapshotQuery};
use inflow::geometry::GridResolution;
use inflow::indoor::PoiId;
use inflow::tracking::{sanitize_rows, ObjectTrackingTable, SanitizeConfig};
use inflow::uncertainty::UrConfig;
use inflow::workload::{
    apply_corruption, corruption_grid, generate_synthetic, rows_of, SyntheticConfig, Workload,
};

const TOL: f64 = 1e-6;

fn workload() -> Workload {
    generate_synthetic(&SyntheticConfig {
        num_objects: 25,
        duration: 500.0,
        ..SyntheticConfig::tiny()
    })
}

/// Corrupts the workload's rows per `spec`, repairs them through the
/// sanitization gate, and builds a report-carrying façade.
fn sanitized_analytics(w: &Workload, spec: &inflow::workload::CorruptionSpec) -> FlowAnalytics {
    let devices = w.ctx.plan().devices().len() as u32;
    let corrupted = apply_corruption(rows_of(&w.ott), spec, devices);
    let gate = SanitizeConfig::repair_all().with_vmax(w.vmax);
    let outcome = sanitize_rows(corrupted, &gate, Some(w.ctx.plan()));
    let ott = ObjectTrackingTable::from_rows(outcome.rows)
        .expect("sanitized rows must satisfy OTT invariants");
    FlowAnalytics::new(
        w.ctx.clone(),
        ott,
        UrConfig { vmax: w.vmax, resolution: GridResolution::COARSE, ..UrConfig::default() },
    )
    .with_sanitize_report(outcome.report, outcome.repaired_objects)
}

fn pois(fa: &FlowAnalytics) -> Vec<PoiId> {
    fa.engine().context().plan().pois().iter().map(|p| p.id).collect()
}

fn assert_well_formed(label: &str, r: &QueryResult) {
    for &(_, flow) in &r.ranked {
        assert!(flow.is_finite() && flow >= 0.0, "{label}: flow {flow} invalid");
    }
    assert!(r.quality.coverage.is_finite(), "{label}: coverage must be finite");
    assert!(
        (0.0..=1.0 + TOL).contains(&r.quality.coverage),
        "{label}: coverage {} out of range",
        r.quality.coverage
    );
    assert!(
        r.quality.repaired_flow_mass >= 0.0,
        "{label}: repaired mass {} negative",
        r.quality.repaired_flow_mass
    );
    assert!(
        (0.0..=1.0 + TOL).contains(&r.quality.repaired_mass_fraction),
        "{label}: repaired fraction {} out of range",
        r.quality.repaired_mass_fraction
    );
}

/// Same top-k membership and flows, allowing order swaps among ties.
fn assert_equivalent(label: &str, it: &QueryResult, jn: &QueryResult) {
    assert_eq!(it.ranked.len(), jn.ranked.len(), "{label}: result sizes differ");
    let flow_of =
        |r: &QueryResult, p: PoiId| r.ranked.iter().find(|&&(q, _)| q == p).map(|&(_, f)| f);
    for (rank, &(p, f)) in it.ranked.iter().enumerate() {
        match flow_of(jn, p) {
            Some(jf) => assert!(
                (f - jf).abs() <= TOL * f.max(1.0),
                "{label}: POI {p} flow {f} (iterative) vs {jf} (join)"
            ),
            // Membership may differ only among ties at the k-th flow.
            None => {
                let kth = it.ranked.last().expect("non-empty").1;
                assert!(
                    (f - kth).abs() <= TOL,
                    "{label}: POI {p} (rank {rank}, flow {f}) missing from join result"
                );
            }
        }
    }
}

#[test]
fn corruption_grid_times_all_four_algorithms() {
    let w = workload();
    for spec in corruption_grid(0xDECAF) {
        let fa = sanitized_analytics(&w, &spec);
        let pois = pois(&fa);
        let label = format!("chaos {}", spec.label);

        let sq = SnapshotQuery::new(200.0, pois.clone(), 5);
        let snap_it = fa.snapshot_topk_iterative(&sq);
        let snap_jn = fa.snapshot_topk_join(&sq);
        assert_well_formed(&format!("{label} snapshot iterative"), &snap_it);
        assert_well_formed(&format!("{label} snapshot join"), &snap_jn);
        assert_equivalent(&format!("{label} snapshot"), &snap_it, &snap_jn);

        let iq = IntervalQuery::new(150.0, 250.0, pois, 5);
        let int_it = fa.interval_topk_iterative(&iq);
        let int_jn = fa.interval_topk_join(&iq);
        assert_well_formed(&format!("{label} interval iterative"), &int_it);
        assert_well_formed(&format!("{label} interval join"), &int_jn);
        assert_equivalent(&format!("{label} interval"), &int_it, &int_jn);

        // Corrupted-and-repaired inputs must be visible in the answer's
        // quality summary (the clean control must stay clean).
        if spec.is_clean() {
            assert_eq!(int_it.quality.repaired_rows, 0, "{label}: clean input repaired");
        } else {
            assert!(
                int_it.quality.degraded(),
                "{label}: corrupted input should yield a degraded-quality answer"
            );
        }
    }
}

#[test]
fn sanitize_reports_are_deterministic_across_runs() {
    let w = workload();
    let spec = &corruption_grid(0xDECAF)[3];
    let devices = w.ctx.plan().devices().len() as u32;
    let gate = SanitizeConfig::repair_all().with_vmax(w.vmax);
    let a =
        sanitize_rows(apply_corruption(rows_of(&w.ott), spec, devices), &gate, Some(w.ctx.plan()));
    let b =
        sanitize_rows(apply_corruption(rows_of(&w.ott), spec, devices), &gate, Some(w.ctx.plan()));
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.report, b.report);
    assert_eq!(a.repaired_objects, b.repaired_objects);
}
