//! Multi-floor integration: cross-floor indoor distances over scenario
//! floor plans (the paper's §4.1 multi-floor extension remark).

use inflow::geometry::Point;
use inflow::indoor::{Building, BuildingDistanceOracle, BuildingPoint, Connector, FloorId};
use inflow::workload::{library_plan, office_plan};

fn bp(floor: u32, x: f64, y: f64) -> BuildingPoint {
    BuildingPoint { floor: FloorId(floor), position: Point::new(x, y) }
}

/// Two office floors joined by a stairwell at the east end of the
/// corridor.
fn office_tower() -> Building {
    let stairs_x = 48.0; // inside the 10-office corridor (length 50)
    Building::new(
        vec![office_plan(10), office_plan(10)],
        vec![Connector {
            name: "stairwell-east".into(),
            a: bp(0, stairs_x, 1.2),
            b: bp(1, stairs_x, 1.2),
            length: 7.0,
        }],
    )
    .expect("valid tower")
}

#[test]
fn cross_floor_office_distance_routes_through_the_stairwell() {
    let building = office_tower();
    let oracle = BuildingDistanceOracle::new(&building);

    // From office-0 on floor 0 to office-0 on floor 1.
    let office0 = building.floor(FloorId(0)).cells()[1].footprint().centroid();
    let from = BuildingPoint { floor: FloorId(0), position: office0 };
    let to = BuildingPoint { floor: FloorId(1), position: office0 };
    let d = oracle.distance(&building, from, to).expect("reachable through stairs");

    // The walk must cover at least twice the corridor run to the stairs
    // plus the stairwell itself.
    let one_way = oracle.distance(&building, from, bp(0, 48.0, 1.2)).expect("same-floor leg");
    assert!(
        (d - (2.0 * one_way + 7.0)).abs() < 1e-6,
        "distance {d} should be two corridor legs ({one_way} each) + 7 m of stairs"
    );
    assert!(d > 7.0);
}

#[test]
fn same_floor_queries_ignore_connectors() {
    let building = office_tower();
    let oracle = BuildingDistanceOracle::new(&building);
    let kitchen = building.floor(FloorId(0)).cells()[11].footprint().centroid();
    let office = building.floor(FloorId(0)).cells()[1].footprint().centroid();
    let via_building = oracle
        .distance(
            &building,
            BuildingPoint { floor: FloorId(0), position: office },
            BuildingPoint { floor: FloorId(0), position: kitchen },
        )
        .unwrap();
    let via_floor = oracle
        .floor_oracle(FloorId(0))
        .distance(building.floor(FloorId(0)), office, kitchen)
        .unwrap();
    assert_eq!(via_building, via_floor);
}

#[test]
fn mixed_use_building_composes_scenarios() {
    // Library above an office floor: distances route office → stairs →
    // library entrance hall → stacks.
    let office = office_plan(8);
    let library = library_plan(4);
    let stairs_office = bp(0, 38.0, 1.2); // corridor, east end (length 40)
    let stairs_library = bp(1, 16.0, 3.0); // entrance hall
    let building = Building::new(
        vec![office, library],
        vec![Connector { name: "stairs".into(), a: stairs_office, b: stairs_library, length: 6.5 }],
    )
    .unwrap();
    let oracle = BuildingDistanceOracle::new(&building);

    let office_desk = building.floor(FloorId(0)).cells()[1].footprint().centroid();
    let stacks = building.floor(FloorId(1)).cells()[1].footprint().centroid();
    let d = oracle
        .distance(
            &building,
            BuildingPoint { floor: FloorId(0), position: office_desk },
            BuildingPoint { floor: FloorId(1), position: stacks },
        )
        .expect("library reachable from the office floor");
    assert!(d > 6.5, "must include the stairs: {d}");

    // Unreachable when the connector is removed.
    let isolated = Building::new(vec![office_plan(8), library_plan(4)], Vec::new()).unwrap();
    let lonely = BuildingDistanceOracle::new(&isolated);
    assert_eq!(
        lonely.distance(
            &isolated,
            BuildingPoint { floor: FloorId(0), position: office_desk },
            BuildingPoint { floor: FloorId(1), position: stacks },
        ),
        None
    );
}
