//! End-to-end soundness of the uncertainty analysis (paper §3).
//!
//! The defining property of an uncertainty region is that it contains
//! every location the object *can possibly be* — in particular the place
//! it actually was. These tests simulate objects with known ground-truth
//! trajectories, derive snapshot and interval URs from the tracking data
//! alone, and assert the true position is always inside, with and without
//! the indoor topology check.
//!
//! Positions are checked at sampling-tick instants: between ticks an
//! object can be inside a detection range without having produced a
//! reading yet, which the symbolic model (like the paper) cannot see.

use inflow::geometry::Region;
use inflow::uncertainty::{UrConfig, UrEngine};
use inflow::workload::{generate_synthetic, SyntheticConfig};

fn workload_config() -> SyntheticConfig {
    SyntheticConfig { num_objects: 15, duration: 500.0, ..SyntheticConfig::tiny() }
}

fn engine_for(w: &inflow::workload::Workload, topology_check: bool) -> UrEngine {
    UrEngine::new(w.ctx.clone(), UrConfig { vmax: w.vmax, topology_check, ..UrConfig::default() })
}

fn check_snapshot_containment(topology_check: bool) {
    let w = generate_synthetic(&workload_config());
    let eng = engine_for(&w, topology_check);
    let mut checked = 0usize;
    for (object, path) in &w.ground_truth {
        for step in 0..50 {
            let t = step as f64 * 10.0; // multiples of the 1 s sampling tick
            let Some(state) = w.ott.state_at(*object, t) else {
                continue;
            };
            let pos = path.position_at(t).expect("tracked implies alive");
            let ur = eng.snapshot_ur(&w.ott, state, t);
            assert!(
                ur.contains(pos),
                "object {object} at t={t}: true position {pos} outside snapshot UR \
                 (topology_check={topology_check}, state={state:?})"
            );
            checked += 1;
        }
    }
    assert!(checked > 200, "only {checked} containment checks ran — workload too sparse");
}

#[test]
fn snapshot_ur_contains_true_position_euclidean() {
    check_snapshot_containment(false);
}

#[test]
fn snapshot_ur_contains_true_position_with_topology_check() {
    check_snapshot_containment(true);
}

fn check_interval_containment(topology_check: bool) {
    let w = generate_synthetic(&workload_config());
    let eng = engine_for(&w, topology_check);
    let mut checked = 0usize;
    for (object, path) in w.ground_truth.iter().take(8) {
        for window in 0..6 {
            let ts = 40.0 + window as f64 * 70.0;
            let te = ts + 60.0;
            let Some(ur) = eng.interval_ur(&w.ott, *object, ts, te) else {
                continue;
            };
            if ur.is_empty() {
                continue;
            }
            let mut t = ts;
            while t <= te {
                // Only instants where the object is within its tracked
                // lifetime are claimed by the model.
                if w.ott.state_at(*object, t).is_some() {
                    let pos = path.position_at(t).expect("alive");
                    assert!(
                        ur.contains(pos),
                        "object {object}, window [{ts}, {te}], t={t}: true position {pos} \
                         outside interval UR (topology_check={topology_check})"
                    );
                    checked += 1;
                }
                t += 5.0;
            }
        }
    }
    assert!(checked > 100, "only {checked} containment checks ran");
}

#[test]
fn interval_ur_contains_true_positions_euclidean() {
    check_interval_containment(false);
}

#[test]
fn interval_ur_contains_true_positions_with_topology_check() {
    check_interval_containment(true);
}

/// The topology check only ever *shrinks* regions (it removes unreachable
/// parts); it must never grow presence values.
#[test]
fn topology_check_never_increases_presence() {
    let w = generate_synthetic(&workload_config());
    let eng_e = engine_for(&w, false);
    let eng_t = engine_for(&w, true);
    let plan = w.ctx.plan();
    let mut compared = 0usize;
    for (object, _) in w.ground_truth.iter().take(6) {
        let (ts, te) = (100.0, 220.0);
        let (Some(ur_e), Some(ur_t)) = (
            eng_e.interval_ur(&w.ott, *object, ts, te),
            eng_t.interval_ur(&w.ott, *object, ts, te),
        ) else {
            continue;
        };
        for poi in plan.pois() {
            let pe = eng_e.presence(&ur_e, poi);
            let pt = eng_t.presence(&ur_t, poi);
            // Allow integration-grid noise: the grids differ because the
            // MBRs differ.
            assert!(
                pt <= pe + 0.02,
                "topology presence {pt} exceeds euclidean {pe} for {} / object {object}",
                poi.name
            );
            compared += 1;
        }
    }
    assert!(compared > 50);
}
