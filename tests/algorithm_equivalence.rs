//! The join algorithms must return the same top-k results as the
//! iterative baselines (paper §4: both compute the same flows; the join
//! algorithms only prune work, never change answers).
//!
//! Flows are compared with a small tolerance: the two algorithms
//! accumulate identical presence values in different orders, so results
//! can differ in the last floating-point bits. Result membership is
//! verified against the full flow table rather than positionally, so
//! legitimate ties don't cause false failures.

use inflow::core::{FlowAnalytics, IntervalQuery, JoinConfig, QueryResult, SnapshotQuery};
use inflow::geometry::GridResolution;
use inflow::indoor::PoiId;
use inflow::uncertainty::UrConfig;
use inflow::workload::{generate_cph, generate_synthetic, CphConfig, SyntheticConfig, Workload};

const TOL: f64 = 1e-6;

fn analytics(w: Workload, topology_check: bool) -> FlowAnalytics {
    let cfg = UrConfig {
        vmax: w.vmax,
        topology_check,
        resolution: GridResolution::COARSE,
        ..UrConfig::default()
    };
    FlowAnalytics::new(w.ctx.clone(), w.ott, cfg)
}

/// Validates a claimed top-k against the exhaustive flow table.
fn verify_topk(label: &str, result: &QueryResult, full_flows: &[(PoiId, f64)], k: usize) {
    assert_eq!(result.ranked.len(), k, "{label}: wrong result size");
    let flow_of = |p: PoiId| {
        full_flows
            .iter()
            .find(|&&(fp, _)| fp == p)
            .map(|&(_, f)| f)
            .unwrap_or_else(|| panic!("{label}: result POI {p} not in query set"))
    };
    let mut kth = f64::INFINITY;
    for &(p, f) in &result.ranked {
        let expected = flow_of(p);
        assert!(
            (f - expected).abs() <= TOL * expected.max(1.0),
            "{label}: POI {p} flow {f} != exhaustive {expected}"
        );
        kth = kth.min(f);
    }
    for &(p, f) in full_flows {
        if !result.ranked.iter().any(|&(rp, _)| rp == p) {
            assert!(
                f <= kth + TOL,
                "{label}: excluded POI {p} has flow {f} > kth result flow {kth}"
            );
        }
    }
    // Ranked order is non-increasing.
    for w in result.ranked.windows(2) {
        assert!(w[0].1 >= w[1].1 - TOL, "{label}: ranking not sorted");
    }
}

fn poi_subset(fa: &FlowAnalytics, percent: usize) -> Vec<PoiId> {
    let all = fa.engine().context().plan().pois();
    let take = (all.len() * percent / 100).max(1);
    // Deterministic pseudo-shuffled subset: stride through the POI list.
    (0..take)
        .map(|i| all[(i * 7 + 3) % all.len()].id)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect()
}

#[test]
fn snapshot_join_matches_iterative_on_synthetic() {
    let w = generate_synthetic(&SyntheticConfig {
        num_objects: 40,
        duration: 500.0,
        ..SyntheticConfig::tiny()
    });
    let fa = analytics(w, true);
    for &t in &[60.0, 180.0, 350.0] {
        for &percent in &[40, 100] {
            let pois = poi_subset(&fa, percent);
            for &k in &[1usize, 3, 8] {
                let q = SnapshotQuery::new(t, pois.clone(), k);
                let full = fa.snapshot_flows(&q);
                let it = fa.snapshot_topk_iterative(&q);
                let jn = fa.snapshot_topk_join(&q);
                verify_topk(&format!("iterative t={t} k={k} |P|={percent}%"), &it, &full, q.k);
                verify_topk(&format!("join t={t} k={k} |P|={percent}%"), &jn, &full, q.k);
            }
        }
    }
}

#[test]
fn interval_join_matches_iterative_on_synthetic() {
    let w = generate_synthetic(&SyntheticConfig {
        num_objects: 25,
        duration: 500.0,
        ..SyntheticConfig::tiny()
    });
    let fa = analytics(w, false);
    for &(ts, te) in &[(50.0, 110.0), (200.0, 320.0)] {
        for &percent in &[40, 100] {
            let pois = poi_subset(&fa, percent);
            for &k in &[1usize, 5] {
                let q = IntervalQuery::new(ts, te, pois.clone(), k);
                let full = fa.interval_flows(&q);
                let it = fa.interval_topk_iterative(&q);
                let jn = fa.interval_topk_join(&q);
                verify_topk(&format!("iterative [{ts},{te}] k={k}"), &it, &full, q.k);
                verify_topk(&format!("join [{ts},{te}] k={k}"), &jn, &full, q.k);
            }
        }
    }
}

#[test]
fn interval_join_segment_mbr_ablation_is_result_invariant() {
    // The Figure 9 small-MBR optimization prunes join lists; it must not
    // change any answer.
    let w = generate_synthetic(&SyntheticConfig {
        num_objects: 25,
        duration: 400.0,
        ..SyntheticConfig::tiny()
    });
    let ctx = w.ctx.clone();
    let ur_cfg = UrConfig {
        vmax: w.vmax,
        topology_check: false,
        resolution: GridResolution::COARSE,
        ..UrConfig::default()
    };
    let fa_fine = FlowAnalytics::new(
        ctx.clone(),
        generate_synthetic(&SyntheticConfig {
            num_objects: 25,
            duration: 400.0,
            ..SyntheticConfig::tiny()
        })
        .ott,
        ur_cfg,
    )
    .with_join_config(JoinConfig { use_segment_mbrs: true });
    let fa_coarse = FlowAnalytics::new(
        ctx,
        generate_synthetic(&SyntheticConfig {
            num_objects: 25,
            duration: 400.0,
            ..SyntheticConfig::tiny()
        })
        .ott,
        ur_cfg,
    )
    .with_join_config(JoinConfig { use_segment_mbrs: false });

    let pois = poi_subset(&fa_fine, 100);
    let q = IntervalQuery::new(80.0, 200.0, pois, 5);
    let full = fa_fine.interval_flows(&q);
    verify_topk("segment-mbrs on", &fa_fine.interval_topk_join(&q), &full, q.k);
    verify_topk("segment-mbrs off", &fa_coarse.interval_topk_join(&q), &full, q.k);
}

#[test]
fn snapshot_join_matches_iterative_on_cph() {
    let w = generate_cph(&CphConfig::tiny());
    let fa = analytics(w, true);
    for &t in &[300.0, 900.0, 1500.0] {
        let pois = poi_subset(&fa, 60);
        let q = SnapshotQuery::new(t, pois, 4);
        let full = fa.snapshot_flows(&q);
        verify_topk("cph iterative", &fa.snapshot_topk_iterative(&q), &full, q.k);
        verify_topk("cph join", &fa.snapshot_topk_join(&q), &full, q.k);
    }
}

#[test]
fn interval_join_matches_iterative_on_cph() {
    let w = generate_cph(&CphConfig::tiny());
    let fa = analytics(w, false);
    for &(ts, te) in &[(200.0, 500.0), (800.0, 1100.0)] {
        let pois = poi_subset(&fa, 100);
        let q = IntervalQuery::new(ts, te, pois, 5);
        let full = fa.interval_flows(&q);
        verify_topk("cph iterative", &fa.interval_topk_iterative(&q), &full, q.k);
        verify_topk("cph join", &fa.interval_topk_join(&q), &full, q.k);
    }
}

#[test]
fn join_prunes_presence_evaluations() {
    // The whole point of the join algorithms: fewer presence integrations
    // for small k. (Not guaranteed per query in adversarial cases; checked
    // in aggregate over several queries.)
    let w = generate_synthetic(&SyntheticConfig {
        num_objects: 40,
        duration: 500.0,
        ..SyntheticConfig::tiny()
    });
    let fa = analytics(w, false);
    let pois = poi_subset(&fa, 100);
    let mut it_evals = 0usize;
    let mut jn_evals = 0usize;
    for &t in &[60.0, 120.0, 240.0, 400.0] {
        let q = SnapshotQuery::new(t, pois.clone(), 1);
        it_evals += fa.snapshot_topk_iterative(&q).stats.presence_evaluations;
        jn_evals += fa.snapshot_topk_join(&q).stats.presence_evaluations;
    }
    assert!(
        jn_evals <= it_evals,
        "join should not integrate more than iterative: join {jn_evals} vs iterative {it_evals}"
    );
}

#[test]
fn empty_population_returns_zero_flows() {
    let w = generate_synthetic(&SyntheticConfig {
        num_objects: 3,
        duration: 100.0,
        ..SyntheticConfig::tiny()
    });
    let fa = analytics(w, false);
    let pois = poi_subset(&fa, 100);
    // Far beyond the simulation: nobody is tracked.
    let q = SnapshotQuery::new(1.0e6, pois.clone(), 3);
    let it = fa.snapshot_topk_iterative(&q);
    let jn = fa.snapshot_topk_join(&q);
    assert_eq!(it.ranked.len(), 3);
    assert_eq!(jn.ranked.len(), 3);
    assert!(it.ranked.iter().all(|&(_, f)| f == 0.0));
    assert!(jn.ranked.iter().all(|&(_, f)| f == 0.0));
    // Identical padding order.
    assert_eq!(it.poi_ids(), jn.poi_ids());
}

/// The scoped-thread fan-out must be *bitwise* identical to the
/// sequential run — flows, ranking order, and stats — because the fold
/// over per-object contributions happens on the calling thread in the
/// sequential candidate order regardless of which worker computed each
/// contribution.
#[test]
fn threaded_iterative_is_bitwise_identical() {
    let w = generate_synthetic(&SyntheticConfig {
        num_objects: 40,
        duration: 500.0,
        ..SyntheticConfig::tiny()
    });
    let fa = analytics(w, true);
    let pois = poi_subset(&fa, 100);

    let sq = SnapshotQuery::new(220.0, pois.clone(), 6);
    let seq = fa.snapshot_topk_iterative(&sq);
    for threads in [2usize, 4, 9] {
        let par = fa.snapshot_topk_iterative_threads(&sq, threads);
        assert_eq!(seq.ranked, par.ranked, "snapshot ranked diverges at {threads} threads");
        assert_eq!(seq.stats, par.stats, "snapshot stats diverge at {threads} threads");
    }

    let iq = IntervalQuery::new(80.0, 340.0, pois, 6);
    let seq = fa.interval_topk_iterative(&iq);
    for threads in [2usize, 4, 9] {
        let par = fa.interval_topk_iterative_threads(&iq, threads);
        assert_eq!(seq.ranked, par.ranked, "interval ranked diverges at {threads} threads");
        assert_eq!(seq.stats, par.stats, "interval stats diverge at {threads} threads");
    }
}

/// Repeating an interval query with the same [ts, te] must hit the
/// AR-tree range memo instead of re-scanning, without changing results.
#[test]
fn interval_range_memo_reuses_candidate_scan() {
    let w = generate_synthetic(&SyntheticConfig {
        num_objects: 20,
        duration: 400.0,
        ..SyntheticConfig::tiny()
    });
    let fa = analytics(w, false);
    let pois = poi_subset(&fa, 100);
    let q = IntervalQuery::new(100.0, 250.0, pois.clone(), 5);
    let first = fa.interval_topk_iterative(&q);
    let hits_before = fa.range_memo_hits();
    let second = fa.interval_topk_iterative(&q);
    assert!(fa.range_memo_hits() > hits_before, "identical [ts, te] did not hit the range memo");
    assert_eq!(first.ranked, second.ranked, "memoized scan changed the result");

    // A different range must not be served from the stale memo.
    let q2 = IntervalQuery::new(120.0, 250.0, pois, 5);
    let shifted = fa.interval_topk_iterative(&q2);
    let full = fa.interval_flows(&q2);
    verify_topk("post-memo shifted interval", &shifted, &full, q2.k);
}
