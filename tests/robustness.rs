//! Failure injection: the query pipeline must stay robust under corrupted
//! tracking data — degraded answers are expected, panics and invariant
//! violations are not.

use inflow::core::{flow_timeline, likely_visitors, FlowAnalytics, IntervalQuery, SnapshotQuery};
use inflow::geometry::GridResolution;
use inflow::indoor::PoiId;
use inflow::tracking::{sanitize_rows, ObjectTrackingTable, SanitizeConfig};
use inflow::uncertainty::UrConfig;
use inflow::workload::{
    apply_corruption, corruption_grid, drop_records, generate_synthetic, inject_teleports,
    jitter_timestamps, rows_of, SyntheticConfig,
};

fn pois(fa: &FlowAnalytics) -> Vec<PoiId> {
    fa.engine().context().plan().pois().iter().map(|p| p.id).collect()
}

fn check_queries(fa: &FlowAnalytics, label: &str) {
    let pois = pois(fa);
    for &t in &[200.0] {
        let q = SnapshotQuery::new(t, pois.clone(), 5);
        let it = fa.snapshot_topk_iterative(&q);
        let jn = fa.snapshot_topk_join(&q);
        assert_eq!(it.ranked.len(), 5, "{label}: snapshot result size");
        assert_eq!(jn.ranked.len(), 5, "{label}: snapshot join result size");
        for r in [&it, &jn] {
            for &(_, flow) in &r.ranked {
                assert!(flow.is_finite() && flow >= 0.0, "{label}: flow {flow} invalid");
            }
        }
    }
    let q = IntervalQuery::new(150.0, 250.0, pois, 5);
    let it = fa.interval_topk_iterative(&q);
    let jn = fa.interval_topk_join(&q);
    assert_eq!(it.ranked.len(), 5, "{label}: interval result size");
    assert_eq!(jn.ranked.len(), 5, "{label}: interval join result size");
}

fn analytics_from(
    rows: Vec<inflow::tracking::OttRow>,
    w: &inflow::workload::Workload,
) -> FlowAnalytics {
    let ott = ObjectTrackingTable::from_rows(rows).expect("corruption preserves OTT invariants");
    FlowAnalytics::new(
        w.ctx.clone(),
        ott,
        UrConfig { vmax: w.vmax, resolution: GridResolution::COARSE, ..UrConfig::default() },
    )
}

#[test]
fn queries_survive_dropped_records() {
    let w = generate_synthetic(&SyntheticConfig {
        num_objects: 25,
        duration: 500.0,
        ..SyntheticConfig::tiny()
    });
    for &fraction in &[0.5, 0.9] {
        let rows = drop_records(rows_of(&w.ott), fraction, 11);
        let fa = analytics_from(rows, &w);
        check_queries(&fa, &format!("drop {fraction}"));
    }
}

#[test]
fn queries_survive_clock_jitter() {
    let w = generate_synthetic(&SyntheticConfig {
        num_objects: 25,
        duration: 500.0,
        ..SyntheticConfig::tiny()
    });
    let rows = jitter_timestamps(rows_of(&w.ott), 2.0, 13);
    let fa = analytics_from(rows, &w);
    check_queries(&fa, "jitter 2.0");
}

#[test]
fn queries_survive_teleporting_ghost_reads() {
    let w = generate_synthetic(&SyntheticConfig {
        num_objects: 25,
        duration: 500.0,
        ..SyntheticConfig::tiny()
    });
    let devices = w.ctx.plan().devices().len() as u32;
    // Teleports create V_max-infeasible gaps → empty URs; flows drop
    // but queries must complete cleanly.
    let rows = inject_teleports(rows_of(&w.ott), 0.3, devices, 17);
    let fa = analytics_from(rows, &w);
    check_queries(&fa, "teleport 0.3");
}

#[test]
fn combined_corruption_still_runs() {
    let w = generate_synthetic(&SyntheticConfig {
        num_objects: 25,
        duration: 500.0,
        ..SyntheticConfig::tiny()
    });
    let devices = w.ctx.plan().devices().len() as u32;
    let rows = rows_of(&w.ott);
    let rows = drop_records(rows, 0.3, 19);
    let rows = jitter_timestamps(rows, 1.0, 19);
    let rows = inject_teleports(rows, 0.2, devices, 19);
    let fa = analytics_from(rows, &w);
    check_queries(&fa, "combined");
}

#[test]
fn timeline_and_visitors_survive_the_corruption_grid() {
    let w = generate_synthetic(&SyntheticConfig {
        num_objects: 25,
        duration: 500.0,
        ..SyntheticConfig::tiny()
    });
    let devices = w.ctx.plan().devices().len() as u32;
    let gate = SanitizeConfig::repair_all().with_vmax(w.vmax);
    for spec in corruption_grid(29) {
        let corrupted = apply_corruption(rows_of(&w.ott), &spec, devices);
        let outcome = sanitize_rows(corrupted, &gate, Some(w.ctx.plan()));
        let ott = ObjectTrackingTable::from_rows(outcome.rows)
            .expect("sanitized rows satisfy OTT invariants");
        let fa = FlowAnalytics::new(
            w.ctx.clone(),
            ott,
            UrConfig { vmax: w.vmax, resolution: GridResolution::COARSE, ..UrConfig::default() },
        )
        .with_sanitize_report(outcome.report, outcome.repaired_objects);
        let pois = pois(&fa);

        // Timelines aggregate many interval queries; every bucket's flows
        // must stay finite and non-negative under every corruption level.
        let tl = flow_timeline(&fa, &pois, 0.0, 500.0, 125.0);
        assert_eq!(tl.buckets.len(), 4, "{}: bucket count", spec.label);
        for b in &tl.buckets {
            for &(_, flow) in &b.flows {
                assert!(
                    flow.is_finite() && flow >= 0.0,
                    "{}: timeline flow {flow} invalid",
                    spec.label
                );
            }
        }
        assert!(
            (0.0..=1.0 + 1e-9).contains(&tl.quality.coverage),
            "{}: timeline coverage {}",
            spec.label,
            tl.quality.coverage
        );

        // Visitor analysis shares the UR machinery; presences must stay
        // valid probabilities.
        for &poi in pois.iter().take(3) {
            for (_, presence) in likely_visitors(&fa, poi, 150.0, 250.0, 0.0) {
                assert!(
                    presence.is_finite() && (0.0..=1.0 + 1e-9).contains(&presence),
                    "{}: presence {presence} invalid",
                    spec.label
                );
            }
        }
    }
}

#[test]
fn teleports_never_inflate_flows_above_population() {
    // Even with ghost reads, flow is a weighted count bounded by |O|.
    let w = generate_synthetic(&SyntheticConfig {
        num_objects: 20,
        duration: 400.0,
        ..SyntheticConfig::tiny()
    });
    let devices = w.ctx.plan().devices().len() as u32;
    let rows = inject_teleports(rows_of(&w.ott), 0.5, devices, 23);
    let fa = analytics_from(rows, &w);
    let pois = pois(&fa);
    let q = IntervalQuery::new(100.0, 250.0, pois, 10);
    for (_, flow) in fa.interval_topk_iterative(&q).ranked {
        assert!(flow <= 20.0 + 1e-6, "flow {flow} exceeds population");
    }
}
