//! End-to-end tests for the continuous flow-monitoring server.
//!
//! The load-bearing invariant: at every synchronization point, each
//! subscription's materialized top-k must equal a from-scratch batch
//! computation over the exact rows the engine holds (fetched via
//! `DUMP_ROWS`, recomputed locally with the same `UrConfig`). The
//! barrier protocol makes each point deterministic — after `barrier()`
//! returns, every prior publish is ingested, its deltas applied, and all
//! triggered updates are already buffered client-side.

use inflow::core::{DistribQuery, FlowAnalytics, IntervalQuery, LongVisitQuery, SnapshotQuery};
use inflow::geometry::GridResolution;
use inflow::service::{Client, ServeConfig, Server, ServerHandle, SubKind, SubSpec};
use inflow::tracking::{ObjectTrackingTable, RawReading};
use inflow::uncertainty::{IndoorContext, UrConfig};
use inflow::workload::{generate_synthetic, SyntheticConfig, Workload};
use inflow::{indoor::PoiId, obs::Counter, obs::Json};
use std::collections::HashMap;
use std::sync::Arc;

const TOL: f64 = 1e-9;
const MAX_GAP: f64 = 60.0;

/// Small enough for per-reading incremental recomputes to stay fast in
/// debug builds, large enough for real flow dynamics (12 objects roaming
/// 6 rooms with 8 POIs for 5 simulated minutes).
fn small_workload() -> Workload {
    generate_synthetic(&SyntheticConfig {
        rooms_x: 3,
        rooms_y: 2,
        num_objects: 12,
        duration: 300.0,
        num_pois: 8,
        ..SyntheticConfig::default()
    })
}

/// Coarse presence integration keeps each incremental recompute cheap;
/// both sides of every comparison use this exact config.
fn ur_config(w: &Workload) -> UrConfig {
    UrConfig { vmax: w.vmax, resolution: GridResolution::COARSE, ..UrConfig::default() }
}

/// Expands the workload's OTT back into a time-ordered reading stream
/// (each record's endpoints), the same derivation the CLI uses.
fn readings_of(w: &Workload) -> Vec<RawReading> {
    let mut out = Vec::with_capacity(w.ott.len() * 2);
    for r in w.ott.records() {
        out.push(RawReading { object: r.object, device: r.device, t: r.ts });
        if r.te > r.ts {
            out.push(RawReading { object: r.object, device: r.device, t: r.te });
        }
    }
    out.sort_by(|a, b| {
        a.t.total_cmp(&b.t)
            .then_with(|| a.object.cmp(&b.object))
            .then_with(|| a.device.0.cmp(&b.device.0))
    });
    out
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("inflow-service-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn start_server(w: &Workload, name: &str, shards: usize) -> (ServerHandle, std::path::PathBuf) {
    let dir = temp_dir(name);
    let cfg =
        ServeConfig { shards, max_gap: MAX_GAP, ur: ur_config(w), ..ServeConfig::new(dir.clone()) };
    let handle = Server::start(Arc::clone(&w.ctx), cfg).expect("server start");
    (handle, dir)
}

/// From-scratch batch reference over `rows`, using the same context and
/// UR configuration as the server.
fn batch_reference(
    ctx: &Arc<IndoorContext>,
    cfg: UrConfig,
    rows: Vec<inflow::tracking::OttRow>,
    kind: &SubKind,
    pois: Vec<PoiId>,
    k: usize,
) -> Vec<(PoiId, f64)> {
    if rows.is_empty() {
        // No tracked objects yet: every flow is zero; the engine ranks
        // the full (zero-flow) POI set by id.
        return inflow::core::rank_topk(pois.into_iter().map(|p| (p, 0.0)).collect(), k);
    }
    let ott = ObjectTrackingTable::from_rows(rows).expect("dumped rows are consistent");
    let fa = FlowAnalytics::new(Arc::clone(ctx), ott, cfg);
    match *kind {
        SubKind::Snapshot { t } => {
            fa.snapshot_topk_iterative(&SnapshotQuery::new(t, pois, k)).ranked
        }
        SubKind::Interval { ts, te } => {
            fa.interval_topk_iterative(&IntervalQuery::new(ts, te, pois, k)).ranked
        }
        // The zero-row shortcut above scores every POI 0.0, which for a
        // distrib kind presumes kq >= 1 (an empty Poisson binomial has
        // P(count >= 0) = 1); the subscriptions under test honor that.
        SubKind::Distrib { t, kq, kmax } => {
            fa.distrib_topk(&DistribQuery::at(t, pois, kq as usize, kmax as usize, k)).ranked
        }
        SubKind::LongVisit { ts, te, d } => {
            fa.longvisit_topk(&LongVisitQuery::new(ts, te, d, pois, k)).ranked
        }
    }
}

/// Positional comparison within `TOL`, tolerant of rank swaps between
/// POIs whose flows are tied within tolerance (the two sides accumulate
/// per-object contributions in different orders, so mathematical ties
/// can land 1 ulp apart and sort either way).
fn assert_ranked_eq(got: &[(PoiId, f64)], want: &[(PoiId, f64)], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch\n got: {got:?}\nwant: {want:?}");
    let want_map: HashMap<PoiId, f64> = want.iter().copied().collect();
    for (i, (&(gp, gf), &(wp, wf))) in got.iter().zip(want).enumerate() {
        assert!(
            (gf - wf).abs() <= TOL,
            "{what}: flow diverges at rank {i}: {gf} vs {wf} (|Δ|={})\n got: {got:?}\nwant: {want:?}",
            (gf - wf).abs()
        );
        if gp != wp {
            // A swap is only legitimate between tied entries: this POI's
            // flow in the reference must also match.
            let alt = want_map.get(&gp).copied().unwrap_or(wf);
            assert!(
                (gf - alt).abs() <= TOL,
                "{what}: rank {i} holds {gp} ({gf}) but reference attributes {alt}\n got: {got:?}\nwant: {want:?}"
            );
        }
    }
}

/// Streams the workload in chunks through the server with one
/// subscription of every kind — snapshot, interval, count-distribution
/// and long-visit (ε = 0, k = all POIs) — registered up front; at every
/// barrier, each subscription's materialized result must match the batch
/// reference over the engine's rows. `crash_at`, if set, crashes shard 0
/// after that chunk and restarts it two chunks later.
fn run_stream_and_verify(name: &str, crash_at: Option<usize>) {
    let w = small_workload();
    let readings = readings_of(&w);
    assert!(readings.len() > 50, "workload too small to exercise streaming");
    let all_pois: Vec<PoiId> = w.ctx.plan().pois().iter().map(|p| p.id).collect();
    let k = all_pois.len();
    let t_mid = 150.0;
    let (ts, te) = (75.0, 225.0);

    let (handle, dir) = start_server(&w, name, 2);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let snap_spec = SubSpec {
        kind: SubKind::Snapshot { t: t_mid },
        k,
        epsilon: 0.0,
        pois: Vec::new(), // empty = all plan POIs
    };
    let int_spec =
        SubSpec { kind: SubKind::Interval { ts, te }, k, epsilon: 0.0, pois: Vec::new() };
    let distrib_spec = SubSpec {
        kind: SubKind::Distrib { t: t_mid, kq: 2, kmax: 16 },
        k,
        epsilon: 0.0,
        pois: Vec::new(),
    };
    let longvisit_spec =
        SubSpec { kind: SubKind::LongVisit { ts, te, d: 5.0 }, k, epsilon: 0.0, pois: Vec::new() };
    let snap_id = client.subscribe(&snap_spec).expect("subscribe snapshot");
    let int_id = client.subscribe(&int_spec).expect("subscribe interval");
    let distrib_id = client.subscribe(&distrib_spec).expect("subscribe distrib");
    let longvisit_id = client.subscribe(&longvisit_spec).expect("subscribe longvisit");
    let subs = [
        (snap_id, &snap_spec, "snapshot"),
        (int_id, &int_spec, "interval"),
        (distrib_id, &distrib_spec, "distrib"),
        (longvisit_id, &longvisit_spec, "longvisit"),
    ];
    client.barrier().expect("initial barrier");
    // Initial results (seq 1) over an empty engine.
    let initial = client.take_updates();
    for (sub_id, _, label) in subs {
        assert!(
            initial.iter().any(|u| u.sub_id == sub_id),
            "{label} subscription must push its initial result"
        );
    }

    let ur = ur_config(&w);
    let chunk = readings.len().div_ceil(12).max(1);
    let mut crashed = false;
    for (i, batch) in readings.chunks(chunk).enumerate() {
        client.publish(batch).expect("publish");
        if Some(i) == crash_at {
            handle.crash_shard(0);
            crashed = true;
        }
        if crashed && Some(i.wrapping_sub(2)) == crash_at {
            handle.restart_shard(0).expect("restart shard");
            crashed = false;
        }
        if crashed {
            // Half the pipeline is down; skip verification until the
            // shard is back (its queue holds the unprocessed readings).
            continue;
        }
        client.barrier().expect("barrier");

        let rows = client.dump_rows().expect("dump rows");
        for (sub_id, spec, label) in subs {
            let want =
                batch_reference(&w.ctx, ur, rows.clone(), &spec.kind, all_pois.clone(), spec.k);
            let current = client.current(sub_id).expect("current");
            assert_ranked_eq(&current, &want, &format!("{label} sub, chunk {i}"));
        }
        // Every pushed update for a sub must agree with the sub's final
        // materialized state at the barrier where it was drained, or be a
        // superseded intermediate — the last one per sub must match.
        let updates = client.take_updates();
        for (sub_id, _, label) in subs {
            if let Some(last) = updates.iter().rev().find(|u| u.sub_id == sub_id) {
                let current = client.current(sub_id).expect("current after drain");
                assert_ranked_eq(
                    &last.ranked,
                    &current,
                    &format!("{label} last update, chunk {i}"),
                );
            }
        }
    }
    assert!(!crashed, "crash schedule never restarted the shard");

    // Final convergence: everything published must now be reflected.
    client.barrier().expect("final barrier");
    let rows = client.dump_rows().expect("final rows");
    assert!(!rows.is_empty(), "no rows survived the stream");
    let want = batch_reference(&w.ctx, ur, rows, &snap_spec.kind, all_pois, k);
    let current = client.current(snap_id).expect("final current");
    assert_ranked_eq(&current, &want, "final snapshot state");

    if crash_at.is_some() {
        let m = handle.metrics();
        assert_eq!(m.counter(Counter::ServeShardRestarts), 1, "restart not counted");
    }

    client.shutdown_server().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn subscriptions_track_batch_reference() {
    run_stream_and_verify("steady", None);
}

#[test]
fn shard_crash_and_restart_reconverges() {
    run_stream_and_verify("crash", Some(3));
}

/// A large ε suppresses pushes for sub-threshold changes while `CURRENT`
/// still tracks the exact materialized state.
#[test]
fn epsilon_gates_notifications() {
    let w = small_workload();
    let readings = readings_of(&w);
    let all_pois: Vec<PoiId> = w.ctx.plan().pois().iter().map(|p| p.id).collect();

    let (handle, dir) = start_server(&w, "epsilon", 2);
    let mut client = Client::connect(handle.addr()).expect("connect");

    // ε far above any achievable flow delta: only membership/order
    // changes can push.
    let spec = SubSpec {
        kind: SubKind::Interval { ts: 0.0, te: 300.0 },
        k: all_pois.len(),
        epsilon: 1e12,
        pois: Vec::new(),
    };
    let sub_id = client.subscribe(&spec).expect("subscribe");
    client.barrier().expect("barrier");
    let initial = client.take_updates();
    assert_eq!(initial.len(), 1, "exactly the initial push expected");
    assert_eq!(initial[0].sub_id, sub_id);

    for batch in readings.chunks(64) {
        client.publish(batch).expect("publish");
    }
    client.barrier().expect("barrier");
    let m = handle.metrics();
    assert!(
        m.counter(Counter::ServeNotificationsSuppressed) > 0,
        "large ε never suppressed a push:\n{}",
        m.render()
    );
    // CURRENT is exact regardless of suppression.
    let rows = client.dump_rows().expect("rows");
    let want = batch_reference(&w.ctx, ur_config(&w), rows, &spec.kind, all_pois.clone(), spec.k);
    let current = client.current(sub_id).expect("current");
    assert_ranked_eq(&current, &want, "suppressed sub current state");

    // The stats report must surface the pipeline counters end-to-end.
    let stats = client.stats().expect("stats");
    assert!(stats.contains("serve_readings_sharded"), "missing router counter:\n{stats}");
    assert!(stats.contains("serve_recompute"), "missing recompute histogram:\n{stats}");

    client.shutdown_server().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(dir);
}

/// Every traced update's hop chain must be monotone, complete
/// (router → shard → WAL → apply → engine → recompute → notify), carry
/// at least 4 named latency segments, and those segments must sum to
/// (within 10% of) the chain's end-to-end total — including across a
/// shard crash/restart, whose queued publishes keep their chains.
#[test]
fn trace_chains_decompose_notify_latency() {
    let w = small_workload();
    let readings = readings_of(&w);
    let all_pois: Vec<PoiId> = w.ctx.plan().pois().iter().map(|p| p.id).collect();

    let (handle, dir) = start_server(&w, "trace", 2);
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert!(client.version() >= 2, "client must negotiate a traced protocol");

    let spec = SubSpec {
        kind: SubKind::Interval { ts: 0.0, te: 300.0 },
        k: all_pois.len(),
        epsilon: 0.0,
        pois: Vec::new(),
    };
    client.subscribe(&spec).expect("subscribe");
    client.barrier().expect("barrier");
    client.take_updates(); // drop the untraced initial result

    let mut traced = 0usize;
    let mut crashed = false;
    let chunk = readings.len().div_ceil(8).max(1);
    for (i, batch) in readings.chunks(chunk).enumerate() {
        let id = client.publish(batch).expect("publish");
        assert!(id.is_some(), "v2 publish must return the assigned trace id");
        if i == 2 {
            handle.crash_shard(0);
            crashed = true;
        }
        if crashed && i == 4 {
            handle.restart_shard(0).expect("restart shard");
            crashed = false;
        }
        if crashed {
            continue;
        }
        client.barrier().expect("barrier");
        for u in client.take_updates() {
            let Some(chain) = u.trace else { continue };
            traced += 1;
            assert!(chain.id > 0, "trace id must be assigned");
            assert!(chain.is_monotone(), "hop chain not monotone: {}", chain.to_json());
            assert!(chain.is_complete(), "hop chain incomplete: {}", chain.to_json());
            let segments = chain.segments();
            assert!(segments.len() >= 4, "expected >= 4 named segments, got {segments:?}");
            let total = chain.total_ns().expect("complete chain has a total");
            let sum: u64 = segments.iter().map(|&(_, ns)| ns).sum();
            let tolerance = total / 10;
            assert!(
                sum.abs_diff(total) <= tolerance,
                "segments sum {sum} differs from total {total} by more than 10%: {segments:?}"
            );
        }
    }
    assert!(traced > 0, "no update carried a trace chain");

    // The TRACE verb surfaces the same chains server-side.
    let traces = Json::parse(&client.trace_json().expect("trace_json")).expect("valid trace json");
    let recent = traces.get("recent").and_then(|r| r.as_arr()).expect("recent array");
    assert!(!recent.is_empty(), "server recorded no completed traces");
    let seg = recent[0]
        .get("trace")
        .and_then(|t| t.get("segments"))
        .and_then(|s| s.as_obj())
        .expect("segments object");
    assert!(seg.len() >= 4, "server-side trace has too few segments: {seg:?}");

    client.shutdown_server().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(dir);
}

/// A crashing shard worker dumps the flight recorder to
/// `postmortem.jsonl` in its store directory: the dump must parse as
/// JSONL, contain the `shard_crash` event, and include pipeline events
/// from *before* the crash (the point of a flight recorder).
#[test]
fn shard_crash_writes_flight_postmortem() {
    let w = small_workload();
    let readings = readings_of(&w);

    let (handle, dir) = start_server(&w, "postmortem", 2);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.publish(&readings[..readings.len() / 2]).expect("publish");
    client.barrier().expect("barrier");
    handle.crash_shard(0);

    // The worker writes the postmortem before exiting; crash_shard joins
    // nothing, so poll briefly for the file.
    let path = dir.join("shard-0").join("postmortem.jsonl");
    let mut dump = String::new();
    for _ in 0..100 {
        if let Ok(s) = std::fs::read_to_string(&path) {
            dump = s;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(!dump.is_empty(), "no postmortem at {}", path.display());

    let mut kinds = Vec::new();
    for line in dump.lines() {
        let event = Json::parse(line).expect("postmortem line is valid JSON");
        let kind = event.get("event").and_then(|k| k.as_str()).expect("event kind").to_string();
        assert!(event.get("seq").and_then(|s| s.as_u64()).is_some(), "event seq");
        assert!(event.get("at_ns").and_then(|s| s.as_u64()).is_some(), "event at_ns");
        kinds.push(kind);
    }
    assert!(kinds.iter().any(|k| k == "shard_crash"), "crash event missing: {kinds:?}");
    let crash_at = kinds.iter().position(|k| k == "shard_crash").unwrap_or(0);
    assert!(
        kinds[..crash_at].iter().any(|k| k == "reading_applied" || k == "publish_routed"),
        "no pipeline events precede the crash: {kinds:?}"
    );

    handle.restart_shard(0).expect("restart");
    client.shutdown_server().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(dir);
}

/// `METRICS` and `FLIGHT` replies must be machine-readable: valid JSON
/// with exact histogram bucket bounds that tile the observations, and
/// valid JSONL respectively.
#[test]
fn metrics_snapshot_is_well_formed() {
    let w = small_workload();
    let readings = readings_of(&w);

    let (handle, dir) = start_server(&w, "metrics-json", 2);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let spec =
        SubSpec { kind: SubKind::Snapshot { t: 150.0 }, k: 5, epsilon: 0.0, pois: Vec::new() };
    client.subscribe(&spec).expect("subscribe");
    client.publish(&readings).expect("publish");
    client.barrier().expect("barrier");

    let snap = Json::parse(&client.metrics_json().expect("metrics_json")).expect("valid json");
    assert_eq!(snap.get("version").and_then(|v| v.as_u64()), Some(1));
    assert!(snap.get("uptime_ns").and_then(|v| v.as_u64()).is_some());
    let counters = snap.get("counters").and_then(|c| c.as_obj()).expect("counters object");
    assert!(
        counters.get("serve_readings_sharded").and_then(|v| v.as_u64()).unwrap_or(0) > 0,
        "router counter missing or zero"
    );
    let hists = snap.get("histograms").and_then(|h| h.as_arr()).expect("histograms array");
    let mut saw_e2e = false;
    for h in hists {
        let name = h.get("name").and_then(|n| n.as_str()).expect("histogram name");
        assert!(h.get("unit").and_then(|u| u.as_str()).is_some(), "{name}: unit");
        let count = h.get("count").and_then(|c| c.as_u64()).expect("count");
        let buckets = h.get("buckets").and_then(|b| b.as_arr()).expect("buckets");
        let mut total = 0u64;
        for b in buckets {
            let lo = b.get("lo").and_then(|v| v.as_u64()).expect("bucket lo");
            let hi = b.get("hi").and_then(|v| v.as_u64()).expect("bucket hi");
            assert!(lo <= hi, "{name}: bucket bound inversion {lo} > {hi}");
            total += b.get("n").and_then(|v| v.as_u64()).expect("bucket n");
        }
        assert_eq!(total, count, "{name}: bucket counts must tile the series count");
        if name == "e2e" {
            saw_e2e = true;
            assert!(count > 0, "traced pipeline recorded no end-to-end latencies");
        }
    }
    assert!(saw_e2e, "e2e histogram missing from snapshot");
    let shards = snap.get("shards").and_then(|s| s.as_arr()).expect("shards array");
    assert_eq!(shards.len(), 2, "one queue-depth entry per shard");

    // Flight dump: every line parses, and the query itself is recorded.
    let dump = client.flight_dump().expect("flight_dump");
    assert!(!dump.is_empty());
    for line in dump.lines() {
        Json::parse(line).expect("flight line is valid JSON");
    }
    assert!(
        handle.metrics().counter(Counter::ServeMetricsQueries) >= 1
            && handle.metrics().counter(Counter::ServeFlightDumps) >= 1,
        "telemetry handlers must record into ServiceMetrics"
    );

    client.shutdown_server().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(dir);
}

/// With an aggressive segment tier (tiny compact/scrub cadences), the
/// serving pipeline seals and scrubs under load, shard crash/restart
/// reopens the segmented stores and reconverges, and the tier's
/// activity is visible in `ServiceMetrics`, the `METRICS` payload and
/// the flight recorder.
#[test]
fn segment_tier_runs_under_serving_load() {
    let w = small_workload();
    let readings = readings_of(&w);
    let all_pois: Vec<PoiId> = w.ctx.plan().pois().iter().map(|p| p.id).collect();
    let dir = temp_dir("segment-tier");
    let cfg = ServeConfig {
        shards: 2,
        max_gap: MAX_GAP,
        ur: ur_config(&w),
        compact_every: Some(16),
        scrub_every: Some(32),
        ..ServeConfig::new(dir.clone())
    };
    let handle = Server::start(Arc::clone(&w.ctx), cfg).expect("server start");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let half = readings.len() / 2;
    client.publish(&readings[..half]).expect("publish first half");
    client.barrier().expect("barrier");
    // Crash + restart shard 0 mid-stream: reopening a segmented store
    // must reconverge exactly like the WAL-only path always has.
    handle.crash_shard(0);
    handle.restart_shard(0).expect("restart shard");
    client.publish(&readings[half..]).expect("publish second half");
    client.barrier().expect("final barrier");

    let spec =
        SubSpec { kind: SubKind::Snapshot { t: 150.0 }, k: 5, epsilon: 0.0, pois: Vec::new() };
    let got = client.query(&spec).expect("query");
    let rows = client.dump_rows().expect("rows");
    let want = batch_reference(&w.ctx, ur_config(&w), rows, &spec.kind, all_pois, 5);
    assert_ranked_eq(&got, &want, "one-shot snapshot over the tiered stores");

    let m = handle.metrics();
    assert!(m.counter(Counter::StoreCompactions) > 0, "no compaction ran");
    assert!(m.counter(Counter::SegmentsSealed) > 0, "no segments sealed");
    assert!(m.counter(Counter::ScrubPasses) > 0, "no scrub pass ran");
    assert_eq!(m.counter(Counter::ScrubCorruptions), 0, "clean run found corruption");
    assert_eq!(m.counter(Counter::SegmentsQuarantined), 0);

    let snap = Json::parse(&client.metrics_json().expect("metrics_json")).expect("valid json");
    let counters = snap.get("counters").and_then(|c| c.as_obj()).expect("counters object");
    assert!(
        counters.get("store_compactions").and_then(|v| v.as_u64()).unwrap_or(0) > 0,
        "tier counters must ride the METRICS payload"
    );
    let dump = client.flight_dump().expect("flight dump");
    assert!(dump.contains("compaction_run"), "flight dump lacks compaction events");
    assert!(dump.contains("scrub_pass"), "flight dump lacks scrub events");

    // Segments are really on disk under the shard stores.
    let seg_count = |shard: usize| {
        std::fs::read_dir(dir.join(format!("shard-{shard}")))
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().to_str().is_some_and(|s| s.ends_with(".seg")))
            .count()
    };
    assert!(seg_count(0) + seg_count(1) > 0, "no segment files on disk");

    client.shutdown_server().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(dir);
}

/// One-shot queries answered server-side must match a local batch run
/// over the dumped rows.
#[test]
fn one_shot_query_matches_local_batch() {
    let w = small_workload();
    let readings = readings_of(&w);
    let all_pois: Vec<PoiId> = w.ctx.plan().pois().iter().map(|p| p.id).collect();

    let (handle, dir) = start_server(&w, "oneshot", 3);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.publish(&readings).expect("publish");
    client.barrier().expect("barrier");

    let spec =
        SubSpec { kind: SubKind::Snapshot { t: 150.0 }, k: 5, epsilon: 0.0, pois: Vec::new() };
    let got = client.query(&spec).expect("query");
    let rows = client.dump_rows().expect("rows");
    let want = batch_reference(&w.ctx, ur_config(&w), rows, &spec.kind, all_pois, 5);
    assert_ranked_eq(&got, &want, "one-shot snapshot");
    assert!(handle.metrics().counter(Counter::ServeOneShotQueries) >= 1);

    client.shutdown_server().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(dir);
}

/// The `DISTRIB` verb returns the full per-POI Poisson-binomial detail:
/// valid JSON whose per-POI expectation equals the batch snapshot flow Φ
/// within 1e-9 (the generating-function identity, verified end-to-end
/// over the wire), whose pmf sums to 1, and whose `P(count ≥ kq)` agrees
/// with the ranked score of the same spec through `QUERY`. Registering
/// one subscription per kind must also surface the per-kind counters.
#[test]
fn distrib_detail_matches_batch_flow_and_kind_counters_surface() {
    let w = small_workload();
    let readings = readings_of(&w);
    let all_pois: Vec<PoiId> = w.ctx.plan().pois().iter().map(|p| p.id).collect();

    let (handle, dir) = start_server(&w, "distrib-json", 2);
    let mut client = Client::connect(handle.addr()).expect("connect");
    for spec_kind in [
        SubKind::Snapshot { t: 150.0 },
        SubKind::Interval { ts: 0.0, te: 300.0 },
        SubKind::Distrib { t: 150.0, kq: 1, kmax: 16 },
        SubKind::LongVisit { ts: 0.0, te: 300.0, d: 10.0 },
    ] {
        let spec = SubSpec { kind: spec_kind, k: 3, epsilon: 0.0, pois: Vec::new() };
        client.subscribe(&spec).expect("subscribe");
    }
    client.publish(&readings).expect("publish");
    client.barrier().expect("barrier");

    let spec = SubSpec {
        kind: SubKind::Distrib { t: 150.0, kq: 1, kmax: 24 },
        k: all_pois.len(),
        epsilon: 0.0,
        pois: Vec::new(),
    };
    let detail = Json::parse(&client.distrib_json(&spec).expect("distrib_json")).expect("json");
    assert_eq!(detail.get("version").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(detail.get("kq").and_then(|v| v.as_u64()), Some(1));

    // Batch Φ over the engine's rows: the expectation oracle.
    let rows = client.dump_rows().expect("rows");
    let ott = ObjectTrackingTable::from_rows(rows).expect("rows consistent");
    let fa = FlowAnalytics::new(Arc::clone(&w.ctx), ott, ur_config(&w));
    let flows: HashMap<PoiId, f64> = fa
        .snapshot_flows(&SnapshotQuery::new(150.0, all_pois.clone(), all_pois.len()))
        .into_iter()
        .collect();

    let pois = detail.get("pois").and_then(|p| p.as_arr()).expect("pois array");
    assert_eq!(pois.len(), all_pois.len(), "one distribution per query POI");
    let mut p_ge: HashMap<PoiId, f64> = HashMap::new();
    for entry in pois {
        let poi = PoiId(entry.get("poi").and_then(|v| v.as_u64()).expect("poi id") as u32);
        let expectation = entry.get("expectation").and_then(|v| v.as_f64()).expect("expectation");
        let phi = flows.get(&poi).copied().unwrap_or(0.0);
        assert!(
            (expectation - phi).abs() <= TOL,
            "E[count] at {poi:?} is {expectation}, batch flow is {phi}"
        );
        let pmf = entry.get("pmf").and_then(|v| v.as_arr()).expect("pmf array");
        let tail = entry.get("tail").and_then(|v| v.as_f64()).expect("tail");
        let total: f64 = pmf.iter().filter_map(|v| v.as_f64()).sum::<f64>() + tail;
        assert!((total - 1.0).abs() <= TOL, "pmf at {poi:?} sums to {total}");
        p_ge.insert(poi, entry.get("p_ge").and_then(|v| v.as_f64()).expect("p_ge"));
    }
    // The ranked QUERY answer of the same spec scores exactly these p_ge.
    let ranked = client.query(&spec).expect("query distrib kind");
    for &(poi, score) in &ranked {
        let detail_score = p_ge.get(&poi).copied().expect("ranked POI in detail");
        assert!(
            (score - detail_score).abs() <= TOL,
            "QUERY scores {score} at {poi:?}, DISTRIB details {detail_score}"
        );
    }

    let m = handle.metrics();
    assert!(m.counter(Counter::ServeDistribQueries) >= 1, "DISTRIB handler must count");
    for (c, label) in [
        (Counter::ServeSnapshotSubscriptions, "snapshot"),
        (Counter::ServeIntervalSubscriptions, "interval"),
        (Counter::ServeDistribSubscriptions, "distrib"),
        (Counter::ServeLongvisitSubscriptions, "longvisit"),
    ] {
        assert_eq!(m.counter(c), 1, "{label} subscription-kind counter");
    }
    // The per-kind counters ride the METRICS payload too.
    let snap = Json::parse(&client.metrics_json().expect("metrics_json")).expect("valid json");
    let counters = snap.get("counters").and_then(|c| c.as_obj()).expect("counters object");
    assert_eq!(
        counters.get("serve_distrib_subscriptions").and_then(|v| v.as_u64()),
        Some(1),
        "serve_distrib_subscriptions missing from METRICS"
    );

    client.shutdown_server().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(dir);
}

/// A server killed abruptly (accept loop, pool, shards, engine — all
/// torn down, state left only in the WALs) and restarted on the same
/// port must be transparent to a [`ResilientClient`]: the resumed
/// subscription sees exactly the update sequence a never-disconnected
/// client would — consecutive sequence numbers, no duplicates, no gaps
/// — and its final answer equals the from-scratch batch reference.
#[test]
fn resilient_client_resumes_across_server_kill_and_restart() {
    use inflow::service::ResilientClient;

    let w = small_workload();
    let readings = readings_of(&w);
    let all_pois: Vec<PoiId> = w.ctx.plan().pois().iter().map(|p| p.id).collect();
    let (first_half, second_half) = readings.split_at(readings.len() / 2);

    let dir = temp_dir("resume");
    let cfg = ServeConfig {
        shards: 2,
        max_gap: MAX_GAP,
        ur: ur_config(&w),
        ..ServeConfig::new(dir.clone())
    };
    let handle = Server::start(Arc::clone(&w.ctx), cfg.clone()).expect("server start");
    let addr = handle.addr();

    let mut client = ResilientClient::connect(addr).expect("connect");
    let spec = SubSpec {
        kind: SubKind::Interval { ts: 0.0, te: 300.0 },
        k: all_pois.len(),
        epsilon: 0.0,
        pois: Vec::new(),
    };
    let sub = client.subscribe(&spec).expect("subscribe");
    client.barrier().expect("initial barrier");
    let mut updates = client.take_updates();

    for batch in first_half.chunks(64) {
        client.publish(batch).expect("publish");
        client.barrier().expect("barrier");
        updates.extend(client.take_updates());
    }

    // Kill everything; durable state survives only in the shard WALs.
    handle.crash();

    // Restart from the same store on the same port. The freed port can
    // linger briefly, so binding retries.
    let mut restart_cfg = cfg;
    restart_cfg.port = addr.port();
    let handle = {
        let mut tries = 0;
        loop {
            match Server::start(Arc::clone(&w.ctx), restart_cfg.clone()) {
                Ok(h) => break h,
                Err(e) if tries < 50 => {
                    tries += 1;
                    let _ = e;
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
                Err(e) => panic!("restart on {addr}: {e}"),
            }
        }
    };

    for batch in second_half.chunks(64) {
        client.publish(batch).expect("publish after restart");
        client.barrier().expect("barrier after restart");
        updates.extend(client.take_updates());
    }
    assert!(client.reconnects() >= 1, "the client must actually have healed a reconnect");

    // Exactly the sequence a never-disconnected client would have seen:
    // seq 1, 2, 3, ... with no duplicate and no hole across the restart.
    assert!(!updates.is_empty(), "the subscription must have produced updates");
    for (i, u) in updates.iter().enumerate() {
        assert_eq!(u.sub_id, sub, "updates carry the stable external id");
        assert_eq!(
            u.seq,
            (i + 1) as u64,
            "update stream must be contiguous across the restart: {:?}",
            updates.iter().map(|u| u.seq).collect::<Vec<_>>()
        );
    }

    // And the stream converged to the truth: last update == current ==
    // from-scratch batch reference over the recovered + new rows.
    let current = client.current(sub).expect("current");
    assert_ranked_eq(&updates.last().expect("nonempty").ranked, &current, "last update vs current");
    let mut probe = Client::connect(addr).expect("probe connect");
    let rows = probe.dump_rows().expect("rows");
    let want = batch_reference(&w.ctx, ur_config(&w), rows, &spec.kind, all_pois, spec.k);
    assert_ranked_eq(&current, &want, "resumed subscription final answer");

    probe.shutdown_server().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(dir);
}

/// With a zero queue budget every publish must be refused with the
/// typed `OVERLOADED` backpressure error instead of being queued.
#[test]
fn zero_queue_budget_surfaces_typed_backpressure() {
    use inflow::service::ServiceError;

    let w = small_workload();
    let readings = readings_of(&w);
    let dir = temp_dir("overload");
    let cfg = ServeConfig {
        shards: 1,
        max_gap: MAX_GAP,
        ur: ur_config(&w),
        max_queue: 0,
        ..ServeConfig::new(dir.clone())
    };
    let handle = Server::start(Arc::clone(&w.ctx), cfg).expect("server start");
    let mut client = Client::connect(handle.addr()).expect("connect");

    match client.publish(&readings[..4]) {
        Err(ServiceError::Overloaded { .. }) => {}
        other => panic!("want OVERLOADED backpressure, got {other:?}"),
    }
    assert!(
        handle.metrics().counter(Counter::ServeOverloads) >= 1,
        "refused publishes must be counted"
    );

    client.shutdown_server().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(dir);
}

/// A server that accepts the connection but never answers must surface
/// as a typed timeout within the configured budget, not a hang.
#[test]
fn silent_server_surfaces_typed_timeout() {
    use inflow::service::ServiceError;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let started = std::time::Instant::now();
    match Client::connect_with(addr, Some(std::time::Duration::from_millis(200))) {
        Err(ServiceError::Timeout) => {}
        Ok(_) => panic!("handshake against a silent server must not succeed"),
        Err(other) => panic!("want ServiceError::Timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < std::time::Duration::from_secs(10),
        "the timeout must fire within the configured budget"
    );
    drop(listener);
}
