//! Crash suite: deterministic fault injection over the ingestion store.
//!
//! The `FailpointFs` counts every mutating I/O operation, so a clean run
//! of a workload tells us the exact number of crash points; the sweep
//! then kills the process model at each one in turn and asserts the
//! recovered-and-resumed store is indistinguishable from an
//! uninterrupted run: byte-identical OTT contents and identical
//! snapshot/interval top-k answers. Separate tests corrupt the files
//! directly — truncation at every byte, bit flips — and require typed
//! errors plus truncate-to-last-valid recovery, never a panic or a
//! silently wrong table.

use inflow::core::{FlowAnalytics, IntervalQuery, SnapshotQuery};
use inflow::geometry::GridResolution;
use inflow::indoor::PoiId;
use inflow::tracking::store::{IngestStore, Manifest, StoreError, StoreOptions, WAL_FILE};
use inflow::tracking::{
    write_table_csv, FailpointFs, ObjectTrackingTable, OnlineTracker, RawReading,
};
use inflow::uncertainty::UrConfig;
use inflow::workload::{generate_synthetic, rows_of, SyntheticConfig, Workload};
use std::path::Path;

const MAX_GAP: f64 = 5.0;

fn workload() -> Workload {
    generate_synthetic(&SyntheticConfig {
        num_objects: 8,
        duration: 120.0,
        ..SyntheticConfig::tiny()
    })
}

/// Derives a globally time-sorted raw-reading stream from the workload's
/// OTT rows (one reading at each row endpoint). The tracker's view of
/// this stream — not the original OTT — is the reference all crash
/// variants must reproduce.
fn derive_readings(w: &Workload) -> Vec<RawReading> {
    let mut out = Vec::new();
    for row in rows_of(&w.ott) {
        out.push(RawReading { object: row.object, device: row.device, t: row.ts });
        if row.te > row.ts {
            out.push(RawReading { object: row.object, device: row.device, t: row.te });
        }
    }
    out.sort_by(|a, b| {
        a.t.total_cmp(&b.t)
            .then_with(|| a.object.cmp(&b.object))
            .then_with(|| a.device.0.cmp(&b.device.0))
    });
    out
}

fn opts() -> StoreOptions {
    StoreOptions {
        snapshot_every: Some(16),
        sync_each_reading: true,
        keep_snapshots: 2,
        ..StoreOptions::default()
    }
}

/// Options with the segment tier switched on: seal small segments
/// aggressively and merge pairs, so short workloads exercise seal,
/// merge, WAL rebase and scrubbing many times over.
fn tier_opts() -> StoreOptions {
    StoreOptions {
        compact_every: Some(8),
        merge_factor: 2,
        scrub_every: Some(32),
        scrub_budget: 2,
        ..opts()
    }
}

fn store_dir() -> &'static Path {
    Path::new("/store")
}

/// Runs the full workload through a store on `fs`; any step may die on an
/// armed failpoint.
fn run_to_completion(
    fs: FailpointFs,
    readings: &[RawReading],
) -> Result<ObjectTrackingTable, StoreError> {
    let (mut store, _) = IngestStore::open(fs, store_dir(), OnlineTracker::new(MAX_GAP), opts())?;
    for &r in readings {
        store.ingest(r)?;
    }
    store.finish()
}

/// Recovers the store on `fs`, resumes ingestion from the durable
/// frontier the `RecoveryReport` names, and returns the final OTT.
fn recover_and_resume(fs: FailpointFs, readings: &[RawReading]) -> ObjectTrackingTable {
    let (mut store, report) =
        IngestStore::open(fs, store_dir(), OnlineTracker::new(MAX_GAP), opts())
            .expect("recovery must always succeed");
    let resume = report.wal_records as usize;
    assert!(resume <= readings.len(), "durable frontier beyond the producer's stream");
    for &r in &readings[resume..] {
        store.ingest(r).expect("resumed ingestion must succeed");
    }
    store.finish().expect("finish after recovery must succeed")
}

fn ott_csv(ott: &ObjectTrackingTable) -> Vec<u8> {
    let mut buf = Vec::new();
    write_table_csv(&mut buf, ott).expect("in-memory CSV write");
    buf
}

fn analytics(w: &Workload, ott: ObjectTrackingTable) -> FlowAnalytics {
    FlowAnalytics::new(
        w.ctx.clone(),
        ott,
        UrConfig { vmax: w.vmax, resolution: GridResolution::COARSE, ..UrConfig::default() },
    )
}

fn pois(w: &Workload) -> Vec<PoiId> {
    w.ctx.plan().pois().iter().map(|p| p.id).collect()
}

/// Snapshot + interval top-k answers over `ott`, as comparable data.
fn topk_answers(w: &Workload, ott: ObjectTrackingTable) -> Vec<(PoiId, f64)> {
    let fa = analytics(w, ott);
    let p = pois(w);
    let sq = SnapshotQuery::new(60.0, p.clone(), 3);
    let iq = IntervalQuery::new(40.0, 80.0, p, 3);
    let mut out = fa.snapshot_topk_iterative(&sq).ranked;
    out.extend(fa.interval_topk_iterative(&iq).ranked);
    out
}

#[test]
fn crash_sweep_recovers_identically_at_every_failpoint() {
    let w = workload();
    let readings = derive_readings(&w);
    assert!(readings.len() >= 50, "workload too small to exercise the store");

    // Uninterrupted reference run; also learns the total operation count.
    let fs = FailpointFs::new();
    let reference = run_to_completion(fs.clone(), &readings).expect("clean run");
    let reference_csv = ott_csv(&reference);
    let reference_topk = topk_answers(&w, reference);
    let total_ops = fs.ops();
    assert!(total_ops > 100, "expected a substantial operation count, got {total_ops}");

    for kill_at in 1..=total_ops {
        let fs = FailpointFs::new();
        fs.arm(kill_at);
        let crashed = run_to_completion(fs.clone(), &readings).is_err();
        assert!(crashed, "failpoint {kill_at} of {total_ops} did not fire");
        fs.disarm();

        let ott = recover_and_resume(fs, &readings);
        assert_eq!(ott_csv(&ott), reference_csv, "OTT diverged after crash at operation {kill_at}");
        // The OTT being byte-identical makes the (deterministic) query
        // pipeline identical too; spot-check real answers on a subsample
        // plus the sweep's edges.
        if kill_at % 37 == 0 || kill_at == 1 || kill_at == total_ops {
            assert_eq!(
                topk_answers(&w, ott),
                reference_topk,
                "top-k answers diverged after crash at operation {kill_at}"
            );
        }
    }
}

#[test]
fn double_crash_recovery_is_still_identical() {
    // Crash mid-ingestion, recover, crash again during the resumed run,
    // recover again: still byte-identical to the uninterrupted run.
    let w = workload();
    let readings = derive_readings(&w);
    let fs = FailpointFs::new();
    let reference_csv = ott_csv(&run_to_completion(fs.clone(), &readings).expect("clean run"));

    let fs = FailpointFs::new();
    fs.arm(120);
    assert!(run_to_completion(fs.clone(), &readings).is_err());
    fs.disarm();
    fs.arm(60);
    {
        let (mut store, report) =
            IngestStore::open(fs.clone(), store_dir(), OnlineTracker::new(MAX_GAP), opts())
                .expect("first recovery");
        let resume = report.wal_records as usize;
        let mut died = false;
        for &r in &readings[resume..] {
            if store.ingest(r).is_err() {
                died = true;
                break;
            }
        }
        let died = died || store.finish().is_err();
        assert!(died, "second failpoint did not fire");
    }
    fs.disarm();
    let ott = recover_and_resume(fs, &readings);
    assert_eq!(ott_csv(&ott), reference_csv);
}

#[test]
fn wal_truncated_at_every_byte_recovers_a_valid_prefix() {
    let w = workload();
    let readings = derive_readings(&w);

    // Build a WAL-only store (no snapshots) so every recovery exercises
    // the replay-from-scratch path over the truncated log.
    let fs = FailpointFs::new();
    let wal_opts = StoreOptions { snapshot_every: None, ..opts() };
    let reference_csv = {
        let (mut store, _) =
            IngestStore::open(fs.clone(), store_dir(), OnlineTracker::new(MAX_GAP), wal_opts)
                .expect("create");
        for &r in &readings {
            store.ingest(r).expect("ingest");
        }
        // No snapshot: drop the store with the WAL as the only truth.
        drop(store.into_tracker().expect("sync"));
        let fs_ref = FailpointFs::new();
        fs_ref
            .store_raw(&store_dir().join(WAL_FILE), fs.dump(&store_dir().join(WAL_FILE)).unwrap());
        ott_csv(&recover_and_resume(fs_ref, &readings))
    };

    let wal = fs.dump(&store_dir().join(WAL_FILE)).expect("wal exists");
    // Every-byte sweeps are cheap on the header; past it, stride through
    // the reading frames hitting every offset modulo 3.
    for cut in (0..200).chain((200..wal.len()).step_by(3)) {
        let fs = FailpointFs::new();
        fs.store_raw(&store_dir().join(WAL_FILE), wal[..cut].to_vec());
        let ott = recover_and_resume(fs, &readings);
        assert_eq!(ott_csv(&ott), reference_csv, "divergence after truncation to {cut} bytes");
    }
}

#[test]
fn wal_bit_flips_recover_via_truncation_or_rebase() {
    let w = workload();
    let readings = derive_readings(&w);
    let fs = FailpointFs::new();
    let reference_csv = ott_csv(&run_to_completion(fs.clone(), &readings).expect("clean run"));
    let wal = fs.dump(&store_dir().join(WAL_FILE)).expect("wal exists");

    // The snapshots stay in place, so flips near the WAL head exercise
    // the snapshot-ahead-of-damaged-WAL rebase path.
    for i in (0..wal.len()).step_by(2) {
        let fs2 = FailpointFs::new();
        // Restore the full post-run state, then flip one WAL byte.
        for (path, bytes) in snapshot_files(&fs) {
            fs2.store_raw(&path, bytes);
        }
        let mut bad = wal.clone();
        bad[i] ^= 1 << (i % 8);
        fs2.store_raw(&store_dir().join(WAL_FILE), bad);
        let ott = recover_and_resume(fs2, &readings);
        assert_eq!(ott_csv(&ott), reference_csv, "divergence after flipping WAL byte {i}");
    }
}

#[test]
fn corrupt_snapshots_fall_back_to_older_or_wal() {
    let w = workload();
    let readings = derive_readings(&w);
    let fs = FailpointFs::new();
    let reference_csv = ott_csv(&run_to_completion(fs.clone(), &readings).expect("clean run"));
    let snaps: Vec<_> = snapshot_files(&fs)
        .into_iter()
        .filter(|(p, _)| p.to_str().is_some_and(|s| s.ends_with(".snap")))
        .collect();
    assert!(snaps.len() >= 2, "expected several retained snapshots, got {}", snaps.len());

    // Corrupt the newest snapshot; then every snapshot.
    for corrupt_n in 1..=snaps.len() {
        let fs2 = FailpointFs::new();
        for (path, bytes) in snapshot_files(&fs) {
            fs2.store_raw(&path, bytes);
        }
        for (path, bytes) in snaps.iter().rev().take(corrupt_n) {
            let mut bad = bytes.clone();
            let mid = bad.len() / 2;
            bad[mid] ^= 0xFF;
            fs2.store_raw(path, bad);
        }
        let (store, report) =
            IngestStore::open(fs2.clone(), store_dir(), OnlineTracker::new(MAX_GAP), opts())
                .expect("recovery with corrupt snapshots");
        assert_eq!(report.snapshots_rejected, corrupt_n as u64);
        drop(store);
        let ott = recover_and_resume(fs2, &readings);
        assert_eq!(ott_csv(&ott), reference_csv, "divergence with {corrupt_n} corrupt snapshots");
    }
}

#[test]
fn recovered_snapshot_index_matches_rebuild() {
    // Cold start from a snapshot must hand back a queryable OTT+AR-tree
    // image equal to rebuilding from scratch.
    let w = workload();
    let readings = derive_readings(&w);
    let fs = FailpointFs::new();
    run_to_completion(fs.clone(), &readings).expect("clean run");

    let (store, report) =
        IngestStore::open(fs, store_dir(), OnlineTracker::new(MAX_GAP), opts()).expect("reopen");
    assert!(report.snapshot_seq.is_some(), "finish() must have left a snapshot");
    assert_eq!(report.wal_replayed, 0, "snapshot covers the whole WAL");
    let loaded = store.loaded_snapshot().expect("snapshot image");
    let rebuilt = inflow::tracking::ArTree::build(&loaded.ott);
    assert_eq!(loaded.artree.entries(), rebuilt.entries());
    assert_eq!(loaded.ott.records(), store.tracker().snapshot().expect("ott").records());
}

/// Runs the full workload through a segment-tier store (compaction,
/// merging, WAL rebasing and scrubbing all active), returning the final
/// OTT CSV, the manifest, and the assembled-history CSV.
fn run_tier(
    fs: FailpointFs,
    readings: &[RawReading],
) -> Result<(Vec<u8>, Manifest, Vec<u8>), StoreError> {
    let (mut store, _) =
        IngestStore::open(fs, store_dir(), OnlineTracker::new(MAX_GAP), tier_opts())?;
    for &r in readings {
        store.ingest(r)?;
    }
    let history = store.assemble_history()?;
    let history_csv = ott_csv(&history.ott);
    assert_eq!(history.quarantined_rows, 0, "clean tier run must not quarantine");
    let manifest = store.manifest().clone();
    Ok((ott_csv(&store.finish()?), manifest, history_csv))
}

#[test]
fn compaction_crash_sweep_recovers_identically_at_every_failpoint() {
    // The tentpole guarantee: with sealing, merging, manifest swaps, WAL
    // rebasing and scrub passes interleaved into ingestion, killing the
    // process at *every* mutating I/O operation and resuming still
    // converges to the uninterrupted run — same OTT, same manifest
    // (sealed layout included), same assembled history.
    let w = workload();
    let readings = derive_readings(&w);

    let fs = FailpointFs::new();
    let (reference_csv, reference_manifest, reference_history) =
        run_tier(fs.clone(), &readings).expect("clean tier run");
    assert!(
        reference_manifest.entries.len() >= 2,
        "workload too small to seal several segments (got {})",
        reference_manifest.entries.len()
    );
    assert!(
        reference_manifest.entries.iter().any(|e| e.row_count > 8),
        "workload too small to exercise merging"
    );
    let total_ops = fs.ops();

    for kill_at in 1..=total_ops {
        let fs = FailpointFs::new();
        fs.arm(kill_at);
        assert!(
            run_tier(fs.clone(), &readings).is_err(),
            "failpoint {kill_at} of {total_ops} did not fire"
        );
        fs.disarm();

        let (mut store, report) =
            IngestStore::open(fs, store_dir(), OnlineTracker::new(MAX_GAP), tier_opts())
                .expect("recovery must always succeed");
        let resume = report.wal_records as usize;
        assert!(resume <= readings.len());
        for &r in &readings[resume..] {
            store.ingest(r).expect("resumed ingestion must succeed");
        }
        let history = store.assemble_history().expect("assemble after recovery");
        assert_eq!(
            ott_csv(&history.ott),
            reference_history,
            "assembled history diverged after crash at operation {kill_at}"
        );
        assert_eq!(history.quarantined_rows, 0, "crash at {kill_at} quarantined rows");
        assert_eq!(
            store.manifest(),
            &reference_manifest,
            "manifest diverged after crash at operation {kill_at}"
        );
        let ott = store.finish().expect("finish after recovery");
        assert_eq!(ott_csv(&ott), reference_csv, "OTT diverged after crash at operation {kill_at}");
    }
}

#[test]
fn segment_bit_flips_quarantine_and_degrade_never_panic_or_lie() {
    // Property sweep over the sealed tier: flipping any byte of any
    // segment file must either leave answers identical (the flip is in
    // a file recovery replaces) or degrade them with the quarantine
    // counted — never a panic, never a silently different table.
    let w = workload();
    let readings = derive_readings(&w);
    let fs = FailpointFs::new();
    let (_, manifest, reference_history) = run_tier(fs.clone(), &readings).expect("clean run");

    for entry in &manifest.entries {
        let path = store_dir().join(entry.file_name());
        let bytes = fs.dump(&path).expect("segment file exists");
        for i in (0..bytes.len()).step_by(7) {
            let fs2 = FailpointFs::new();
            for (p, b) in snapshot_files(&fs) {
                fs2.store_raw(&p, b);
            }
            let mut bad = bytes.clone();
            bad[i] ^= 1 << (i % 8);
            fs2.store_raw(&path, bad);

            let (mut store, _) =
                IngestStore::open(fs2, store_dir(), OnlineTracker::new(MAX_GAP), tier_opts())
                    .expect("recovery with a corrupt segment");
            let history = store.assemble_history().expect("assembly never fails hard");
            let lines = |csv: &[u8]| csv.iter().filter(|&&b| b == b'\n').count();
            if history.quarantined_rows == 0 {
                assert_eq!(
                    ott_csv(&history.ott),
                    reference_history,
                    "segment {} byte {i}: undetected flip changed the answer",
                    entry.base_row
                );
            } else {
                assert_eq!(history.quarantined_rows, entry.row_count);
                assert_eq!(history.quarantined_segments, 1);
                assert!(
                    lines(&ott_csv(&history.ott)) < lines(&reference_history),
                    "degraded view must exclude the quarantined rows"
                );
            }
        }
    }
}

#[test]
fn manifest_corruption_resets_the_tier_but_never_the_data() {
    // Truncate and bit-flip the manifest at every stride: recovery must
    // either keep a valid manifest or reset the segment tier, and the
    // final OTT must match the reference either way (snapshots + WAL
    // carry the state; segments are a redundant verified tier).
    let w = workload();
    let readings = derive_readings(&w);
    let fs = FailpointFs::new();
    let (reference_csv, _, _) = run_tier(fs.clone(), &readings).expect("clean run");
    let manifest_path = store_dir().join("manifest.bin");
    let manifest_bytes = fs.dump(&manifest_path).expect("manifest exists");

    let mut variants: Vec<Vec<u8>> = Vec::new();
    for cut in (0..manifest_bytes.len()).step_by(5) {
        variants.push(manifest_bytes[..cut].to_vec());
    }
    for i in (0..manifest_bytes.len()).step_by(3) {
        let mut bad = manifest_bytes.clone();
        bad[i] ^= 1 << (i % 8);
        variants.push(bad);
    }
    for (v, bad) in variants.into_iter().enumerate() {
        let fs2 = FailpointFs::new();
        for (p, b) in snapshot_files(&fs) {
            fs2.store_raw(&p, b);
        }
        fs2.store_raw(&manifest_path, bad);
        let (mut store, report) =
            IngestStore::open(fs2, store_dir(), OnlineTracker::new(MAX_GAP), tier_opts())
                .expect("recovery with a corrupt manifest");
        if report.manifest_rejected {
            assert_eq!(store.manifest().entries.len(), 0, "variant {v}: rejected tier not reset");
        }
        let history = store.assemble_history().expect("assembly succeeds");
        assert_eq!(history.quarantined_rows, 0, "variant {v}");
        let ott = store.finish().expect("finish");
        assert_eq!(ott_csv(&ott), reference_csv, "variant {v}: data diverged");
    }
}

/// All files currently in the store directory, with contents.
fn snapshot_files(fs: &FailpointFs) -> Vec<(std::path::PathBuf, Vec<u8>)> {
    use inflow::tracking::store::Fs as _;
    fs.list(store_dir())
        .expect("list")
        .into_iter()
        .map(|p| {
            let bytes = fs.dump(&p).expect("file exists");
            (p, bytes)
        })
        .collect()
}
