//! Structural properties of uncertainty regions across query parameters.

use inflow::geometry::{Point, Region};
use inflow::tracking::ObjectState;
use inflow::uncertainty::{UrConfig, UrEngine};
use inflow::workload::{generate_synthetic, SyntheticConfig};

fn setup() -> (inflow::workload::Workload, UrEngine) {
    let w = generate_synthetic(&SyntheticConfig {
        num_objects: 10,
        duration: 400.0,
        ..SyntheticConfig::tiny()
    });
    let eng = UrEngine::new(
        w.ctx.clone(),
        UrConfig { vmax: w.vmax, topology_check: false, ..UrConfig::default() },
    );
    (w, eng)
}

fn sample_grid(mbr: inflow::geometry::Mbr, n: usize) -> Vec<Point> {
    let mut pts = Vec::with_capacity(n * n);
    for j in 0..n {
        for i in 0..n {
            pts.push(Point::new(
                mbr.lo.x + mbr.width() * (i as f64 + 0.5) / n as f64,
                mbr.lo.y + mbr.height() * (j as f64 + 0.5) / n as f64,
            ));
        }
    }
    pts
}

/// Widening the query interval can only grow the uncertainty region: the
/// evidence per sub-interval is unchanged, and end clipping relaxes.
#[test]
fn interval_ur_is_monotone_in_the_interval() {
    let (w, eng) = setup();
    for (object, _) in w.ground_truth.iter().take(6) {
        for base in 0..4 {
            let ts = 50.0 + base as f64 * 60.0;
            let te = ts + 40.0;
            let (Some(small), Some(large)) = (
                eng.interval_ur(&w.ott, *object, ts, te),
                eng.interval_ur(&w.ott, *object, ts - 20.0, te + 40.0),
            ) else {
                continue;
            };
            if small.is_empty() {
                continue;
            }
            for p in sample_grid(small.mbr(), 25) {
                if small.contains(p) {
                    assert!(
                        large.contains(p),
                        "object {object}: point {p} in UR[{ts},{te}] but not in the wider UR"
                    );
                }
            }
        }
    }
}

/// A snapshot UR at `t` is contained in any interval UR whose window
/// covers `t` (the interval region unions the possible positions of every
/// instant it spans).
#[test]
fn snapshot_ur_is_contained_in_covering_interval_ur() {
    let (w, eng) = setup();
    let mut checked = 0usize;
    for (object, _) in w.ground_truth.iter().take(6) {
        for step in 1..8 {
            let t = step as f64 * 45.0;
            let Some(state) = w.ott.state_at(*object, t) else {
                continue;
            };
            let snap = eng.snapshot_ur(&w.ott, state, t);
            if snap.is_empty() {
                continue;
            }
            let Some(interval) = eng.interval_ur(&w.ott, *object, t - 30.0, t + 30.0) else {
                continue;
            };
            for p in sample_grid(snap.mbr(), 20) {
                if snap.contains(p) {
                    assert!(
                        interval.contains(p),
                        "object {object} t={t}: snapshot point {p} outside interval UR"
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 100, "only {checked} points checked");
}

/// Snapshot URs grow as the query time moves away from the last
/// detection (the speed rings widen).
#[test]
fn snapshot_ur_grows_during_inactivity() {
    let (w, eng) = setup();
    let mut compared = 0usize;
    for (object, _) in w.ground_truth.iter().take(8) {
        // Find an inactive stretch of at least 4 seconds.
        let chain = w.ott.object_records(*object).to_vec();
        for pair in chain.windows(2) {
            let pre = w.ott.record(pair[0]);
            let suc = w.ott.record(pair[1]);
            let gap = suc.ts - pre.te;
            if gap < 4.0 {
                continue;
            }
            // Two instants in the first half of the gap: rings still
            // expanding from the predecessor on both sides.
            let t1 = pre.te + gap * 0.2;
            let t2 = pre.te + gap * 0.4;
            let (Some(ObjectState::Inactive { .. }), Some(ObjectState::Inactive { .. })) =
                (w.ott.state_at(*object, t1), w.ott.state_at(*object, t2))
            else {
                continue;
            };
            let ur1 = eng.snapshot_ur(&w.ott, w.ott.state_at(*object, t1).unwrap(), t1);
            let ur2 = eng.snapshot_ur(&w.ott, w.ott.state_at(*object, t2).unwrap(), t2);
            if ur1.is_empty() || ur2.is_empty() {
                continue;
            }
            // The pre-side ring radius grows; the suc-side constraint
            // relaxes too, so the later MBR should not shrink in area
            // during the first half of the gap.
            assert!(
                ur2.mbr().area() >= ur1.mbr().area() - 1e-9,
                "object {object}: UR shrank from t={t1} to t={t2}"
            );
            compared += 1;
        }
    }
    assert!(compared > 5, "only {compared} gap comparisons");
}

/// Presence respects region monotonicity: a wider interval can only
/// increase a POI's presence for the same object.
#[test]
fn presence_is_monotone_in_the_interval() {
    let (w, eng) = setup();
    let plan = w.ctx.plan();
    let mut compared = 0usize;
    for (object, _) in w.ground_truth.iter().take(5) {
        let (ts, te) = (100.0, 180.0);
        let (Some(small), Some(large)) = (
            eng.interval_ur(&w.ott, *object, ts, te),
            eng.interval_ur(&w.ott, *object, ts - 40.0, te + 40.0),
        ) else {
            continue;
        };
        for poi in plan.pois().iter().take(10) {
            let p_small = eng.presence(&small, poi);
            let p_large = eng.presence(&large, poi);
            // Allow grid-integration noise.
            assert!(
                p_large >= p_small - 0.02,
                "object {object}, {}: presence fell from {p_small} to {p_large}",
                poi.name
            );
            compared += 1;
        }
    }
    assert!(compared > 20);
}
