//! Property suite for the probabilistic count-distribution and
//! long-visit query subsystem (std-only, seeded — no external proptest).
//!
//! Pinned invariants:
//!
//! * `P(count ≥ k)` is monotone non-increasing in `k`, the pmf plus tail
//!   mass sums to 1 within 1e-9, and the stored expectation equals both
//!   `Σ p_i` and (untruncated) `Σ k·pmf(k)` — on random presence
//!   sequences across truncation levels.
//! * The distribution's expectation equals the paper's flow Φ within
//!   1e-9 against **all four** batch algorithms (snapshot/interval ×
//!   iterative/join), across the chaos corruption grid.
//! * Expected dwell is bounded by the query window, and long-visit
//!   counts are integral and monotone non-increasing in the threshold.

use inflow::core::{
    CountDistribution, DistribQuery, FlowAnalytics, IntervalQuery, LongVisitQuery, SnapshotQuery,
};
use inflow::geometry::GridResolution;
use inflow::indoor::PoiId;
use inflow::tracking::{sanitize_rows, ObjectTrackingTable, SanitizeConfig};
use inflow::uncertainty::UrConfig;
use inflow::workload::rng::StdRng;
use inflow::workload::{
    apply_corruption, corruption_grid, generate_synthetic, rows_of, SyntheticConfig, Workload,
};
use std::collections::HashMap;

const TOL: f64 = 1e-9;

#[test]
fn ccdf_monotone_and_mass_conserved_on_random_sequences() {
    let mut rng = StdRng::seed_from_u64(0xD157);
    for case in 0..200 {
        let n = 1 + (rng.next_u64() % 40) as usize;
        let ps: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        // Sweep truncation from aggressive to lossless.
        let kmax = 1 + (rng.next_u64() % (n as u64 + 4)) as usize;
        let d = CountDistribution::from_presences(ps.iter().copied(), kmax);
        let label = format!("case {case} (n={n}, kmax={kmax})");

        assert!((d.p_ge(0) - 1.0).abs() <= TOL, "{label}: P(count >= 0) must be 1");
        for k in 0..d.kmax() + 3 {
            assert!(
                d.p_ge(k) + TOL >= d.p_ge(k + 1),
                "{label}: P(count >= k) not monotone at k={k}: {} < {}",
                d.p_ge(k),
                d.p_ge(k + 1)
            );
            assert!((0.0..=1.0 + TOL).contains(&d.p_ge(k)), "{label}: p_ge out of range");
        }
        let mass: f64 = (0..=d.kmax()).map(|k| d.pmf(k)).sum::<f64>() + d.tail_mass();
        assert!((mass - 1.0).abs() <= TOL, "{label}: mass {mass} != 1");

        // The expectation is the presence sum regardless of truncation…
        let want: f64 = ps.iter().sum();
        assert!(
            (d.expectation() - want).abs() <= TOL,
            "{label}: E[count] {} != Σp {want}",
            d.expectation()
        );
        // …and matches the pmf-weighted sum exactly when nothing was cut.
        if kmax >= n {
            assert!(
                (d.expectation_from_pmf() - want).abs() <= TOL,
                "{label}: Σ k·pmf(k) {} != Σp {want}",
                d.expectation_from_pmf()
            );
            assert!(d.tail_mass() <= TOL, "{label}: untruncated tail {}", d.tail_mass());
        }

        // CDF/CCDF complement and quantile coherence on the held mass.
        for k in 0..=d.kmax() {
            let total = d.cdf(k) + d.p_ge(k + 1);
            assert!((total - 1.0).abs() <= TOL, "{label}: CDF+CCDF at {k} is {total}");
        }
        let median = d.quantile(0.5);
        if median > 0 {
            assert!(d.cdf(median - 1) < 0.5 + TOL, "{label}: median {median} too high");
        }
        if median <= d.kmax() {
            assert!(d.cdf(median) + TOL >= 0.5, "{label}: median {median} too low");
        }
    }
}

fn workload() -> Workload {
    generate_synthetic(&SyntheticConfig {
        num_objects: 25,
        duration: 500.0,
        ..SyntheticConfig::tiny()
    })
}

/// Corrupt → repair-all sanitize → façade, exactly like the chaos suite.
fn sanitized_analytics(w: &Workload, spec: &inflow::workload::CorruptionSpec) -> FlowAnalytics {
    let devices = w.ctx.plan().devices().len() as u32;
    let corrupted = apply_corruption(rows_of(&w.ott), spec, devices);
    let gate = SanitizeConfig::repair_all().with_vmax(w.vmax);
    let outcome = sanitize_rows(corrupted, &gate, Some(w.ctx.plan()));
    let ott = ObjectTrackingTable::from_rows(outcome.rows)
        .expect("sanitized rows must satisfy OTT invariants");
    FlowAnalytics::new(
        w.ctx.clone(),
        ott,
        UrConfig { vmax: w.vmax, resolution: GridResolution::COARSE, ..UrConfig::default() },
    )
    .with_sanitize_report(outcome.report, outcome.repaired_objects)
}

fn flows_of(ranked: &[(PoiId, f64)]) -> HashMap<PoiId, f64> {
    ranked.iter().copied().collect()
}

/// E[count] = Φ on every POI, against all four algorithms, across the
/// chaos corruption grid. `k = |P|` makes the join algorithms resolve
/// every exact flow, so the comparison covers the full POI set.
#[test]
fn expectation_equals_flow_on_all_four_algorithms_across_chaos_grid() {
    let w = workload();
    for spec in corruption_grid(0xDECAF) {
        let fa = sanitized_analytics(&w, &spec);
        let pois: Vec<PoiId> = fa.engine().context().plan().pois().iter().map(|p| p.id).collect();
        let k = pois.len();
        let label = format!("chaos {}", spec.label);

        // Snapshot: distribution at t vs Algorithms 1 and 2/3.
        let dq = DistribQuery::at(200.0, pois.clone(), 2, 64, k);
        let dist = fa.distrib_topk(&dq);
        let snap_it = flows_of(
            &fa.snapshot_topk_iterative(&SnapshotQuery::new(200.0, pois.clone(), k)).ranked,
        );
        let snap_jn =
            flows_of(&fa.snapshot_topk_join(&SnapshotQuery::new(200.0, pois.clone(), k)).ranked);
        for (poi, d) in &dist.distributions {
            let e = d.expectation();
            for (alg, flows) in [("snapshot iterative", &snap_it), ("snapshot join", &snap_jn)] {
                let phi = flows.get(poi).copied().unwrap_or(0.0);
                assert!(
                    (e - phi).abs() <= TOL,
                    "{label}: E[count] at {poi:?} is {e}, {alg} flow is {phi}"
                );
            }
            let mass: f64 = (0..=d.kmax()).map(|j| d.pmf(j)).sum::<f64>() + d.tail_mass();
            assert!((mass - 1.0).abs() <= TOL, "{label}: mass at {poi:?} is {mass}");
        }

        // Interval: distribution over [ts, te] vs Algorithms 4 and 5.
        let dq = DistribQuery::over(150.0, 250.0, pois.clone(), 2, 64, k);
        let dist = fa.distrib_topk(&dq);
        let int_it = flows_of(
            &fa.interval_topk_iterative(&IntervalQuery::new(150.0, 250.0, pois.clone(), k)).ranked,
        );
        let int_jn = flows_of(
            &fa.interval_topk_join(&IntervalQuery::new(150.0, 250.0, pois.clone(), k)).ranked,
        );
        for (poi, d) in &dist.distributions {
            let e = d.expectation();
            for (alg, flows) in [("interval iterative", &int_it), ("interval join", &int_jn)] {
                let phi = flows.get(poi).copied().unwrap_or(0.0);
                assert!(
                    (e - phi).abs() <= TOL,
                    "{label}: E[count] at {poi:?} is {e}, {alg} flow is {phi}"
                );
            }
        }

        // The ranking scores are the distributions' own CCDF values.
        let by_poi: HashMap<PoiId, &CountDistribution> =
            dist.distributions.iter().map(|(p, d)| (*p, d)).collect();
        for &(poi, score) in &dist.ranked {
            let want = by_poi.get(&poi).map(|d| d.p_ge(2)).unwrap_or(0.0);
            assert!(
                (score - want).abs() <= TOL,
                "{label}: rank score {score} at {poi:?} != p_ge {want}"
            );
        }
    }
}

/// Long-visit sanity on the clean workload: per-POI expected dwell never
/// exceeds the window, counts are integral, bounded by the candidate
/// population, and monotone non-increasing in the dwell threshold.
#[test]
fn longvisit_counts_are_integral_bounded_and_monotone_in_threshold() {
    let w = workload();
    let fa = FlowAnalytics::new(
        w.ctx.clone(),
        ObjectTrackingTable::from_rows(rows_of(&w.ott)).expect("clean rows"),
        UrConfig { vmax: w.vmax, resolution: GridResolution::COARSE, ..UrConfig::default() },
    );
    let pois: Vec<PoiId> = fa.engine().context().plan().pois().iter().map(|p| p.id).collect();
    let (ts, te) = (100.0, 300.0);
    let window = te - ts;
    let num_objects = 25.0;

    let mut prev: Option<HashMap<PoiId, f64>> = None;
    for d in [0.0, 1.0, 5.0, 20.0, window + 1.0] {
        let res = fa.longvisit_topk(&LongVisitQuery::new(ts, te, d, pois.clone(), pois.len()));
        let counts = flows_of(&res.counts);
        for (&poi, &count) in &counts {
            assert!(
                count.fract() == 0.0 && (0.0..=num_objects).contains(&count),
                "d={d}: count {count} at {poi:?} not an integral head count"
            );
            if let Some(prev) = &prev {
                let before = prev.get(&poi).copied().unwrap_or(0.0);
                assert!(
                    count <= before,
                    "d={d}: count at {poi:?} grew from {before} to {count} as d increased"
                );
            }
        }
        if d > window {
            // Expected dwell is bounded by the window (presence ≤ 1), so
            // an impossible threshold must count nobody.
            assert!(counts.values().all(|&c| c == 0.0), "d={d}: impossible dwell satisfied");
        }
        if d == 0.0 {
            // Threshold 0 admits every candidate that ever shows any
            // presence — at least one POI must see someone.
            assert!(counts.values().any(|&c| c > 0.0), "nobody dwells anywhere at d=0");
        }
        prev = Some(counts);
    }
}
