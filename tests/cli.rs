//! End-to-end tests of the `inflow` CLI (via the library entry point, so
//! no subprocess management is needed).

use inflow::cli::run_str;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("inflow-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generates a small dataset and returns (plan path, ott path, dir).
fn generate(name: &str) -> (String, String, std::path::PathBuf) {
    let dir = temp_dir(name);
    let out = run_str(&[
        "generate",
        "synthetic",
        "--out-dir",
        dir.to_str().unwrap(),
        "--objects",
        "25",
        "--duration",
        "300",
    ])
    .expect("generate succeeds");
    assert!(out.contains("generated synthetic dataset"));
    (
        dir.join("plan.txt").to_str().unwrap().to_string(),
        dir.join("ott.csv").to_str().unwrap().to_string(),
        dir,
    )
}

#[test]
fn generate_then_query_round_trip() {
    let (plan, ott, dir) = generate("roundtrip");
    assert!(std::path::Path::new(&plan).exists());
    assert!(std::path::Path::new(&ott).exists());

    let snap = run_str(&["snapshot", "--plan", &plan, "--ott", &ott, "--t", "150", "--k", "3"])
        .expect("snapshot succeeds");
    assert!(snap.contains("top-3 POIs at t = 150"), "{snap}");
    assert!(snap.lines().count() >= 5, "{snap}");

    // Iterative and join agree on the ranking printed.
    let snap_it = run_str(&[
        "snapshot",
        "--plan",
        &plan,
        "--ott",
        &ott,
        "--t",
        "150",
        "--k",
        "3",
        "--iterative",
    ])
    .unwrap();
    let names = |s: &str| -> Vec<String> {
        s.lines()
            .skip(2)
            .take(3)
            .map(|l| l.split_whitespace().nth(1).unwrap().to_string())
            .collect()
    };
    assert_eq!(names(&snap), names(&snap_it));

    let interval = run_str(&[
        "interval", "--plan", &plan, "--ott", &ott, "--ts", "50", "--te", "150", "--k", "3",
    ])
    .expect("interval succeeds");
    assert!(interval.contains("top-3 POIs over [50, 150]"), "{interval}");

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn timeline_and_density_commands() {
    let (plan, ott, dir) = generate("timeline");
    let tl = run_str(&[
        "timeline", "--plan", &plan, "--ott", &ott, "--start", "0", "--end", "300", "--bucket",
        "150", "--k", "2",
    ])
    .expect("timeline succeeds");
    assert!(tl.contains("#0:") && tl.contains("#1:"), "{tl}");

    let density =
        run_str(&["density", "--plan", &plan, "--ott", &ott, "--t", "150"]).expect("density");
    assert!(density.contains("expected objects"), "{density}");
    // Expected mass ≈ tracked objects at t (≤ 25).
    let total: f64 = density
        .lines()
        .next()
        .unwrap()
        .split("total expected ")
        .nth(1)
        .unwrap()
        .split(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(total <= 25.5, "density total {total}");

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn profile_switches_emit_span_trees_and_json() {
    let (plan, ott, dir) = generate("profile");

    // Plain run carries no profile section.
    let bare = run_str(&["snapshot", "--plan", &plan, "--ott", &ott, "--t", "150"]).unwrap();
    assert!(!bare.contains("counters"), "{bare}");

    // --profile appends the phase tree and counter table to the ranking.
    let prof = run_str(&["snapshot", "--plan", &plan, "--ott", &ott, "--t", "150", "--profile"])
        .expect("profiled snapshot succeeds");
    assert!(prof.contains("top-10 POIs at t = 150"), "{prof}");
    assert!(prof.contains("snapshot_join"), "{prof}");
    assert!(prof.contains("candidate_retrieval"), "{prof}");
    assert!(prof.contains("presence_evaluations"), "{prof}");

    // --iterative flavours the span names.
    let prof_it = run_str(&[
        "snapshot",
        "--plan",
        &plan,
        "--ott",
        &ott,
        "--t",
        "150",
        "--profile",
        "--iterative",
    ])
    .unwrap();
    assert!(prof_it.contains("snapshot_iterative"), "{prof_it}");

    // --profile-json replaces the human output with one JSON document.
    let json = run_str(&[
        "interval",
        "--plan",
        &plan,
        "--ott",
        &ott,
        "--ts",
        "50",
        "--te",
        "150",
        "--profile-json",
    ])
    .expect("profiled interval succeeds");
    let trimmed = json.trim();
    assert!(trimmed.starts_with('{') && trimmed.ends_with('}'), "{json}");
    assert!(trimmed.contains("\"spans\""), "{json}");
    assert!(trimmed.contains("\"counters\""), "{json}");
    assert!(!trimmed.contains("top-"), "{json}");

    // Timeline profiles group each bucket under the timeline root.
    let tl = run_str(&[
        "timeline",
        "--plan",
        &plan,
        "--ott",
        &ott,
        "--start",
        "0",
        "--end",
        "300",
        "--bucket",
        "150",
        "--profile",
    ])
    .unwrap();
    assert!(tl.contains("timeline") && tl.contains("bucket"), "{tl}");

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn render_writes_svg() {
    let (plan, ott, dir) = generate("render");
    let svg_path = dir.join("plan.svg");
    let out = run_str(&["render", "--plan", &plan, "--out", svg_path.to_str().unwrap()])
        .expect("render succeeds");
    assert!(out.contains("wrote"), "{out}");
    let svg = std::fs::read_to_string(&svg_path).unwrap();
    assert!(svg.starts_with("<svg"));

    // Overlay variant needs all three overlay flags.
    let err =
        run_str(&["render", "--plan", &plan, "--ott", &ott, "--out", svg_path.to_str().unwrap()])
            .unwrap_err();
    assert!(err.0.contains("overlay"), "{err}");

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sanitize_gates_dirty_data_into_degraded_answers() {
    let (plan, _ott, dir) = generate("sanitize");
    // Hand-built dirty OTT: overlapping runs, reversed endpoints, and a
    // reading from a device the plan does not define.
    let dirty = dir.join("dirty.csv");
    std::fs::write(
        &dirty,
        "object,device,ts,te\n\
         0,0,0.0,10.0\n\
         0,0,5.0,15.0\n\
         1,0,20.0,18.0\n\
         2,60000,0.0,1.0\n",
    )
    .unwrap();
    let dirty = dirty.to_str().unwrap().to_string();

    // The strict loader refuses the table outright.
    let err = run_str(&["snapshot", "--plan", &plan, "--ott", &dirty, "--t", "5"]).unwrap_err();
    assert!(err.0.contains("inconsistent OTT"), "{err}");

    // --sanitize repairs what it can and answers in degraded mode.
    let snap = run_str(&["snapshot", "--plan", &plan, "--ott", &dirty, "--t", "5", "--sanitize"])
        .expect("sanitized snapshot succeeds");
    assert!(snap.contains("quality:"), "{snap}");
    assert!(snap.contains("sanitized input"), "{snap}");

    // The standalone gate reports anomalies and writes a clean table.
    let clean = dir.join("clean.csv");
    let report =
        run_str(&["sanitize", "--plan", &plan, "--ott", &dirty, "--out", clean.to_str().unwrap()])
            .expect("sanitize command succeeds");
    assert!(report.contains("sanitize:"), "{report}");
    assert!(report.contains("anomalies"), "{report}");
    let clean = clean.to_str().unwrap().to_string();
    let snap2 = run_str(&["snapshot", "--plan", &plan, "--ott", &clean, "--t", "5"])
        .expect("cleaned table loads strictly");
    assert!(snap2.contains("quality:"), "{snap2}");

    // Unknown policies are refused.
    let e =
        run_str(&["sanitize", "--plan", &plan, "--ott", &dirty, "--policy", "wish"]).unwrap_err();
    assert!(e.0.contains("unknown policy"), "{e}");

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn quarantine_then_readmit_round_trip() {
    let (plan, _ott, dir) = generate("readmit");
    // An overlapping second run: under --policy quarantine it is set
    // aside, and a later readmit pass under the repair policy clamps it
    // back into the table.
    let dirty = dir.join("dirty.csv");
    std::fs::write(&dirty, "object,device,ts,te\n1,0,0.0,10.0\n1,1,5.0,12.0\n").unwrap();
    let dirty = dirty.to_str().unwrap().to_string();
    let clean = dir.join("clean.csv").to_str().unwrap().to_string();
    let quarantine = dir.join("quarantine.csv").to_str().unwrap().to_string();

    let report = run_str(&[
        "sanitize",
        "--plan",
        &plan,
        "--ott",
        &dirty,
        "--policy",
        "quarantine",
        "--out",
        &clean,
        "--quarantine-out",
        &quarantine,
    ])
    .expect("sanitize succeeds");
    assert!(report.contains("quarantined"), "{report}");
    assert!(report.contains("quarantined rows"), "{report}");
    let qtext = std::fs::read_to_string(&quarantine).unwrap();
    assert!(qtext.contains("overlapping_run"), "{qtext}");

    let restored = dir.join("restored.csv").to_str().unwrap().to_string();
    let out = run_str(&[
        "readmit",
        "--plan",
        &plan,
        "--ott",
        &clean,
        "--quarantine",
        &quarantine,
        "--policy",
        "repair",
        "--out",
        &restored,
    ])
    .expect("readmit succeeds");
    assert!(out.contains("readmitted 1 of 1"), "{out}");
    let rows = std::fs::read_to_string(&restored).unwrap();
    assert_eq!(rows.lines().count(), 3, "{rows}"); // header + both rows
    assert!(rows.contains("1,1,10,12"), "{rows}"); // clamped to the prior run's end

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn ingest_recover_and_resume_round_trip() {
    let (_plan, _ott, dir) = generate("ingest");
    let readings = dir.join("readings.csv").to_str().unwrap().to_string();
    let store = dir.join("store").to_str().unwrap().to_string();

    // First run creates the store and drains the whole stream.
    let out = run_str(&[
        "ingest",
        "--store",
        &store,
        "--readings",
        &readings,
        "--snapshot-every",
        "64",
        "--no-sync",
    ])
    .expect("ingest succeeds");
    assert!(out.contains("created fresh store"), "{out}");
    assert!(out.contains("(0 already durable"), "{out}");
    assert!(out.contains("OTT:"), "{out}");

    // A rerun over the same file is a no-op: everything is already durable.
    let again =
        run_str(&["ingest", "--store", &store, "--readings", &readings]).expect("rerun succeeds");
    assert!(again.contains("ingested 0 readings"), "{again}");
    assert!(!again.contains("created fresh store"), "{again}");

    // Tear the WAL tail; recover truncates to the valid prefix and the
    // profile carries the recovery counters.
    let wal = dir.join("store").join("wal.bin");
    let mut bytes = std::fs::read(&wal).unwrap();
    let torn = bytes.len() - 7;
    bytes.truncate(torn);
    std::fs::write(&wal, &bytes).unwrap();
    let recovered_csv = dir.join("recovered.csv").to_str().unwrap().to_string();
    let rec = run_str(&["recover", "--store", &store, "--out", &recovered_csv, "--profile"])
        .expect("recover succeeds");
    assert!(rec.contains("recovered state:"), "{rec}");
    assert!(rec.contains("wrote"), "{rec}");
    assert!(std::path::Path::new(&recovered_csv).exists());

    // Resuming ingestion re-appends exactly what the tear destroyed.
    let resumed =
        run_str(&["ingest", "--store", &store, "--readings", &readings]).expect("resume succeeds");
    assert!(resumed.contains("OTT:"), "{resumed}");
    let final_state = run_str(&["recover", "--store", &store]).expect("final recover succeeds");
    assert!(final_state.contains("recovered state:"), "{final_state}");

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn helpful_errors() {
    assert!(run_str(&[]).unwrap().contains("commands:"));
    assert!(run_str(&["help"]).unwrap().contains("commands:"));
    let e = run_str(&["frobnicate"]).unwrap_err();
    assert!(e.0.contains("unknown command"), "{e}");
    let e = run_str(&["snapshot", "--plan"]).unwrap_err();
    assert!(e.0.contains("needs a value"), "{e}");
    let e = run_str(&["snapshot", "--t", "5"]).unwrap_err();
    assert!(e.0.contains("--plan"), "{e}");
    let e = run_str(&["generate", "martian", "--out-dir", "/tmp/x-inflow-none"]).unwrap_err();
    assert!(e.0.contains("unknown dataset"), "{e}");
    let e = run_str(&["snapshot", "--plan", "/nonexistent-plan", "--ott", "/x", "--t", "1"])
        .unwrap_err();
    assert!(e.0.contains("cannot open plan"), "{e}");
}

#[test]
fn threads_flag_matches_sequential_and_validates() {
    let (plan, ott, dir) = generate("threads");
    let base =
        ["snapshot", "--plan", &plan, "--ott", &ott, "--t", "150", "--k", "5", "--iterative"];
    let seq = run_str(&base).expect("sequential iterative");
    let mut with_threads = base.to_vec();
    with_threads.extend_from_slice(&["--threads", "4"]);
    let par = run_str(&with_threads).expect("threaded iterative");
    assert_eq!(seq, par, "--threads must not change the output");

    let e = run_str(&["snapshot", "--plan", &plan, "--ott", &ott, "--t", "150", "--threads", "4"])
        .unwrap_err();
    assert!(e.0.contains("--threads requires --iterative"), "{e}");
    let e = run_str(&[
        "interval",
        "--plan",
        &plan,
        "--ott",
        &ott,
        "--ts",
        "0",
        "--te",
        "100",
        "--iterative",
        "--threads",
        "0",
    ])
    .unwrap_err();
    assert!(e.0.contains("at least 1"), "{e}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn watch_requires_an_action() {
    // Argument validation happens before any connection is attempted for
    // flags; a bad address must fail cleanly.
    let e = run_str(&["watch", "--addr", "not-an-addr"]).unwrap_err();
    assert!(e.0.contains("addr"), "{e}");
}

#[test]
fn serve_validates_flags_before_binding() {
    let (plan, _, dir) = generate("servevalidate");
    let store = dir.join("store");
    let e =
        run_str(&["serve", "--plan", &plan, "--store", store.to_str().unwrap(), "--shards", "0"])
            .unwrap_err();
    assert!(e.0.contains("at least 1"), "{e}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn query_distrib_and_longvisit_verbs() {
    let (plan, ott, dir) = generate("probverbs");

    let out = run_str(&[
        "query", "distrib", "--plan", &plan, "--ott", &ott, "--t", "150", "--kq", "2", "--kmax",
        "16", "--k", "3",
    ])
    .expect("query distrib succeeds");
    assert!(out.contains("top-3 POIs by P(count >= 2) at t = 150"), "{out}");
    assert!(out.contains("E[count]"), "{out}");

    let over = run_str(&[
        "query", "distrib", "--plan", &plan, "--ott", &ott, "--ts", "50", "--te", "150", "--kq",
        "1", "--k", "3",
    ])
    .expect("interval-form distrib succeeds");
    assert!(over.contains("P(count >= 1) over [50, 150]"), "{over}");

    let lv = run_str(&[
        "query",
        "longvisit",
        "--plan",
        &plan,
        "--ott",
        &ott,
        "--ts",
        "50",
        "--te",
        "250",
        "--min-dwell",
        "10",
        "--k",
        "3",
    ])
    .expect("query longvisit succeeds");
    assert!(lv.contains("top-3 POIs by objects dwelling >= 10 over [50, 250]"), "{lv}");
    // The value column is a head count: every printed value is integral.
    for line in lv.lines().skip(2).take(3) {
        let value: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
        assert_eq!(value.fract(), 0.0, "non-integral head count in {line}");
    }

    let e =
        run_str(&["query", "distrib", "--plan", &plan, "--ott", &ott, "--t", "150", "--kq", "0"])
            .unwrap_err();
    assert!(e.0.contains("--kq"), "{e}");
    let e = run_str(&["query", "psychic", "--plan", &plan, "--ott", &ott]).unwrap_err();
    assert!(e.0.contains("unknown query family"), "{e}");
    let e = run_str(&[
        "query",
        "longvisit",
        "--plan",
        &plan,
        "--ott",
        &ott,
        "--ts",
        "0",
        "--te",
        "100",
    ])
    .unwrap_err();
    assert!(e.0.contains("min-dwell") || e.0.contains("--d"), "{e}");

    let _ = std::fs::remove_dir_all(dir);
}
