//! Cross-layer invariants of the observability stack: the join algorithms
//! never do more presence work than the iterative ones, profiles mirror
//! the `QueryStats` the algorithms always report, span trees are
//! well-nested, and a disabled recorder leaves no trace in the result.

use inflow::core::{FlowAnalytics, IntervalQuery, JoinConfig, SnapshotQuery};
use inflow::geometry::{Point, Polygon};
use inflow::indoor::{CellKind, FloorPlanBuilder, PoiId};
use inflow::obs::ProfileSpan;
use inflow::tracking::{ObjectId, ObjectTrackingTable, OttRow};
use inflow::uncertainty::{IndoorContext, UrConfig};
use std::sync::Arc;

/// A 100×100 hall, a 4×4 grid of device+POI pairs, and a skewed object
/// population: most objects sit at one hot device, a few wander the rest
/// with multiple readings each (so interval URs have several segments).
fn world() -> (FlowAnalytics, Vec<PoiId>) {
    let mut b = FloorPlanBuilder::new();
    b.add_cell(
        "hall",
        CellKind::Hallway,
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
    );
    let mut devices = Vec::new();
    let mut pois = Vec::new();
    for j in 0..4 {
        for i in 0..4 {
            let cx = 12.0 + i as f64 * 25.0;
            let cy = 12.0 + j as f64 * 25.0;
            devices.push(b.add_device(format!("dev-{i}-{j}"), Point::new(cx, cy), 2.0));
            pois.push(b.add_poi(
                format!("poi-{i}-{j}"),
                Polygon::rectangle(Point::new(cx - 6.0, cy - 6.0), Point::new(cx + 6.0, cy + 6.0)),
            ));
        }
    }
    let mut rows = Vec::new();
    let mut next = 0u32;
    // 12 objects parked at the hot device for the whole window.
    for _ in 0..12 {
        rows.push(OttRow { object: ObjectId(next), device: devices[5], ts: 0.0, te: 200.0 });
        next += 1;
    }
    // 6 objects that hop between two devices (two readings each).
    for o in 0..6 {
        let a = devices[o % devices.len()];
        let b2 = devices[(o * 3 + 7) % devices.len()];
        rows.push(OttRow { object: ObjectId(next), device: a, ts: 0.0, te: 60.0 });
        rows.push(OttRow { object: ObjectId(next), device: b2, ts: 120.0, te: 200.0 });
        next += 1;
    }
    let ott = ObjectTrackingTable::from_rows(rows).unwrap();
    let ctx = Arc::new(IndoorContext::new(b.build().unwrap()));
    let fa = FlowAnalytics::new(ctx, ott, UrConfig { vmax: 1.2, ..UrConfig::default() });
    (fa, pois)
}

fn assert_well_nested(span: &ProfileSpan) {
    assert!(
        span.child_duration_ns() <= span.duration_ns,
        "span '{}' children sum {} ns > own {} ns",
        span.name,
        span.child_duration_ns(),
        span.duration_ns
    );
    for child in &span.children {
        assert_well_nested(child);
    }
}

#[test]
fn join_never_integrates_more_than_iterative() {
    let (fa, pois) = world();
    let sq = SnapshotQuery::new(100.0, pois.clone(), 2);
    let s_it = fa.snapshot_topk_iterative(&sq);
    let s_jn = fa.snapshot_topk_join(&sq);
    assert!(
        s_jn.stats.presence_evaluations <= s_it.stats.presence_evaluations,
        "snapshot join {} > iterative {}",
        s_jn.stats.presence_evaluations,
        s_it.stats.presence_evaluations
    );

    let iq = IntervalQuery::new(20.0, 180.0, pois, 2);
    let i_it = fa.interval_topk_iterative(&iq);
    let i_jn = fa.interval_topk_join(&iq);
    assert!(
        i_jn.stats.presence_evaluations <= i_it.stats.presence_evaluations,
        "interval join {} > iterative {}",
        i_jn.stats.presence_evaluations,
        i_it.stats.presence_evaluations
    );
}

#[test]
fn disabled_recorder_attaches_no_profile() {
    let (fa, pois) = world();
    assert!(!fa.profiling());
    let result = fa.snapshot_topk_join(&SnapshotQuery::new(100.0, pois.clone(), 3));
    assert!(result.profile.is_none());
    // Stats still flow without the recorder.
    assert!(result.stats.objects_considered > 0);
    let tl = inflow::core::flow_timeline(&fa, &pois, 0.0, 200.0, 100.0);
    assert!(tl.profile.is_none());
}

#[test]
fn profiled_snapshot_join_has_nested_spans_and_matching_counters() {
    let (fa, pois) = world();
    let fa = fa.with_profiling(true);
    let q = SnapshotQuery::new(100.0, pois, 3);
    let result = fa.snapshot_topk_join(&q);
    let profile = result.profile.as_ref().expect("profiling enabled");

    // One root span per query, with the expected phase children.
    assert_eq!(profile.roots.len(), 1);
    let root = &profile.roots[0];
    assert_eq!(root.name, "snapshot_join");
    for phase in ["candidate_retrieval", "build_ri", "build_poi_rtree", "join_descent", "rank"] {
        assert!(root.find(phase).is_some(), "missing phase '{phase}'\n{}", profile.render());
    }
    assert_well_nested(root);

    // Counters mirror the stats the algorithm reports unconditionally.
    let s = &result.stats;
    assert_eq!(profile.counter("objects_considered"), s.objects_considered as u64);
    assert_eq!(profile.counter("urs_built"), s.urs_built as u64);
    assert_eq!(profile.counter("presence_evaluations"), s.presence_evaluations as u64);
    assert_eq!(profile.counter("mbr_rejects"), s.mbr_rejects as u64);
    assert_eq!(profile.counter("rtree_nodes_visited"), s.rtree_nodes_visited as u64);
    assert_eq!(profile.counter("exact_flows_resolved"), s.exact_flows_resolved as u64);
    assert_eq!(profile.counter("pois_pruned"), s.pois_pruned as u64);
    assert!(profile.counter("rtree_nodes_visited") > 0);
    // Every presence integration reads the area grid at least once.
    assert!(s.presence_evaluations == 0 || profile.counter("grid_probes") > 0);
    // Queue traffic is conserved: nothing pops that wasn't pushed.
    assert!(profile.counter("queue_pops") <= profile.counter("queue_pushes"));

    // The presence timer saw exactly the counted integrations.
    let presence = profile.timers.iter().find(|t| t.name == "presence");
    if s.presence_evaluations > 0 {
        assert_eq!(presence.expect("presence timer").count, s.presence_evaluations as u64);
    }
}

#[test]
fn profiled_interval_algorithms_cover_both_flavours() {
    let (fa, pois) = world();
    let fa = fa.with_profiling(true);
    let q = IntervalQuery::new(20.0, 180.0, pois, 3);

    let jn = fa.interval_topk_join(&q);
    let jp = jn.profile.as_ref().expect("profiling enabled");
    assert_eq!(jp.roots[0].name, "interval_join");
    assert!(jp.span("derive_urs").is_some());
    assert_well_nested(&jp.roots[0]);
    // UR derivation is timed in the interval join.
    assert!(jp.timers.iter().any(|t| t.name == "ur_derive" && t.count > 0), "{:?}", jp.timers);

    let it = fa.interval_topk_iterative(&q);
    let ip = it.profile.as_ref().expect("profiling enabled");
    assert_eq!(ip.roots[0].name, "interval_iterative");
    assert_well_nested(&ip.roots[0]);
    assert_eq!(ip.counter("presence_evaluations"), it.stats.presence_evaluations as u64);

    // Same flows from both algorithms, profiled or not.
    for (a, b) in jn.ranked.iter().zip(&it.ranked) {
        assert_eq!(a.0, b.0);
        assert!((a.1 - b.1).abs() < 1e-9);
    }
}

#[test]
fn timeline_profile_groups_buckets_under_one_root() {
    let (fa, pois) = world();
    let fa = fa.with_profiling(true);
    let tl = inflow::core::flow_timeline(&fa, &pois, 0.0, 200.0, 50.0);
    let profile = tl.profile.as_ref().expect("profiling enabled");
    assert_eq!(profile.roots.len(), 1);
    let root = &profile.roots[0];
    assert_eq!(root.name, "timeline");
    let bucket_spans = root.children.iter().filter(|c| c.name == "bucket").count();
    assert_eq!(bucket_spans, tl.buckets.len());
    assert_well_nested(root);
    // The summed stats drive the profile counters.
    assert_eq!(profile.counter("presence_evaluations"), tl.stats.presence_evaluations as u64);
}

#[test]
fn snapshot_join_config_changes_work_not_answers() {
    let (fa, pois) = world();
    let q = SnapshotQuery::new(100.0, pois.clone(), pois.len());
    let on = inflow::core::join::snapshot(&fa, &q, &JoinConfig { use_segment_mbrs: true });
    let off = inflow::core::join::snapshot(&fa, &q, &JoinConfig { use_segment_mbrs: false });

    // Identical rankings and flows: the refinement only skips pairings
    // whose presence would integrate to zero anyway.
    assert_eq!(on.poi_ids(), off.poi_ids());
    for (a, b) in on.ranked.iter().zip(&off.ranked) {
        assert!((a.1 - b.1).abs() < 1e-9, "{a:?} vs {b:?}");
    }
    // The refined variant never does more integration work, and each
    // small-MBR veto is work the coarse variant would have attempted.
    let work = |r: &inflow::core::QueryResult| r.stats.presence_evaluations + r.stats.mbr_rejects;
    assert!(
        work(&on) <= work(&off),
        "refined variant did more work: {} vs {}",
        work(&on),
        work(&off)
    );
    assert_eq!(off.stats.small_mbr_rejects, 0, "coarse variant must not fine-check");
}
