//! End-to-end tests for deterministic record/replay.
//!
//! The load-bearing claim: a recorded chaos run — shard crashes, torn
//! WAL writes, connection drops and all — replays bit-for-bit. Every
//! barrier's state digest (per-shard tracker hashes + engine hash) must
//! match the recording, and any single-byte mutation of the inputs must
//! surface as a typed divergence that `bisect` can localize.

use inflow::geometry::GridResolution;
use inflow::replay::{
    bisect, record_run, replay, FaultEvent, FaultKind, FaultPlan, Op, RecordOptions, ReplayLog,
};
use inflow::service::{ServeConfig, Server, ServerHandle, SubKind, SubSpec};
use inflow::tracking::store::frame::FrameReader;
use inflow::tracking::{RawReading, StoreError};
use inflow::uncertainty::UrConfig;
use inflow::workload::{generate_synthetic, SyntheticConfig, Workload};
use std::path::PathBuf;
use std::sync::Arc;

/// Small enough that a handful of full replays stays fast in debug
/// builds, busy enough that every shard sees traffic between barriers.
fn small_workload() -> Workload {
    generate_synthetic(&SyntheticConfig {
        rooms_x: 2,
        rooms_y: 2,
        num_objects: 8,
        duration: 180.0,
        num_pois: 6,
        ..SyntheticConfig::default()
    })
}

fn readings_of(w: &Workload) -> Vec<RawReading> {
    let mut out = Vec::with_capacity(w.ott.len() * 2);
    for r in w.ott.records() {
        out.push(RawReading { object: r.object, device: r.device, t: r.ts });
        if r.te > r.ts {
            out.push(RawReading { object: r.object, device: r.device, t: r.te });
        }
    }
    out.sort_by(|a, b| {
        a.t.total_cmp(&b.t)
            .then_with(|| a.object.cmp(&b.object))
            .then_with(|| a.device.0.cmp(&b.device.0))
    });
    out
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("inflow-replay-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn config(w: &Workload, dir: PathBuf) -> ServeConfig {
    ServeConfig {
        shards: 2,
        max_gap: 60.0,
        ur: UrConfig { vmax: w.vmax, resolution: GridResolution::COARSE, ..UrConfig::default() },
        ..ServeConfig::new(dir)
    }
}

fn start(w: &Workload, dir: PathBuf) -> ServerHandle {
    Server::start(Arc::clone(&w.ctx), config(w, dir)).expect("server start")
}

/// A factory handing each probe a pristine store under `base`.
fn factory<'a>(
    w: &'a Workload,
    base: &'a std::path::Path,
    counter: &'a mut u32,
) -> impl FnMut() -> std::io::Result<(ServerHandle, PathBuf)> + 'a {
    move || {
        *counter += 1;
        let dir = base.join(format!("probe-{counter}"));
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        std::fs::create_dir_all(&dir)?;
        Server::start(Arc::clone(&w.ctx), config(w, dir.clone())).map(|h| (h, dir))
    }
}

fn interval_spec() -> SubSpec {
    SubSpec { kind: SubKind::Interval { ts: 0.0, te: 180.0 }, k: 6, epsilon: 0.0, pois: Vec::new() }
}

/// The chaos schedule under test: every fault class at fixed op-stream
/// positions (crash/restart pair, a torn WAL write, a connection drop).
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        seed: 0,
        events: vec![
            FaultEvent { at_op: 2, kind: FaultKind::CrashShard(0) },
            FaultEvent { at_op: 4, kind: FaultKind::RestartShard(0) },
            FaultEvent { at_op: 7, kind: FaultKind::TornWal(1) },
            FaultEvent { at_op: 10, kind: FaultKind::Disconnect },
        ],
    }
}

fn record_chaos_log(name: &str) -> (Workload, ReplayLog) {
    let w = small_workload();
    let readings = readings_of(&w);
    let dir = temp_dir(name);
    let handle = start(&w, dir.clone());
    let opts = RecordOptions {
        chunk: 8,
        barrier_every: 2,
        subs: vec![interval_spec()],
        plan: chaos_plan(),
    };
    let log = record_run(&handle, dir, &readings, &opts).expect("record");
    handle.shutdown();
    handle.wait();
    (w, log)
}

/// A chaos run must replay bit-for-bit: two independent replays from
/// fresh stores both verify every recorded barrier digest, and the
/// digests they produce are identical to each other.
#[test]
fn chaos_run_replays_deterministically() {
    let (w, log) = record_chaos_log("determinism");
    assert!(log.barriers() >= 3, "want several verification points, got {}", log.barriers());
    assert!(
        log.ops.iter().any(|op| matches!(op, Op::Fault(_))),
        "the recorded log must carry the fault schedule"
    );

    // The log itself round-trips through its wire format.
    let log = ReplayLog::parse(&log.to_bytes()).expect("round-trip");

    let base = temp_dir("determinism-probes");
    let mut n = 0u32;
    let first = replay(&log, factory(&w, &base, &mut n)).expect("first replay");
    assert!(first.divergence.is_none(), "first replay diverged: {:?}", first.divergence);
    assert_eq!(first.barriers_checked, log.barriers());

    let mut m = 100u32;
    let second = replay(&log, factory(&w, &base, &mut m)).expect("second replay");
    assert!(second.divergence.is_none(), "second replay diverged: {:?}", second.divergence);
    assert_eq!(first.hashes, second.hashes, "replays must agree with each other");
}

/// Flipping a single byte anywhere in a frame body must be rejected by
/// the CRC check — with the offset of the containing frame, not a
/// generic parse error.
#[test]
fn corrupted_byte_is_rejected_with_frame_offset() {
    let (_w, log) = record_chaos_log("corrupt");
    let mut bytes = log.to_bytes();

    // Corrupt one byte inside the last frame's payload.
    let target = bytes.len() - 10;
    bytes[target] ^= 0x01;

    // The expected offset: the start of the frame containing `target`,
    // found by walking the *uncorrupted* frame stream.
    let clean = log.to_bytes();
    let expected_offset = FrameReader::new(&clean, 8)
        .map(|f| f.expect("clean log frames").offset as u64)
        .filter(|&off| off <= target as u64)
        .last()
        .expect("target lies within some frame");

    match ReplayLog::parse(&bytes) {
        Err(StoreError::Frame { offset, .. }) => {
            assert_eq!(offset as u64, expected_offset, "CRC failure must name the torn frame");
        }
        other => panic!("corrupted log must fail the CRC check, got {other:?}"),
    }
}

/// Mutating one recorded reading must (a) replay as a divergence at the
/// first barrier after the mutation, and (b) bisect down to the minimal
/// diverging prefix, with the prefix one barrier shorter replaying
/// clean.
#[test]
fn mutated_reading_diverges_and_bisects_to_minimal_prefix() {
    let (w, log) = record_chaos_log("bisect");

    // Mutate the first publish *after* the first barrier, so barrier 1
    // still verifies and the divergence lands at barrier 2.
    let mut mutated = log.clone();
    let first_barrier =
        mutated.ops.iter().position(|op| matches!(op, Op::Barrier(_))).expect("log has barriers");
    let victim = mutated.ops[first_barrier..]
        .iter()
        .position(|op| matches!(op, Op::Publish(_)))
        .map(|i| first_barrier + i)
        .expect("a publish follows the first barrier");
    let Op::Publish(readings) = &mut mutated.ops[victim] else { unreachable!() };
    readings[0].t += 0.5;

    let base = temp_dir("bisect-probes");
    let mut n = 0u32;
    let report = replay(&mutated, factory(&w, &base, &mut n)).expect("replay");
    let div = report.divergence.expect("mutated log must diverge");
    assert_eq!(div.barrier_index, 2, "divergence must land at the barrier after the mutation");
    assert!(
        div.engine_mismatch || !div.mismatched_shards.is_empty(),
        "the report must localize the mismatch: {div:?}"
    );

    let mut m = 100u32;
    let found = bisect(&mutated, factory(&w, &base, &mut m))
        .expect("bisect")
        .expect("bisect must confirm the divergence");
    assert_eq!(found.first_diverging_barrier, 2);
    assert_eq!(found.prior_prefix_clean, Some(true), "the shorter prefix must replay clean");
    assert_eq!(found.minimal.barriers(), 2, "minimal prefix ends at the first diverging barrier");
    assert!(found.minimal.ops.len() < mutated.ops.len(), "bisect must actually shrink the log");
    assert!(
        matches!(found.minimal.ops.last(), Some(Op::Barrier(_))),
        "minimal prefix must end on its verification point"
    );
}
