//! Property-based tests (proptest) on the core data structures and
//! geometric invariants.
//!
//! Gated behind the off-by-default `proptest` feature: the external
//! `proptest` crate cannot be fetched in offline environments. To run,
//! re-add `proptest = "1"` under `[dev-dependencies]` on a networked
//! machine and `cargo test --features proptest`.
#![cfg(feature = "proptest")]

use inflow::geometry::{
    area_in_polygon, circle_polygon_area, Circle, ExtendedEllipse, GridResolution, Mbr, Point,
    Polygon, Ring,
};
use inflow::indoor::DeviceId;
use inflow::rtree::RTree;
use inflow::tracking::{ObjectId, ObjectTrackingTable, OttRow};
use proptest::prelude::*;

fn arb_point(range: f64) -> impl Strategy<Value = Point> {
    (-range..range, -range..range).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Mbr> {
    (arb_point(50.0), 0.1f64..20.0, 0.1f64..20.0)
        .prop_map(|(p, w, h)| Mbr::new(p, Point::new(p.x + w, p.y + h)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The adaptive-grid integrator agrees with the exact circle–polygon
    /// area within 2%.
    #[test]
    fn grid_area_matches_exact_circle_polygon(
        cx in -5.0f64..5.0,
        cy in -5.0f64..5.0,
        r in 0.3f64..4.0,
        x0 in -6.0f64..0.0,
        y0 in -6.0f64..0.0,
        w in 1.0f64..8.0,
        h in 1.0f64..8.0,
    ) {
        let circle = Circle::new(Point::new(cx, cy), r);
        let poly = Polygon::rectangle(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
        let exact = circle_polygon_area(&circle, &poly);
        let approx = area_in_polygon(&circle, &poly, GridResolution::DEFAULT);
        let tol = (0.02 * exact).max(0.02);
        prop_assert!((approx - exact).abs() <= tol,
            "approx {approx} vs exact {exact}");
    }

    /// MBR operations are consistent: union contains both, intersection is
    /// contained in both.
    #[test]
    fn mbr_union_intersection_laws(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_mbr(&a) && u.contains_mbr(&b));
        let i = a.intersection(&b);
        if !i.is_empty() {
            prop_assert!(a.contains_mbr(&i) && b.contains_mbr(&i));
            prop_assert!(a.intersects(&b));
        }
        // Monotonicity: the bounding union is at least as large as either
        // input; the intersection at most as large.
        prop_assert!(u.area() >= a.area().max(b.area()) - 1e-9);
        prop_assert!(i.area() <= a.area().min(b.area()) + 1e-9);
    }

    /// R-tree intersection queries agree with a brute-force scan.
    #[test]
    fn rtree_matches_brute_force(
        rects in prop::collection::vec(arb_rect(), 1..200),
        query in arb_rect(),
    ) {
        let tree = RTree::bulk_load(
            rects.iter().copied().enumerate().map(|(i, m)| (m, i)).collect());
        let mut got: Vec<usize> = tree.query_intersecting(&query).into_iter().copied().collect();
        got.sort_unstable();
        let mut want: Vec<usize> = rects.iter().enumerate()
            .filter(|(_, r)| r.intersects(&query)).map(|(i, _)| i).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Inserting one-by-one and bulk loading answer queries identically.
    #[test]
    fn rtree_insert_and_bulk_agree(
        rects in prop::collection::vec(arb_rect(), 1..120),
        query in arb_rect(),
    ) {
        let bulk = RTree::bulk_load(
            rects.iter().copied().enumerate().map(|(i, m)| (m, i)).collect());
        let mut incremental = RTree::new();
        for (i, &m) in rects.iter().enumerate() {
            incremental.insert(m, i);
        }
        let mut a: Vec<usize> = bulk.query_intersecting(&query).into_iter().copied().collect();
        let mut b: Vec<usize> = incremental.query_intersecting(&query).into_iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Every point a ring or ellipse admits lies inside its reported MBR.
    #[test]
    fn region_mbr_contains_members(
        c1 in arb_point(10.0),
        c2 in arb_point(10.0),
        r1 in 0.2f64..2.0,
        r2 in 0.2f64..2.0,
        budget in 0.0f64..30.0,
        probe in arb_point(40.0),
    ) {
        let ring = Ring::new(Circle::new(c1, r1), budget);
        if ring.contains(probe) {
            prop_assert!(ring.mbr().contains(probe));
        }
        let theta = ExtendedEllipse::new(Circle::new(c1, r1), Circle::new(c2, r2), budget);
        if !theta.is_empty() && theta.contains(probe) {
            prop_assert!(theta.mbr().contains(probe));
        }
    }

    /// The extended ellipse is monotone in its budget.
    #[test]
    fn theta_monotone_in_budget(
        c1 in arb_point(10.0),
        c2 in arb_point(10.0),
        budget in 0.0f64..20.0,
        extra in 0.0f64..10.0,
        probe in arb_point(30.0),
    ) {
        let small = ExtendedEllipse::new(Circle::new(c1, 0.5), Circle::new(c2, 0.5), budget);
        let large = ExtendedEllipse::new(Circle::new(c1, 0.5), Circle::new(c2, 0.5), budget + extra);
        if small.contains(probe) {
            prop_assert!(large.contains(probe));
        }
    }

    /// Polygon clipping against a convex window never increases area and
    /// the clipped area matches the grid integrator.
    #[test]
    fn polygon_clip_area_is_consistent(
        x0 in -10.0f64..0.0, y0 in -10.0f64..0.0,
        w in 2.0f64..15.0, h in 2.0f64..15.0,
        cx0 in -8.0f64..2.0, cy0 in -8.0f64..2.0,
        cw in 2.0f64..12.0, ch in 2.0f64..12.0,
    ) {
        let subject = Polygon::rectangle(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
        let clip = Polygon::rectangle(Point::new(cx0, cy0), Point::new(cx0 + cw, cy0 + ch));
        let clipped_area = subject.intersection_area_convex(&clip);
        prop_assert!(clipped_area <= subject.area() + 1e-9);
        prop_assert!(clipped_area <= clip.area() + 1e-9);
        // Rect ∩ rect has an exact answer via MBRs.
        let exact = subject.mbr().intersection(&clip.mbr()).area();
        prop_assert!((clipped_area - exact).abs() < 1e-6,
            "clip {clipped_area} vs exact {exact}");
    }

    /// AR-tree point queries agree with the OTT state machine on random
    /// record chains.
    #[test]
    fn artree_agrees_with_state_machine(
        seed_rows in prop::collection::vec((0u32..8, 0u32..5, 0.0f64..100.0, 0.1f64..5.0), 1..60),
        probes in prop::collection::vec(0.0f64..120.0, 1..30),
    ) {
        // Make per-object rows disjoint by sorting and pushing starts.
        let mut per_obj: std::collections::HashMap<u32, f64> = Default::default();
        let mut rows = Vec::new();
        let mut sorted = seed_rows.clone();
        sorted.sort_by(|a, b| (a.0, a.2).partial_cmp(&(b.0, b.2)).unwrap());
        for (o, d, ts, dur) in sorted {
            let start = per_obj.get(&o).copied().unwrap_or(f64::NEG_INFINITY).max(ts);
            let end = start + dur;
            rows.push(OttRow {
                object: ObjectId(o),
                device: DeviceId(d),
                ts: start,
                te: end,
            });
            per_obj.insert(o, end + 0.001);
        }
        let ott = ObjectTrackingTable::from_rows(rows).unwrap();
        let tree = inflow::tracking::ArTree::build(&ott);
        for &t in &probes {
            let hits = tree.point_query(t);
            for o in 0..8u32 {
                let via_tree = hits.iter().find(|e| e.object == ObjectId(o))
                    .and_then(|e| inflow::tracking::ArTree::resolve_state(&ott, e, t));
                prop_assert_eq!(via_tree, ott.state_at(ObjectId(o), t));
            }
        }
    }

    /// Merging raw readings never loses detections: every reading's
    /// timestamp is covered by a record of the same object and device.
    #[test]
    fn merge_covers_all_readings(
        readings in prop::collection::vec((0u32..4, 0u32..4, 0.0f64..50.0), 1..80),
    ) {
        use inflow::tracking::{merge_raw_readings, RawReading};
        let raw: Vec<RawReading> = readings.iter().map(|&(o, d, t)| RawReading {
            object: ObjectId(o),
            device: DeviceId(d),
            t,
        }).collect();
        let rows = merge_raw_readings(raw.clone(), 1.0);
        for r in &raw {
            prop_assert!(rows.iter().any(|row| row.object == r.object
                && row.device == r.device
                && row.ts <= r.t && r.t <= row.te),
                "reading at {} lost", r.t);
        }
    }
}
