//! Integration tests of the tiered immutable segment store on a real
//! filesystem: cold-start reopen, scrub → quarantine → repair round
//! trips, quarantine-degraded store-backed queries, and the `fsck` /
//! `scrub` CLI commands.

use inflow::cli::run_str;
use inflow::tracking::store::segment::SEGMENT_SUFFIX;
use inflow::tracking::{
    write_table_csv, IngestStore, OnlineTracker, RawReading, StdFs, StoreOptions,
};
use inflow::workload::{generate_synthetic, rows_of, SyntheticConfig, Workload};
use std::path::{Path, PathBuf};

const MAX_GAP: f64 = 5.0;

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("inflow-segments-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn workload() -> Workload {
    generate_synthetic(&SyntheticConfig {
        num_objects: 8,
        duration: 120.0,
        ..SyntheticConfig::tiny()
    })
}

fn derive_readings(w: &Workload) -> Vec<RawReading> {
    let mut out = Vec::new();
    for row in rows_of(&w.ott) {
        out.push(RawReading { object: row.object, device: row.device, t: row.ts });
        if row.te > row.ts {
            out.push(RawReading { object: row.object, device: row.device, t: row.te });
        }
    }
    out.sort_by(|a, b| {
        a.t.total_cmp(&b.t)
            .then_with(|| a.object.cmp(&b.object))
            .then_with(|| a.device.0.cmp(&b.device.0))
    });
    out
}

fn tier_opts() -> StoreOptions {
    StoreOptions {
        snapshot_every: Some(16),
        sync_each_reading: false,
        compact_every: Some(8),
        merge_factor: 2,
        scrub_every: Some(32),
        scrub_budget: 2,
        ..StoreOptions::default()
    }
}

/// Builds a tiered store in `dir` from the standard workload; returns
/// the assembled-history CSV (the reference every variant must match).
fn build_store(dir: &Path) -> String {
    let (mut store, report) =
        IngestStore::open(StdFs, dir, OnlineTracker::new(MAX_GAP), tier_opts()).unwrap();
    assert!(report.created);
    for r in derive_readings(&workload()) {
        store.ingest(r).unwrap();
    }
    let view = store.assemble_history().unwrap();
    assert_eq!(view.quarantined_rows, 0);
    assert!(view.sealed_rows >= 16, "workload must seal segments, got {}", view.sealed_rows);
    let mut csv = Vec::new();
    write_table_csv(&mut csv, &view.ott).unwrap();
    // Clean close still keeps segments + manifest on disk.
    store.snapshot().unwrap();
    String::from_utf8(csv).unwrap()
}

fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_str().is_some_and(|s| s.ends_with(SEGMENT_SUFFIX)))
        .collect();
    segs.sort();
    segs
}

fn history_csv(store: &mut IngestStore<StdFs>) -> String {
    let view = store.assemble_history().unwrap();
    let mut csv = Vec::new();
    write_table_csv(&mut csv, &view.ott).unwrap();
    String::from_utf8(csv).unwrap()
}

#[test]
fn cold_start_reopens_segments_and_serves_identical_history() {
    let dir = temp_dir("coldstart");
    let reference = build_store(&dir);
    assert!(!segment_files(&dir).is_empty());

    let (mut store, report) =
        IngestStore::open(StdFs, &dir, OnlineTracker::new(MAX_GAP), tier_opts()).unwrap();
    assert!(!report.created);
    assert!(report.segments >= 2, "manifest reloaded with {} segments", report.segments);
    assert_eq!(report.segments_dropped, 0);
    assert!(!report.manifest_rejected);
    assert_eq!(report.orphan_segments_removed, 0);
    assert_eq!(history_csv(&mut store), reference);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn scrub_quarantines_and_repair_restores_byte_identical_segments() {
    let dir = temp_dir("repair");
    let reference = build_store(&dir);
    let victim = segment_files(&dir).into_iter().next().unwrap();
    let pristine = std::fs::read(&victim).unwrap();
    let mut damaged = pristine.clone();
    damaged[pristine.len() / 2] ^= 0x40;
    std::fs::write(&victim, &damaged).unwrap();

    let (mut store, _) = IngestStore::open(
        StdFs,
        &dir,
        OnlineTracker::new(MAX_GAP),
        StoreOptions { scrub_budget: usize::MAX, ..tier_opts() },
    )
    .unwrap();
    let scrub = store.scrub_pass().unwrap();
    assert!(scrub.complete);
    assert_eq!(scrub.quarantined_new, 1, "exactly the damaged segment quarantines");
    assert_eq!(scrub.faults.len(), 1);

    // Degraded, not wrong: the assembled view excludes the quarantined
    // rows and says so.
    let view = store.assemble_history().unwrap();
    assert!(view.quarantined_rows > 0);
    assert_eq!(view.quarantined_segments, 1);

    // Repair re-seals from the recovered log, byte-identical.
    let (repaired, unrepairable) = store.repair_segments().unwrap();
    assert_eq!((repaired, unrepairable), (1, 0));
    assert_eq!(std::fs::read(&victim).unwrap(), pristine);
    assert_eq!(store.manifest().quarantined_segments(), 0);
    assert_eq!(history_csv(&mut store), reference);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn read_time_verification_quarantines_on_the_spot() {
    let dir = temp_dir("readtime");
    let reference = build_store(&dir);
    let victim = segment_files(&dir).into_iter().last().unwrap();
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();

    // No scrub pass — the first assembled read finds the damage itself.
    let (mut store, _) =
        IngestStore::open(StdFs, &dir, OnlineTracker::new(MAX_GAP), tier_opts()).unwrap();
    let view = store.assemble_history().unwrap();
    assert_eq!(view.quarantined_segments, 1);
    assert!(view.quarantined_rows > 0);
    let degraded = {
        let mut csv = Vec::new();
        write_table_csv(&mut csv, &view.ott).unwrap();
        String::from_utf8(csv).unwrap()
    };
    assert!(
        degraded.lines().count() < reference.lines().count(),
        "degraded answer holds strictly fewer rows"
    );
    // The quarantine is durable: a reopen still sees it.
    drop(store);
    let (store2, _) =
        IngestStore::open(StdFs, &dir, OnlineTracker::new(MAX_GAP), tier_opts()).unwrap();
    assert_eq!(store2.manifest().quarantined_segments(), 1);
    let _ = std::fs::remove_dir_all(dir);
}

/// Generates a CLI dataset and ingests its readings into a tiered store,
/// returning (plan path, store dir, dataset dir).
fn cli_store(name: &str) -> (String, String, PathBuf) {
    let dir = temp_dir(name);
    run_str(&[
        "generate",
        "synthetic",
        "--out-dir",
        dir.to_str().unwrap(),
        "--objects",
        "25",
        "--duration",
        "300",
    ])
    .expect("generate succeeds");
    let store = dir.join("store");
    let out = run_str(&[
        "ingest",
        "--store",
        store.to_str().unwrap(),
        "--readings",
        dir.join("readings.csv").to_str().unwrap(),
        "--compact-every",
        "64",
        "--scrub-every",
        "128",
        "--no-sync",
    ])
    .expect("ingest succeeds");
    assert!(out.contains("ingested"), "{out}");
    assert!(!segment_files(&store).is_empty(), "tiered ingest seals segments on disk: {out}");
    (dir.join("plan.txt").to_str().unwrap().to_string(), store.to_str().unwrap().to_string(), dir)
}

#[test]
fn fsck_cli_detects_damage_and_repairs_it() {
    let (_plan, store, dir) = cli_store("fsck");
    let clean = run_str(&["fsck", "--store", &store]).expect("clean store passes fsck");
    assert!(clean.contains("store is healthy"), "{clean}");

    let victim = segment_files(Path::new(&store)).into_iter().next().unwrap();
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] = bytes[mid].wrapping_add(1);
    std::fs::write(&victim, &bytes).unwrap();

    let err = run_str(&["fsck", "--store", &store]).expect_err("damaged store fails fsck");
    assert!(err.to_string().contains("DAMAGED"), "{err}");

    let repaired = run_str(&["fsck", "--store", &store, "--repair", "--max-gap", "60"])
        .expect("repair brings the store back");
    assert!(repaired.contains("repaired 1 segment(s)"), "{repaired}");
    assert!(repaired.contains("store is healthy"), "{repaired}");

    let again = run_str(&["fsck", "--store", &store]).expect("store healthy after repair");
    assert!(again.contains("store is healthy"), "{again}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn store_backed_queries_answer_degraded_over_quarantine() {
    let (plan, store, dir) = cli_store("degraded");

    // Healthy store: snapshot answers straight from the tier, clean.
    let clean = run_str(&["snapshot", "--plan", &plan, "--store", &store, "--t", "150"])
        .expect("store-backed snapshot succeeds");
    assert!(clean.contains("quality: clean"), "{clean}");

    // Corrupt one segment; scrub quarantines it (non-zero exit because
    // damage remains), and the same query still answers — degraded.
    let victim = segment_files(Path::new(&store)).into_iter().next().unwrap();
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[10] ^= 0x20;
    std::fs::write(&victim, &bytes).unwrap();
    let err = run_str(&["scrub", "--store", &store, "--max-gap", "60"])
        .expect_err("scrub exits non-zero while segments stay quarantined");
    assert!(err.to_string().contains("quarantined"), "{err}");

    let degraded = run_str(&["snapshot", "--plan", &plan, "--store", &store, "--t", "150"])
        .expect("query answers despite quarantine");
    assert!(degraded.contains("quarantined"), "quality must flag quarantine: {degraded}");

    // scrub --repair heals it; the query is clean again.
    let healed = run_str(&["scrub", "--store", &store, "--repair", "--max-gap", "60"])
        .expect("scrub --repair clears the quarantine");
    assert!(healed.contains("repaired 1 segment(s)"), "{healed}");
    let clean_again = run_str(&["snapshot", "--plan", &plan, "--store", &store, "--t", "150"])
        .expect("store-backed snapshot succeeds after repair");
    assert!(clean_again.contains("quality: clean"), "{clean_again}");
    let _ = std::fs::remove_dir_all(dir);
}
