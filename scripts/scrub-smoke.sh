#!/usr/bin/env bash
# Scrub smoke: build a segmented store through the CLI, corrupt one
# sealed segment on disk, and prove the failure mode end to end —
# `inflow fsck` detects the damage and exits non-zero, store-backed
# queries keep answering with the damage declared in the quality line
# (degraded, never crashed or silently wrong), and `fsck --repair`
# re-seals the segment from the WAL back to a clean bill of health.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${INFLOW_BIN:-target/release/inflow}
if [[ ! -x "$BIN" ]]; then
  cargo build --release --offline
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/inflow-scrub-smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

echo "== generate dataset"
"$BIN" generate synthetic --out-dir "$WORK/data" --objects 12 --duration 300 --seed 13

echo "== ingest into a segmented store (compact every 64 rows)"
"$BIN" ingest --store "$WORK/store" --readings "$WORK/data/readings.csv" \
  --compact-every 64 --snapshot-every 128 --no-sync >/dev/null

SEG=$(find "$WORK/store" -name '*.seg' | sort | head -n 1)
[[ -n "$SEG" ]] || { echo "ingest sealed no segments" >&2; exit 1; }

echo "== healthy store: fsck green, query quality clean"
"$BIN" fsck --store "$WORK/store" >/dev/null
"$BIN" snapshot --plan "$WORK/data/plan.txt" --store "$WORK/store" \
  --t 150 --k 5 >"$WORK/before.txt"
grep -q "quality: clean" "$WORK/before.txt" || {
  echo "healthy store reported degraded quality:" >&2
  cat "$WORK/before.txt" >&2
  exit 1
}

echo "== flip one byte in $(basename "$SEG")"
# Mid-file, past the header frame: the whole-file CRC catches a flip
# anywhere, but a payload byte also exercises the row-frame tier.
SIZE=$(wc -c <"$SEG")
OFF=$((SIZE / 2))
BYTE=$(od -An -tu1 -j "$OFF" -N 1 "$SEG" | tr -d ' ')
printf "$(printf '\\%03o' $(((BYTE + 1) % 256)))" |
  dd of="$SEG" bs=1 seek="$OFF" count=1 conv=notrunc status=none

echo "== fsck detects the corruption (non-zero exit)"
if "$BIN" fsck --store "$WORK/store" >"$WORK/fsck.txt" 2>&1; then
  echo "fsck passed a corrupted segment:" >&2
  cat "$WORK/fsck.txt" >&2
  exit 1
fi
grep -qi "checksum" "$WORK/fsck.txt" || {
  echo "fsck failed but did not name the checksum fault:" >&2
  cat "$WORK/fsck.txt" >&2
  exit 1
}

echo "== degraded query: answers, declares the quarantined rows"
"$BIN" snapshot --plan "$WORK/data/plan.txt" --store "$WORK/store" \
  --t 150 --k 5 >"$WORK/after.txt" || {
  echo "query against a corrupted store failed instead of degrading:" >&2
  cat "$WORK/after.txt" >&2
  exit 1
}
grep -q "quarantined" "$WORK/after.txt" || {
  echo "degraded query did not declare quarantined rows:" >&2
  cat "$WORK/after.txt" >&2
  exit 1
}

echo "== fsck --repair re-seals the segment from the WAL"
"$BIN" fsck --store "$WORK/store" --repair >"$WORK/repair.txt" || {
  echo "repair failed:" >&2
  cat "$WORK/repair.txt" >&2
  exit 1
}
"$BIN" fsck --store "$WORK/store" >/dev/null || {
  echo "store still unhealthy after repair" >&2
  exit 1
}
"$BIN" snapshot --plan "$WORK/data/plan.txt" --store "$WORK/store" \
  --t 150 --k 5 >"$WORK/repaired.txt"
grep -q "quality: clean" "$WORK/repaired.txt" || {
  echo "repaired store still answers degraded:" >&2
  cat "$WORK/repaired.txt" >&2
  exit 1
}
diff "$WORK/before.txt" "$WORK/repaired.txt" >/dev/null || {
  echo "repaired store's answer differs from the pre-corruption answer" >&2
  exit 1
}

echo "scrub-smoke: detect / degrade / repair green"
