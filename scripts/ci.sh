#!/usr/bin/env bash
# The full local gate: formatting, lints, release build, tests.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== inflow-lint (workspace invariants IL001-IL009; baseline: lint.allow)"
# Stale lint.allow entries are a hard error (--strict-unused); findings
# already acknowledged in lint-baseline.json are reported but don't gate.
# The analysis itself carries a wall-time budget: the interprocedural
# passes must stay interactive or people stop running them.
cargo build -q -p inflow-lint --offline
LINT_START=$(date +%s%N)
target/debug/inflow-lint --strict-unused --baseline lint-baseline.json
LINT_MS=$(( ($(date +%s%N) - LINT_START) / 1000000 ))
LINT_BUDGET_MS=5000
echo "   inflow-lint: analyzed workspace in ${LINT_MS} ms (budget ${LINT_BUDGET_MS} ms)"
if (( LINT_MS > LINT_BUDGET_MS )); then
    echo "   inflow-lint: wall time ${LINT_MS} ms exceeds budget ${LINT_BUDGET_MS} ms" >&2
    exit 1
fi

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace --offline

echo "== cargo build --all-targets (benches + tests compile)"
cargo build --workspace --all-targets --offline

echo "== cargo test"
cargo test -q --workspace --offline

echo "== chaos suite (seeded corruption grid × all four algorithms)"
cargo test -q --test chaos --test robustness --offline

echo "== crash suite (deterministic failpoint sweep over the ingestion store)"
cargo test -q --test crash --offline

echo "== serve smoke (serve/watch/top end-to-end over TCP)"
bash scripts/serve-smoke.sh

echo "== scrub smoke (corrupt a segment; fsck detects, queries degrade, repair heals)"
bash scripts/scrub-smoke.sh

echo "== replay-chaos (deterministic record/replay under seeded fault plans)"
cargo test -q --test replay --offline
RPL_WORK=$(mktemp -d "${TMPDIR:-/tmp}/inflow-replay-chaos.XXXXXX")
trap 'rm -rf "$RPL_WORK"' EXIT
target/release/inflow generate synthetic \
    --out-dir "$RPL_WORK/data" --objects 12 --duration 240 --seed 11
for seed in 1 2 3; do
    echo "   -- fault seed $seed: record + replay"
    target/release/inflow record --plan "$RPL_WORK/data/plan.txt" \
        --store "$RPL_WORK/rec-$seed" --readings "$RPL_WORK/data/readings.csv" \
        --out "$RPL_WORK/run-$seed.rpl" --shards 2 --chunk 64 --barrier-every 4 \
        --ts 0 --te 240 --k 5 --fault-seed "$seed" --fault-count 2 >/dev/null
    # Any barrier-hash divergence exits non-zero and fails the gate.
    target/release/inflow replay --plan "$RPL_WORK/data/plan.txt" \
        --store "$RPL_WORK/probe-$seed" --log "$RPL_WORK/run-$seed.rpl" --shards 2
done
rm -rf "$RPL_WORK"
trap - EXIT

echo "== replay-perf (canonical recorded workload: determinism + throughput)"
# The workload is pinned inside record-workload.sh (seed 42, 24 objects,
# 360 s, tier on, interval + distrib + longvisit subscriptions). Any
# barrier-hash divergence exits non-zero; the timing line is the
# standing perf record for the recorded path.
bash scripts/record-workload.sh target/workload
RP_WORK=$(mktemp -d "${TMPDIR:-/tmp}/inflow-replay-perf.XXXXXX")
trap 'rm -rf "$RP_WORK"' EXIT
RP_START=$(date +%s%N)
target/release/inflow replay --plan target/workload/plan.txt \
    --store "$RP_WORK/probe" --log target/workload/workload.rpl --shards 2 \
    --compact-every 256 --scrub-every 512 --no-sync
RP_MS=$(( ($(date +%s%N) - RP_START) / 1000000 ))
echo "   replay-perf: canonical workload replayed in ${RP_MS} ms"
rm -rf "$RP_WORK"
trap - EXIT

echo "== bench6 (tracing/flight-recorder overhead -> BENCH_6.json)"
cargo run -q --release -p inflow-bench --bin bench6 --offline -- --smoke --out BENCH_6.json
cat BENCH_6.json

echo "== bench7 (replay-recorder overhead -> BENCH_7.json)"
cargo run -q --release -p inflow-bench --bin bench7 --offline -- --smoke --out BENCH_7.json
cat BENCH_7.json

echo "== bench8 (segment-tier overhead + cold start -> BENCH_8.json)"
cargo run -q --release -p inflow-bench --bin bench8 --offline -- --smoke --out BENCH_8.json
cat BENCH_8.json

echo "== bench9 (distrib-subscription overhead -> BENCH_9.json)"
cargo run -q --release -p inflow-bench --bin bench9 --offline -- --objects 120 --duration 900 --repeats 3 --out BENCH_9.json
cat BENCH_9.json

# Opt-in sanitizer stages. Both need a nightly toolchain with the matching
# components (rustup component add miri / -Z sanitizer support), so they
# are gated behind env vars rather than run by default.
if [[ "${MIRI:-0}" == "1" ]]; then
    echo "== miri (UB check on the store + protocol codecs)"
    cargo +nightly miri test -q -p inflow-tracking store:: --offline
fi

if [[ "${TSAN:-0}" == "1" ]]; then
    echo "== thread sanitizer (service crate tests + end-to-end service suite)"
    # std is not rebuilt with the sanitizer (rust-src is unavailable
    # offline), so the ABI mismatch is silenced and known false positives
    # from uninstrumented std internals are suppressed (scripts/tsan.supp).
    TSAN_RUSTFLAGS="-Z sanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer"
    # --all-targets skips doctests: rustdoc does not forward the
    # sanitizer flags and cannot link the instrumented rlibs.
    TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp" \
        RUSTFLAGS="$TSAN_RUSTFLAGS" \
        cargo +nightly test -q -p inflow-service --all-targets --offline \
        --target "$(rustc -vV | sed -n 's/^host: //p')"
    TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp" \
        RUSTFLAGS="$TSAN_RUSTFLAGS" \
        cargo +nightly test -q -p inflow --test service --offline \
        --target "$(rustc -vV | sed -n 's/^host: //p')"
fi

echo "ci: all green"
