#!/usr/bin/env bash
# The full local gate: formatting, lints, release build, tests.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace --offline

echo "== cargo build --all-targets (benches + tests compile)"
cargo build --workspace --all-targets --offline

echo "== cargo test"
cargo test -q --workspace --offline

echo "== chaos suite (seeded corruption grid × all four algorithms)"
cargo test -q --test chaos --test robustness --offline

echo "== crash suite (deterministic failpoint sweep over the ingestion store)"
cargo test -q --test crash --offline

echo "== serve smoke (serve/watch end-to-end over TCP)"
bash scripts/serve-smoke.sh

echo "ci: all green"
