#!/usr/bin/env bash
# Quick durability gate: the deterministic failpoint sweep alone.
#
# Kills the ingestion store at every mutating I/O operation of a seeded
# run, recovers, resumes, and asserts the final table and top-k answers
# are byte-identical to an uninterrupted run. Much faster than the full
# ci.sh; use it while iterating on crates/tracking/src/store.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test -q --test crash --offline \
  crash_sweep_recovers_identically_at_every_failpoint -- --exact

echo "crash-smoke: failpoint sweep green"
