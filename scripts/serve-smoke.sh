#!/usr/bin/env bash
# End-to-end smoke of the flow-monitoring server through the CLI:
# generate a small dataset, start `inflow serve` in the background on an
# ephemeral port, stream the readings with `inflow watch` under an
# interval subscription, and assert the client saw updates, the stats
# registry, and a clean server shutdown.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${INFLOW_BIN:-target/release/inflow}
if [[ ! -x "$BIN" ]]; then
  cargo build --release --offline
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/inflow-serve-smoke.XXXXXX")
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== generate dataset"
"$BIN" generate synthetic --out-dir "$WORK/data" --objects 15 --duration 300 --seed 7

echo "== start server"
"$BIN" serve --plan "$WORK/data/plan.txt" --store "$WORK/store" \
  --shards 2 --no-sync --addr-file "$WORK/addr" >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

# The server prints "listening on HOST:PORT" to stdout the moment the
# ephemeral port is bound; parse the address from there (--addr-file is
# kept as a fallback) instead of racing a fixed port guess.
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^listening on //p' "$WORK/serve.log" | head -n 1)
  [[ -n "$ADDR" ]] && break
  [[ -s "$WORK/addr" ]] && { ADDR=$(cat "$WORK/addr"); break; }
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died before binding:" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "server never announced its address" >&2; exit 1; }
echo "   listening on $ADDR"

# Binding and accepting are separate moments; retry the first contact
# with exponential backoff rather than failing on a half-started server.
CONNECTED=0
DELAY=0.05
for _ in $(seq 1 20); do
  if "$BIN" top --addr "$ADDR" --once --timeout-ms 2000 >/dev/null 2>&1; then
    CONNECTED=1
    break
  fi
  sleep "$DELAY"
  DELAY=$(awk -v d="$DELAY" 'BEGIN { d = d * 2; printf "%.2f", (d > 1.0) ? 1.0 : d }')
done
[[ "$CONNECTED" == 1 ]] || {
  echo "could not connect to $ADDR:" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}

echo "== stream readings under a subscription"
"$BIN" watch --addr "$ADDR" --ts 0 --te 300 --k 5 \
  --publish "$WORK/data/readings.csv" --chunk 128 --stats >"$WORK/watch.log"

grep -q "^update sub=" "$WORK/watch.log" || {
  echo "watch saw no subscription updates:" >&2
  cat "$WORK/watch.log" >&2
  exit 1
}
grep -q "^current sub=" "$WORK/watch.log" || {
  echo "watch printed no current result" >&2
  exit 1
}
grep -q "serve_readings_sharded" "$WORK/watch.log" || {
  echo "stats output missing pipeline counters" >&2
  exit 1
}

echo "== telemetry: inflow top --once against the live server"
# top --once parses the METRICS snapshot strictly (counters, histogram
# bucket bounds tiling the counts, per-shard queue depths) and exits
# non-zero on any malformed field — it is the smoke test's canary for
# broken telemetry.
"$BIN" top --addr "$ADDR" --once >"$WORK/top.log"
grep -q "serve_readings_sharded" "$WORK/top.log" || {
  echo "top --once shows no router counter:" >&2
  cat "$WORK/top.log" >&2
  exit 1
}
grep -q "shard queues" "$WORK/top.log" || {
  echo "top --once shows no shard queue depths" >&2
  exit 1
}
grep -qE "e2e +[0-9]" "$WORK/top.log" || {
  echo "top --once shows no end-to-end latency series (tracing broken?):" >&2
  cat "$WORK/top.log" >&2
  exit 1
}

echo "== shut the server down"
"$BIN" watch --addr "$ADDR" --shutdown >/dev/null
wait "$SERVER_PID"
SERVER_PID=""
grep -q "server stopped" "$WORK/serve.log" || {
  echo "server did not report a clean stop:" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}

echo "serve-smoke: end-to-end serve/watch green"
