#!/usr/bin/env bash
# Records the canonical replay-perf workload: a seeded synthetic
# dataset driven through a fresh fault-free server with the segment
# tier on, captured as an IFRPL001 replay log. The log and the plan it
# was recorded against land in OUT_DIR (default target/workload); both
# are needed to replay. Every input is pinned — dataset seed, shard
# count, chunking, barrier cadence, compaction/scrub cadence — so two
# recordings of the same binary are drive-identical and the log is a
# stable yardstick for `scripts/ci.sh`'s replay-perf stage.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR=${1:-target/workload}
BIN=${INFLOW_BIN:-target/release/inflow}
if [[ ! -x "$BIN" ]]; then
  cargo build --release --offline
fi

# Canonical knobs. Changing any of these makes a different workload:
# bump the comment in ci.sh's replay-perf stage if you do.
SEED=42
OBJECTS=24
DURATION=360
SHARDS=2
CHUNK=64
BARRIER_EVERY=8
COMPACT_EVERY=256
SCRUB_EVERY=512

WORK=$(mktemp -d "${TMPDIR:-/tmp}/inflow-record-workload.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

echo "== generate canonical dataset (seed $SEED, $OBJECTS objects, ${DURATION}s)"
"$BIN" generate synthetic --out-dir "$WORK/data" \
  --objects "$OBJECTS" --duration "$DURATION" --seed "$SEED" >/dev/null

echo "== record fault-free run (tier on: compact $COMPACT_EVERY / scrub $SCRUB_EVERY)"
"$BIN" record --plan "$WORK/data/plan.txt" --store "$WORK/store" \
  --readings "$WORK/data/readings.csv" --out "$WORK/workload.rpl" \
  --shards "$SHARDS" --chunk "$CHUNK" --barrier-every "$BARRIER_EVERY" \
  --compact-every "$COMPACT_EVERY" --scrub-every "$SCRUB_EVERY" \
  --ts 0 --te "$DURATION" --k 5 \
  --subs "distrib:t=180,kq=2,kmax=32,k=5;longvisit:ts=0,te=$DURATION,d=30,k=5" \
  --no-sync >/dev/null

mkdir -p "$OUT_DIR"
cp "$WORK/workload.rpl" "$OUT_DIR/workload.rpl"
cp "$WORK/data/plan.txt" "$OUT_DIR/plan.txt"

SIZE=$(wc -c <"$OUT_DIR/workload.rpl")
READINGS=$(($(wc -l <"$WORK/data/readings.csv") - 1))
echo "record-workload: $OUT_DIR/workload.rpl ($SIZE bytes, $READINGS readings)"
echo "record-workload: replay with: $BIN replay --plan $OUT_DIR/plan.txt \\"
echo "  --store <fresh-dir> --log $OUT_DIR/workload.rpl --shards $SHARDS \\"
echo "  --compact-every $COMPACT_EVERY --scrub-every $SCRUB_EVERY --no-sync"
