#!/usr/bin/env python3
"""Formats the `figures` harness CSV as the markdown tables used in
EXPERIMENTS.md.

Usage: python3 scripts/experiments_tables.py figures_clean.csv
"""
import sys
from collections import OrderedDict


def main(path: str) -> None:
    series: "OrderedDict[str, dict]" = OrderedDict()
    with open(path) as fh:
        label = ""
        for line in fh:
            line = line.strip()
            if line.startswith("#"):
                label = line.lstrip("# ")
                continue
            if not line or line.startswith("experiment,"):
                continue
            exp, x, it, jn = line.split(",")
            entry = series.setdefault(exp, {"label": label, "rows": []})
            entry["rows"].append((x, float(it), float(jn)))

    for exp, entry in series.items():
        print(f"### {exp} — {entry['label'].split('—')[-1].strip()}")
        print()
        print("| x | iterative (ms) | join (ms) |")
        print("|---|---------------:|----------:|")
        for x, it, jn in entry["rows"]:
            print(f"| {x} | {it:.0f} | {jn:.0f} |")
        print()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figures_clean.csv")
