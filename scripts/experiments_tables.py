#!/usr/bin/env python3
"""Formats the `figures` harness CSV as the markdown tables used in
EXPERIMENTS.md.

Accepts both the legacy 4-column rows (`experiment,x,iterative_ms,join_ms`)
and the current 7-column rows that append the per-query work counters
(`it_presence,jn_presence,jn_pruned`). Counter columns are rendered only
when present and non-zero for the series (ablation rows carry none).

Usage: python3 scripts/experiments_tables.py figures_clean.csv
"""
import sys
from collections import OrderedDict


def main(path: str) -> None:
    series: "OrderedDict[str, dict]" = OrderedDict()
    with open(path) as fh:
        label = ""
        for line in fh:
            line = line.strip()
            if line.startswith("#"):
                label = line.lstrip("# ")
                continue
            if not line or line.startswith("experiment,"):
                continue
            fields = line.split(",")
            exp, x, it, jn = fields[:4]
            counters = tuple(int(c) for c in fields[4:7]) if len(fields) >= 7 else None
            entry = series.setdefault(exp, {"label": label, "rows": []})
            entry["rows"].append((x, float(it), float(jn), counters))

    for exp, entry in series.items():
        print(f"### {exp} — {entry['label'].split('—')[-1].strip()}")
        print()
        has_counters = any(
            c is not None and any(c) for (_, _, _, c) in entry["rows"]
        )
        if has_counters:
            print(
                "| x | iterative (ms) | join (ms) "
                "| it presence | jn presence | jn pruned |"
            )
            print(
                "|---|---------------:|----------:"
                "|------------:|------------:|----------:|"
            )
            for x, it, jn, c in entry["rows"]:
                ip, jp, pr = c if c is not None else (0, 0, 0)
                print(f"| {x} | {it:.0f} | {jn:.0f} | {ip} | {jp} | {pr} |")
        else:
            print("| x | iterative (ms) | join (ms) |")
            print("|---|---------------:|----------:|")
            for x, it, jn, _ in entry["rows"]:
                print(f"| {x} | {it:.0f} | {jn:.0f} |")
        print()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figures_clean.csv")
